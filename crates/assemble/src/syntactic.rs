//! Syntactic type matching — step one of type inference (§4.2, Table 4).
//!
//! The paper drives this step with a table of regular expressions ("any
//! string that contains a slash is a potential FilePath").  We implement the
//! same patterns as hand-written matchers: no regex engine is among the
//! sanctioned dependencies, and the patterns are simple enough that direct
//! character scans are clearer and faster.
//!
//! Syntactic matching deliberately over-approximates; the semantic
//! verification step (`infer`) prunes wrong guesses against the environment.

use encore_model::{ConfigValue, SemType};

/// Does `s` look like an absolute file path? (`/.+(/.+)*`)
pub fn is_file_path(s: &str) -> bool {
    s.len() > 1 && s.starts_with('/') && !s.contains(char::is_whitespace) && !s.contains("//")
}

/// Does `s` look like a relative path fragment? (`.+(/.+)+`, no leading `/`)
pub fn is_partial_file_path(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with('/')
        && s.contains('/')
        && !s.ends_with('/')
        && !s.contains("//")
        && !s.contains(char::is_whitespace)
        && !s.contains("://")
}

/// Does `s` look like a bare file name? (`[\w-]+\.[\w-]+`)
pub fn is_file_name(s: &str) -> bool {
    match s.split_once('.') {
        Some((stem, ext)) => {
            !stem.is_empty()
                && !ext.is_empty()
                && !ext.contains('.')
                && stem
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                && ext
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        }
        None => false,
    }
}

/// Does `s` look like a user or group name? (`[a-zA-Z][a-zA-Z0-9_-]*`)
pub fn is_account_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        }
        _ => false,
    }
}

/// Does `s` look like an IPv4 or IPv6 address?
pub fn is_ip_address(s: &str) -> bool {
    ConfigValue::parse_ip(s).is_ok()
}

/// Does `s` look like a port number? (digits in `1..=65535`)
pub fn is_port_number(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_digit())
        && s.parse::<u32>()
            .map(|p| (1..=65535).contains(&p))
            .unwrap_or(false)
}

/// Does `s` look like a plain number? (`[0-9]+[.0-9]*`)
pub fn is_number(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_digit() || c == '-')
            .unwrap_or(false)
        && s.trim_start_matches('-')
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.')
        && s.chars().filter(|&c| c == '.').count() <= 1
        && !s.trim_start_matches('-').is_empty()
}

/// Does `s` look like a URL? (`[a-z]+://...`)
pub fn is_url(s: &str) -> bool {
    match s.find("://") {
        Some(i) if i > 0 => s[..i].chars().all(|c| c.is_ascii_lowercase()) && s.len() > i + 3,
        _ => false,
    }
}

/// Does `s` look like a MIME type? (`major/minor`)
pub fn is_mime_type(s: &str) -> bool {
    match s.split_once('/') {
        Some((major, minor)) => {
            !major.is_empty()
                && !minor.is_empty()
                && !minor.contains('/')
                && major.chars().all(|c| c.is_ascii_alphabetic() || c == '-')
                && minor
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '+')
        }
        None => false,
    }
}

/// Does `s` look like a charset name? (`[\w-]+`, must contain a letter)
pub fn is_charset(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        && s.chars().any(|c| c.is_ascii_alphabetic())
}

/// Does `s` look like an ISO 639-1 language code? (exactly two letters)
pub fn is_language(s: &str) -> bool {
    s.len() == 2 && s.chars().all(|c| c.is_ascii_alphabetic())
}

/// Does `s` look like a size literal? (`[\d]+[KMGT]`)
pub fn is_size(s: &str) -> bool {
    s.len() >= 2
        && s.chars()
            .last()
            .map(|c| "KMGTkmgt".contains(c))
            .unwrap_or(false)
        && s[..s.len() - 1].chars().all(|c| c.is_ascii_digit())
}

/// Does `s` belong to the boolean value set?
pub fn is_boolean(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "on" | "off" | "yes" | "no" | "true" | "false"
    )
}

/// Does `s` look like octal permission bits? (3–4 octal digits)
pub fn is_permission(s: &str) -> bool {
    (s.len() == 3 || s.len() == 4) && s.chars().all(|c| ('0'..='7').contains(&c))
}

/// Syntactic candidate types for a value, in [`SemType::PRIORITY`] order.
///
/// This is the "crude guess" of §4.2: every type whose pattern matches.
/// The semantic verifier picks the first candidate that survives.
pub fn candidates(value: &str) -> Vec<SemType> {
    let v = value.trim();
    let mut out = Vec::new();
    for ty in SemType::PRIORITY {
        let hit = match ty {
            SemType::Url => is_url(v),
            SemType::IpAddress => is_ip_address(v),
            SemType::Size => is_size(v),
            SemType::Boolean => is_boolean(v),
            SemType::FilePath => is_file_path(v),
            SemType::PartialFilePath => is_partial_file_path(v),
            SemType::MimeType => is_mime_type(v),
            // Permission (like Enum) is only assigned to augmented
            // attributes (Table 5a), never inferred from raw entry values —
            // otherwise any 3-4 digit number would classify as Permission.
            SemType::Permission => false,
            SemType::PortNumber => is_port_number(v),
            SemType::Number => is_number(v),
            SemType::FileName => is_file_name(v),
            SemType::UserName => is_account_name(v),
            SemType::GroupName => is_account_name(v),
            SemType::Charset => is_charset(v),
            SemType::Language => is_language(v),
            SemType::Enum => false, // only assigned to augmented attributes
            SemType::Str => true,   // universal fall-back
            _ => false,             // future variants: no syntactic pattern
        };
        if hit {
            out.push(ty);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_path_patterns() {
        assert!(is_file_path("/var/lib/mysql"));
        assert!(is_file_path("/etc"));
        assert!(!is_file_path("/"));
        assert!(!is_file_path("relative/path"));
        assert!(!is_file_path("/has space"));
        assert!(!is_file_path("/double//slash"));
    }

    #[test]
    fn partial_path_patterns() {
        assert!(is_partial_file_path("modules/mod_mime.so"));
        assert!(!is_partial_file_path("/abs/path"));
        assert!(!is_partial_file_path("plain"));
        assert!(!is_partial_file_path("http://x/y"));
    }

    #[test]
    fn numeric_patterns() {
        assert!(is_number("42"));
        assert!(is_number("3.14"));
        assert!(is_number("-10"));
        assert!(!is_number("1.2.3"));
        assert!(!is_number("12a"));
        assert!(!is_number(""));
        assert!(!is_number("-"));
    }

    #[test]
    fn port_range_enforced() {
        assert!(is_port_number("80"));
        assert!(is_port_number("65535"));
        assert!(!is_port_number("0"));
        assert!(!is_port_number("70000"));
        assert!(!is_port_number("8o"));
    }

    #[test]
    fn url_and_mime() {
        assert!(is_url("http://example.com"));
        assert!(is_url("file:///etc"));
        assert!(!is_url("://nope"));
        assert!(!is_url("http://"));
        assert!(is_mime_type("text/html"));
        assert!(is_mime_type("application/x-httpd-php"));
        assert!(!is_mime_type("noslash"));
    }

    #[test]
    fn size_and_permission() {
        assert!(is_size("64M"));
        assert!(is_size("10k"));
        assert!(!is_size("M"));
        assert!(!is_size("64MB"));
        assert!(is_permission("644"));
        assert!(is_permission("0755"));
        assert!(!is_permission("888"));
        assert!(!is_permission("64"));
    }

    #[test]
    fn candidate_ordering_prefers_specific_types() {
        let c = candidates("/var/lib/mysql");
        assert_eq!(c.first(), Some(&SemType::FilePath));
        assert_eq!(c.last(), Some(&SemType::Str));
        // A bare number is port-eligible and number-eligible, port first.
        let c = candidates("3306");
        assert!(
            c.iter().position(|t| *t == SemType::PortNumber).unwrap()
                < c.iter().position(|t| *t == SemType::Number).unwrap()
        );
    }

    #[test]
    fn str_is_always_a_candidate() {
        for v in ["", "anything at all", "/x", "42"] {
            assert!(candidates(v).contains(&SemType::Str), "{v}");
        }
    }

    #[test]
    fn language_codes() {
        assert!(is_language("en"));
        assert!(!is_language("eng"));
        assert!(!is_language("e1"));
    }
}
