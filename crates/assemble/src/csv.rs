//! CSV serialization of assembled datasets (§4.1: "the assembler stores and
//! organizes all the data in a .csv file — each column a structured
//! configuration entry, each row the values of all the entries in a
//! system").

use encore_model::Dataset;

/// Quote a CSV field when it contains separators or quotes.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize the dataset as CSV: header row of attribute names (first column
/// `system`), one row per system, empty cells for absent attributes.
pub fn to_csv(dataset: &Dataset) -> String {
    let attrs: Vec<_> = dataset.attributes().into_iter().collect();
    let mut out = String::from("system");
    for a in &attrs {
        out.push(',');
        out.push_str(&quote(&a.to_string()));
    }
    out.push('\n');
    for row in dataset.rows() {
        out.push_str(&quote(row.id()));
        for a in &attrs {
            out.push(',');
            if let Some(v) = row.get(a) {
                if !v.is_absent() {
                    out.push_str(&quote(&v.render()));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_model::{AttrName, ConfigValue, Row};

    #[test]
    fn csv_has_header_and_rows() {
        let mut ds = Dataset::new();
        let mut r = Row::new("sys-0");
        r.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        r.set(AttrName::entry("note"), ConfigValue::str("a,b"));
        ds.push_row(r);
        let csv = to_csv(&ds);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("system,note,user"));
        assert_eq!(lines.next(), Some("sys-0,\"a,b\",mysql"));
    }

    #[test]
    fn absent_cells_are_empty() {
        let mut ds = Dataset::new();
        let mut r1 = Row::new("a");
        r1.set(AttrName::entry("x"), ConfigValue::str("1"));
        let r2 = Row::new("b");
        ds.push_row(r1);
        ds.push_row(r2);
        let csv = to_csv(&ds);
        assert!(csv.contains("b,\n") || csv.ends_with("b,"));
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(quote("plain"), "plain");
    }
}
