//! Data assembler (§4): parsing, type inference, environment augmentation.
//!
//! The assembler takes raw system files (the target configuration files plus
//! the system environment captured in a [`SystemImage`]) and produces the
//! uniform, environment-enriched [`Dataset`] the rule learner consumes:
//!
//! 1. **Parsing** (§4.1) — delegated to `encore-parser` lenses,
//! 2. **Type inference** (§4.2) — a two-step process: cheap *syntactic
//!    matching* against the regex table of paper Table 4, followed by a
//!    heavy-weight *semantic verification* against the environment
//!    ([`infer::TypeInference`]),
//! 3. **Environment integration** (§4.3) — augmenting each typed entry with
//!    the environment attributes of paper Table 5a, plus the system-wide
//!    attributes of Table 5b ([`augment`]).
//!
//! The assembler is customizable (§5.3): user-defined types take priority
//! over the predefined ones, exactly as the customization-file semantics
//! prescribe.
//!
//! # Examples
//!
//! ```
//! use encore_assemble::Assembler;
//! use encore_model::AppKind;
//! use encore_sysimage::SystemImage;
//!
//! let img = SystemImage::builder("img-0")
//!     .user("mysql", 27, &["mysql"])
//!     .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
//!     .file(
//!         "/etc/mysql/my.cnf",
//!         "root", "root", 0o644,
//!         "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\n",
//!     )
//!     .build();
//! let assembler = Assembler::new();
//! let row = assembler.assemble_image(AppKind::Mysql, &img)?;
//! assert!(row.iter().any(|(a, _)| a.to_string() == "datadir.owner"));
//! # Ok::<(), encore_assemble::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod csv;
pub mod infer;
pub mod obs;
pub mod syntactic;

pub use infer::{CustomType, TypeInference};

use encore_model::{AppKind, AttrName, Dataset, Row, SemType};
use encore_parser::{KeyValue, LensRegistry, ParseError};
use encore_sysimage::SystemImage;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced during data assembly.
#[derive(Debug)]
#[non_exhaustive]
pub enum AssembleError {
    /// The image does not contain the application's configuration file.
    MissingConfig {
        /// Application whose config was expected.
        app: AppKind,
        /// Path looked up.
        path: String,
    },
    /// The configuration file failed to parse.
    Parse(ParseError),
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::MissingConfig { app, path } => {
                write!(f, "image has no {app} configuration at {path}")
            }
            AssembleError::Parse(e) => write!(f, "parse failure: {e}"),
        }
    }
}

impl std::error::Error for AssembleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssembleError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for AssembleError {
    fn from(e: ParseError) -> Self {
        AssembleError::Parse(e)
    }
}

/// The assembled view of one system: the dataset row plus per-entry types.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// The environment-enriched attribute row.
    pub row: Row,
    /// Inferred semantic type of each *original* entry.
    pub types: BTreeMap<AttrName, SemType>,
}

/// The data assembler: lens registry + type inference pipeline.
pub struct Assembler {
    lenses: LensRegistry,
    inference: TypeInference,
    augment_env: bool,
}

impl fmt::Debug for Assembler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Assembler")
            .field("lenses", &self.lenses)
            .field("augment_env", &self.augment_env)
            .finish()
    }
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// An assembler with the default lenses, predefined types, and
    /// environment augmentation enabled.
    pub fn new() -> Assembler {
        Assembler {
            lenses: LensRegistry::with_defaults(),
            inference: TypeInference::new(),
            augment_env: true,
        }
    }

    /// Disable environment augmentation — produces the "Original"-only
    /// attribute set (used by the value-comparison baseline and Table 2's
    /// first row).
    pub fn without_augmentation(mut self) -> Assembler {
        self.augment_env = false;
        self
    }

    /// Register a custom semantic type (§5.3); custom types take priority
    /// over predefined ones.
    pub fn with_custom_type(mut self, custom: CustomType) -> Assembler {
        self.inference.register(custom);
        self
    }

    /// Access the lens registry (e.g. to register a user lens).
    pub fn lenses_mut(&mut self) -> &mut LensRegistry {
        &mut self.lenses
    }

    /// The type-inference engine.
    pub fn inference(&self) -> &TypeInference {
        &self.inference
    }

    /// Parse and type one application's configuration inside an image, then
    /// augment with environment data.
    ///
    /// # Errors
    ///
    /// [`AssembleError::MissingConfig`] if the image lacks the config file;
    /// [`AssembleError::Parse`] on lens failure.
    pub fn assemble_image(&self, app: AppKind, image: &SystemImage) -> Result<Row, AssembleError> {
        Ok(self.assemble_system(app, image)?.row)
    }

    /// Like [`Assembler::assemble_image`] but also returns per-entry types.
    ///
    /// # Errors
    ///
    /// Same as [`Assembler::assemble_image`].
    pub fn assemble_system(
        &self,
        app: AppKind,
        image: &SystemImage,
    ) -> Result<AssembledSystem, AssembleError> {
        let path = app.config_path();
        let text = image
            .read_file(path)
            .ok_or_else(|| AssembleError::MissingConfig {
                app,
                path: path.to_string(),
            })?;
        let pairs = self.lenses.parse(app.name(), text)?;
        Ok(self.assemble_pairs(&pairs, image))
    }

    /// Assemble from already-parsed pairs (used by tests and by callers with
    /// non-standard config locations).
    pub fn assemble_pairs(&self, pairs: &[KeyValue], image: &SystemImage) -> AssembledSystem {
        let _span = obs::ASSEMBLE_TIME.span();
        let mut row = Row::new(image.id());
        let mut types = BTreeMap::new();
        for kv in pairs {
            let attr = match AttrName::try_entry(&kv.key) {
                Ok(a) => a,
                Err(_) => continue,
            };
            let ty = self.inference.infer(&kv.value, image);
            let value = infer::coerce(&kv.value, ty);
            if self.augment_env {
                // Augmentation only ever inserts fresh `attr.suffix` cells,
                // so the row-size delta is exactly the attributes added.
                let before = row.len();
                augment::augment_entry(&mut row, &attr, &kv.value, ty, image);
                obs::AUGMENTED_ATTRS.add((row.len() - before) as u64);
            }
            obs::ENTRIES_TYPED.incr();
            types.insert(attr.clone(), ty);
            row.set(attr, value);
        }
        if self.augment_env {
            let before = row.len();
            augment::augment_system_wide(&mut row, image);
            obs::AUGMENTED_ATTRS.add((row.len() - before) as u64);
        }
        obs::ROWS_ASSEMBLED.incr();
        AssembledSystem { row, types }
    }

    /// Assemble a whole training set: one row per image.
    ///
    /// Images whose configuration is missing or unparseable are skipped —
    /// the collector tolerates partial training data, as a crawler must.
    pub fn assemble_training_set(&self, app: AppKind, images: &[SystemImage]) -> Dataset {
        images
            .iter()
            .filter_map(|img| self.assemble_image(app, img).ok())
            .collect()
    }
}

/// Pivot an assembled [`Dataset`] into its columnar, interned view — the
/// layout rule inference scans (`encore_model::columnar`).  This is the
/// assembly phase's last step: built once per training set, shared
/// read-only by everything downstream.
pub fn column_store(dataset: &Dataset) -> encore_model::ColumnStore {
    let _span = obs::COLUMNS_TIME.span();
    let store = encore_model::ColumnStore::build(dataset);
    obs::COLUMNS_BUILT.add(store.num_columns() as u64);
    obs::VALUES_INTERNED.add(store.interner().num_values() as u64);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_model::ConfigValue;

    fn mysql_image() -> SystemImage {
        SystemImage::builder("img-0")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\nmax_allowed_packet = 16M\n",
            )
            .build()
    }

    #[test]
    fn assemble_produces_typed_row() {
        let sys = Assembler::new()
            .assemble_system(AppKind::Mysql, &mysql_image())
            .unwrap();
        assert_eq!(
            sys.types.get(&AttrName::entry("datadir")),
            Some(&SemType::FilePath)
        );
        assert_eq!(
            sys.types.get(&AttrName::entry("user")),
            Some(&SemType::UserName)
        );
        assert_eq!(
            sys.types.get(&AttrName::entry("max_allowed_packet")),
            Some(&SemType::Size)
        );
    }

    #[test]
    fn augmented_attributes_present() {
        let row = Assembler::new()
            .assemble_image(AppKind::Mysql, &mysql_image())
            .unwrap();
        let owner = row
            .get(&AttrName::entry("datadir").augmented("owner"))
            .expect("datadir.owner");
        assert_eq!(owner, &ConfigValue::str("mysql"));
        let kind = row
            .get(&AttrName::entry("datadir").augmented("type"))
            .expect("datadir.type");
        assert_eq!(kind, &ConfigValue::str("dir"));
    }

    #[test]
    fn without_augmentation_has_only_original_attrs() {
        let row = Assembler::new()
            .without_augmentation()
            .assemble_image(AppKind::Mysql, &mysql_image())
            .unwrap();
        assert!(row.iter().all(|(a, _)| a.is_original()));
        assert_eq!(row.len(), 3);
    }

    #[test]
    fn missing_config_is_error() {
        let img = SystemImage::builder("empty").build();
        match Assembler::new().assemble_image(AppKind::Php, &img) {
            Err(AssembleError::MissingConfig { app, .. }) => assert_eq!(app, AppKind::Php),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn training_set_skips_broken_images() {
        let good = mysql_image();
        let broken = SystemImage::builder("broken").build();
        let ds = Assembler::new().assemble_training_set(AppKind::Mysql, &[good, broken]);
        assert_eq!(ds.num_rows(), 1);
    }
}
