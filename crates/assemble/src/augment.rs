//! Environment-information integration (§4.3, Tables 5a/5b).
//!
//! For each typed entry the assembler attaches *augmented attributes* that
//! carry the entry's environment context: a `FilePath` gains owner, group,
//! kind, permission, contents digest, sub-directory and symlink flags; an
//! `IPAddress` gains locality/IPv6/wildcard flags; a `UserName` gains
//! root-group/admin/group-mirror flags.  System-wide attributes (host name,
//! OS, hardware, SELinux status) are appended once per system.

use encore_model::{AttrName, ConfigValue, Row, SemType};
use encore_sysimage::SystemImage;

/// Suffixes attached to a `FilePath` entry: Table 5a's seven attributes
/// plus `secDenied` — whether an enforcing security module (SELinux /
/// AppArmor) denies writes to the path.  Table 5b notes EnCore "can be
/// easily customized to consider more data"; this extension is what lets
/// the detector see the paper's real-world case #4 (AppArmor blocking a
/// relocated MySQL datadir).
pub const FILEPATH_SUFFIXES: [&str; 8] = [
    "owner",
    "group",
    "type",
    "permission",
    "contents",
    "hasDir",
    "hasSymLink",
    "secDenied",
];

/// Suffixes attached to an `IPAddress` entry.
pub const IP_SUFFIXES: [&str; 3] = ["Local", "IPv6", "AnyAddr"];

/// Suffixes attached to a `UserName` entry.
pub const USER_SUFFIXES: [&str; 3] = ["isRootGroup", "isAdmin", "isGroup"];

/// Whether an IPv4 address is in the RFC 1918 private ranges (or an RFC 4193
/// unique-local IPv6 address) — the `*.Local` augmented attribute.
fn is_local_address(text: &str, v6: bool) -> bool {
    if v6 {
        return text.starts_with("fc") || text.starts_with("fd");
    }
    let octets: Vec<u32> = text.split('.').filter_map(|o| o.parse().ok()).collect();
    match octets.as_slice() {
        [10, ..] => true,
        [172, b, ..] => (16..=31).contains(b),
        [192, 168, ..] => true,
        [127, ..] => true,
        _ => false,
    }
}

/// Augment one configuration entry according to its inferred type.
///
/// Missing environment objects produce `Absent` cells rather than nothing:
/// the detector distinguishes "entry not set" from "entry set but pointing
/// at nothing".
pub fn augment_entry(
    row: &mut Row,
    attr: &AttrName,
    raw_value: &str,
    ty: SemType,
    image: &SystemImage,
) {
    match ty {
        SemType::FilePath => augment_file_path(row, attr, raw_value, image),
        SemType::IpAddress => augment_ip(row, attr, raw_value),
        SemType::UserName => augment_user(row, attr, raw_value, image),
        _ => {}
    }
}

fn augment_file_path(row: &mut Row, attr: &AttrName, path: &str, image: &SystemImage) {
    let vfs = image.vfs();
    match vfs.metadata(path) {
        Some(meta) => {
            row.set(attr.augmented("owner"), ConfigValue::str(&meta.owner));
            row.set(attr.augmented("group"), ConfigValue::str(&meta.group));
            row.set(attr.augmented("type"), ConfigValue::str(meta.kind.name()));
            row.set(
                attr.augmented("permission"),
                ConfigValue::str(format!("{:o}", meta.mode)),
            );
            let children = vfs.children(path);
            row.set(
                attr.augmented("contents"),
                ConfigValue::str(format!("{} entries", children.len())),
            );
            row.set(
                attr.augmented("hasDir"),
                ConfigValue::boolean(vfs.has_subdir(path)),
            );
            row.set(
                attr.augmented("hasSymLink"),
                ConfigValue::boolean(vfs.has_symlink(path)),
            );
            row.set(
                attr.augmented("secDenied"),
                ConfigValue::boolean(image.security().denies_write(path)),
            );
        }
        None => {
            for suffix in FILEPATH_SUFFIXES {
                row.set(attr.augmented(suffix), ConfigValue::Absent);
            }
        }
    }
}

fn augment_ip(row: &mut Row, attr: &AttrName, raw: &str) {
    let (text, v6) = match ConfigValue::parse_ip(raw) {
        Ok(ConfigValue::Ip { text, v6 }) => (text, v6),
        _ => return,
    };
    row.set(
        attr.augmented("Local"),
        ConfigValue::boolean(is_local_address(&text, v6)),
    );
    row.set(attr.augmented("IPv6"), ConfigValue::boolean(v6));
    row.set(
        attr.augmented("AnyAddr"),
        ConfigValue::boolean(text == "0.0.0.0" || text == "::"),
    );
}

fn augment_user(row: &mut Row, attr: &AttrName, user: &str, image: &SystemImage) {
    let accounts = image.accounts();
    row.set(
        attr.augmented("isRootGroup"),
        ConfigValue::boolean(accounts.in_root_group(user)),
    );
    row.set(
        attr.augmented("isAdmin"),
        ConfigValue::boolean(accounts.user(user).map(|u| u.is_admin()).unwrap_or(false)),
    );
    // `user.isGroup` mirrors the user's same-named group if one exists
    // (Table 5a shows `user.isGroup = mysql` of type GroupName).
    let group = accounts
        .group(user)
        .map(|g| ConfigValue::str(&g.name))
        .unwrap_or(ConfigValue::Absent);
    row.set(attr.augmented("isGroup"), group);
}

/// Append the entry-independent environment attributes (Table 5b).
pub fn augment_system_wide(row: &mut Row, image: &SystemImage) {
    row.set(
        AttrName::system("Sys.IPAddress"),
        ConfigValue::parse_ip(image.ip_address())
            .unwrap_or_else(|_| ConfigValue::str(image.ip_address())),
    );
    row.set(
        AttrName::system("Sys.HostName"),
        ConfigValue::str(image.hostname()),
    );
    row.set(
        AttrName::system("Sys.FSType"),
        ConfigValue::str(image.fs_type()),
    );
    row.set(
        AttrName::system("Sys.Users"),
        ConfigValue::str(image.accounts().user_list().collect::<Vec<_>>().join(",")),
    );
    row.set(
        AttrName::system("OS.DistName"),
        ConfigValue::str(image.os_dist()),
    );
    row.set(
        AttrName::system("OS.Version"),
        ConfigValue::str(image.os_version()),
    );
    row.set(
        AttrName::system("OS.SEStatus"),
        ConfigValue::str(image.security().status_str()),
    );
    // Hardware attributes exist only for running instances (Table 7
    // footnote) — dormant EC2 images carry none, which is what makes
    // real-world case #8 undetectable from EC2 training data.
    if let Some(hw) = image.hardware() {
        row.set(
            AttrName::system("CPU.Threads"),
            ConfigValue::number(hw.cpu_threads as f64),
        );
        row.set(
            AttrName::system("CPU.Freq"),
            ConfigValue::number(hw.cpu_freq_mhz as f64),
        );
        row.set(
            AttrName::system("MemSize"),
            ConfigValue::number(hw.mem_bytes as f64),
        );
        row.set(
            AttrName::system("HDD.AvailSpace"),
            ConfigValue::number(hw.disk_avail_bytes as f64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_sysimage::HardwareSpec;

    fn image() -> SystemImage {
        SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
            .dir("/var/lib/mysql/db", "mysql", "mysql", 0o700)
            .symlink("/var/www/link", "/etc")
            .build()
    }

    #[test]
    fn filepath_augmentation_full_set() {
        let img = image();
        let mut row = Row::new("t");
        let attr = AttrName::entry("datadir");
        augment_entry(&mut row, &attr, "/var/lib/mysql", SemType::FilePath, &img);
        assert_eq!(
            row.get(&attr.augmented("owner")),
            Some(&ConfigValue::str("mysql"))
        );
        assert_eq!(
            row.get(&attr.augmented("type")),
            Some(&ConfigValue::str("dir"))
        );
        assert_eq!(
            row.get(&attr.augmented("permission")),
            Some(&ConfigValue::str("700"))
        );
        assert_eq!(
            row.get(&attr.augmented("hasDir")),
            Some(&ConfigValue::boolean(true))
        );
        assert_eq!(
            row.get(&attr.augmented("hasSymLink")),
            Some(&ConfigValue::boolean(false))
        );
    }

    #[test]
    fn missing_path_yields_absent_cells() {
        let img = image();
        let mut row = Row::new("t");
        let attr = AttrName::entry("datadir");
        augment_entry(&mut row, &attr, "/nope", SemType::FilePath, &img);
        assert_eq!(
            row.get(&attr.augmented("owner")),
            Some(&ConfigValue::Absent)
        );
        assert!(!row.has(&attr.augmented("owner")));
    }

    #[test]
    fn symlink_flag_set_for_parent() {
        let img = image();
        let mut row = Row::new("t");
        let attr = AttrName::entry("DocumentRoot");
        augment_entry(&mut row, &attr, "/var/www", SemType::FilePath, &img);
        assert_eq!(
            row.get(&attr.augmented("hasSymLink")),
            Some(&ConfigValue::boolean(true))
        );
    }

    #[test]
    fn ip_augmentation_flags() {
        let mut row = Row::new("t");
        let attr = AttrName::entry("AllowFrom");
        augment_ip(&mut row, &attr, "10.0.1.1");
        assert_eq!(
            row.get(&attr.augmented("Local")),
            Some(&ConfigValue::boolean(true))
        );
        assert_eq!(
            row.get(&attr.augmented("IPv6")),
            Some(&ConfigValue::boolean(false))
        );
        let mut row = Row::new("t");
        augment_ip(&mut row, &attr, "0.0.0.0");
        assert_eq!(
            row.get(&attr.augmented("AnyAddr")),
            Some(&ConfigValue::boolean(true))
        );
        assert_eq!(
            row.get(&attr.augmented("Local")),
            Some(&ConfigValue::boolean(false))
        );
    }

    #[test]
    fn user_augmentation_flags() {
        let img = image();
        let mut row = Row::new("t");
        let attr = AttrName::entry("user");
        augment_user(&mut row, &attr, "mysql", &img);
        assert_eq!(
            row.get(&attr.augmented("isAdmin")),
            Some(&ConfigValue::boolean(false))
        );
        assert_eq!(
            row.get(&attr.augmented("isGroup")),
            Some(&ConfigValue::str("mysql"))
        );
        let mut row = Row::new("t");
        augment_user(&mut row, &attr, "root", &img);
        assert_eq!(
            row.get(&attr.augmented("isAdmin")),
            Some(&ConfigValue::boolean(true))
        );
        assert_eq!(
            row.get(&attr.augmented("isRootGroup")),
            Some(&ConfigValue::boolean(true))
        );
    }

    #[test]
    fn system_wide_attrs_without_hardware() {
        let img = image();
        let mut row = Row::new("t");
        augment_system_wide(&mut row, &img);
        assert!(row.has(&AttrName::system("Sys.HostName")));
        assert!(row.has(&AttrName::system("OS.SEStatus")));
        assert!(!row.has(&AttrName::system("MemSize")));
    }

    #[test]
    fn system_wide_attrs_with_hardware() {
        let img = SystemImage::builder("t")
            .hardware(HardwareSpec::large())
            .build();
        let mut row = Row::new("t");
        augment_system_wide(&mut row, &img);
        assert_eq!(
            row.get(&AttrName::system("CPU.Threads")),
            Some(&ConfigValue::number(8.0))
        );
        assert!(row.has(&AttrName::system("MemSize")));
    }

    #[test]
    fn local_address_ranges() {
        assert!(is_local_address("192.168.0.5", false));
        assert!(is_local_address("172.16.1.1", false));
        assert!(!is_local_address("172.32.1.1", false));
        assert!(!is_local_address("8.8.8.8", false));
        assert!(is_local_address("fd00::1", true));
        assert!(!is_local_address("2001::1", true));
    }
}
