//! Assembly-phase metrics: rows assembled, how each entry's type was
//! resolved (custom, semantically verified, purely syntactic, or trivial
//! fallback), and how many augmented attributes the environment
//! integration added.
//!
//! All counters here are pure work counts — assembly is single-threaded
//! per system, so the totals are deterministic for a given corpus.

use encore_obs::{Counter, PhaseReport, Timer};

/// Systems assembled into dataset rows.
pub static ROWS_ASSEMBLED: Counter = Counter::new("assemble.rows.assembled");
/// Configuration entries that received a type and a cell.
pub static ENTRIES_TYPED: Counter = Counter::new("assemble.entries.typed");
/// Entries typed by a user-registered custom type (§5.3).
pub static TYPES_CUSTOM: Counter = Counter::new("assemble.types.custom");
/// Entries whose winning type needed semantic verification against the
/// environment (§4.2 step two).
pub static TYPES_SEMANTIC: Counter = Counter::new("assemble.types.semantic");
/// Entries resolved by syntactic matching alone (no environment lookup).
pub static TYPES_SYNTACTIC: Counter = Counter::new("assemble.types.syntactic");
/// Entries that fell through every candidate to the trivial `Str` type.
pub static TYPES_TRIVIAL: Counter = Counter::new("assemble.types.trivial");
/// Augmented attributes added by environment integration (§4.3).
pub static AUGMENTED_ATTRS: Counter = Counter::new("assemble.augment.attrs");
/// Attribute columns pivoted into the columnar store.
pub static COLUMNS_BUILT: Counter = Counter::new("assemble.columns.built");
/// Distinct values interned while building the columnar store.
pub static VALUES_INTERNED: Counter = Counter::new("assemble.values.interned");
/// Wall time assembling rows (parsing excluded — see
/// `assemble.parse.time`).
pub static ASSEMBLE_TIME: Timer = Timer::new("assemble.rows.time");
/// Wall time pivoting the dataset into the columnar store.
pub static COLUMNS_TIME: Timer = Timer::new("assemble.columns.time");

/// Snapshot of the assembler's half of the assembly phase (the parser
/// contributes the other half).
pub fn phase_report() -> PhaseReport {
    PhaseReport::new("assemble")
        .counter(&ROWS_ASSEMBLED)
        .counter(&ENTRIES_TYPED)
        .counter(&TYPES_CUSTOM)
        .counter(&TYPES_SEMANTIC)
        .counter(&TYPES_SYNTACTIC)
        .counter(&TYPES_TRIVIAL)
        .counter(&AUGMENTED_ATTRS)
        .counter(&COLUMNS_BUILT)
        .counter(&VALUES_INTERNED)
        .timer(&ASSEMBLE_TIME)
        .timer(&COLUMNS_TIME)
}

/// Reset every assembler instrument.
pub fn reset() {
    ROWS_ASSEMBLED.reset();
    ENTRIES_TYPED.reset();
    TYPES_CUSTOM.reset();
    TYPES_SEMANTIC.reset();
    TYPES_SYNTACTIC.reset();
    TYPES_TRIVIAL.reset();
    AUGMENTED_ATTRS.reset();
    COLUMNS_BUILT.reset();
    VALUES_INTERNED.reset();
    ASSEMBLE_TIME.reset();
    COLUMNS_TIME.reset();
}
