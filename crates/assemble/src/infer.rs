//! Two-step type inference (§4.2): syntactic matching + semantic
//! verification, with user-defined custom types (§5.3).
//!
//! The first step makes a crude guess via the pattern table; the second step
//! validates each candidate against external resources — the file system for
//! `FilePath`, `/etc/passwd` for `UserName`, `/etc/services` for
//! `PortNumber`, the IANA tables for MIME types and charsets.  "The first
//! step prunes away most of the improbable types, making the inference
//! efficient; the second step guarantees the inference accuracy."

use crate::syntactic;
use encore_model::{ConfigValue, SemType};
use encore_sysimage::SystemImage;
use std::fmt;
use std::sync::Arc;

/// Verification function: is `value` really of this type in `image`?
pub type VerifyFn = dyn Fn(&str, &SystemImage) -> bool + Send + Sync;

/// Syntactic-match function for custom types.
pub type MatchFn = dyn Fn(&str) -> bool + Send + Sync;

/// A user-defined semantic type (§5.3.1: `$$TypeDeclaration`,
/// `$$TypeInference`, `$$TypeValidation`).
#[derive(Clone)]
pub struct CustomType {
    /// Name of the custom type, reported in place of a [`SemType`].
    pub name: String,
    /// Underlying predefined type used for template eligibility.
    pub maps_to: SemType,
    matcher: Arc<MatchFn>,
    verifier: Option<Arc<VerifyFn>>,
}

impl fmt::Debug for CustomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomType")
            .field("name", &self.name)
            .field("maps_to", &self.maps_to)
            .field("has_verifier", &self.verifier.is_some())
            .finish()
    }
}

impl CustomType {
    /// Define a custom type with a syntactic matcher and an optional
    /// semantic verifier (the paper's semantic verification is optional for
    /// user types).
    pub fn new(
        name: impl Into<String>,
        maps_to: SemType,
        matcher: impl Fn(&str) -> bool + Send + Sync + 'static,
    ) -> CustomType {
        CustomType {
            name: name.into(),
            maps_to,
            matcher: Arc::new(matcher),
            verifier: None,
        }
    }

    /// Attach a semantic verifier.
    pub fn with_verifier(
        mut self,
        verifier: impl Fn(&str, &SystemImage) -> bool + Send + Sync + 'static,
    ) -> CustomType {
        self.verifier = Some(Arc::new(verifier));
        self
    }

    fn accepts(&self, value: &str, image: &SystemImage) -> bool {
        (self.matcher)(value)
            && self
                .verifier
                .as_ref()
                .map(|v| v(value, image))
                .unwrap_or(true)
    }
}

/// IANA-registered charset names we verify against (a representative subset
/// of the registry the paper cites).
const IANA_CHARSETS: [&str; 12] = [
    "UTF-8",
    "UTF-16",
    "ISO-8859-1",
    "ISO-8859-2",
    "ISO-8859-15",
    "US-ASCII",
    "EUC-JP",
    "Shift_JIS",
    "GB2312",
    "Big5",
    "KOI8-R",
    "windows-1252",
];

/// IANA top-level MIME media types.
const IANA_MIME_MAJOR: [&str; 9] = [
    "application",
    "audio",
    "font",
    "image",
    "message",
    "model",
    "multipart",
    "text",
    "video",
];

/// ISO 639-1 language codes we verify against (subset).
const ISO_639_1: [&str; 14] = [
    "aa", "de", "en", "es", "fr", "it", "ja", "ko", "nl", "pt", "ru", "sv", "zh", "el",
];

/// The type-inference engine.
#[derive(Clone, Default)]
pub struct TypeInference {
    custom: Vec<CustomType>,
}

impl fmt::Debug for TypeInference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeInference")
            .field("custom_types", &self.custom.len())
            .finish()
    }
}

impl TypeInference {
    /// Engine with only the predefined types.
    pub fn new() -> TypeInference {
        TypeInference::default()
    }

    /// Register a custom type.  Custom types have priority over predefined
    /// ones, in registration order (§5.3.1).
    pub fn register(&mut self, custom: CustomType) {
        self.custom.push(custom);
    }

    /// Registered custom types.
    pub fn custom_types(&self) -> &[CustomType] {
        &self.custom
    }

    /// Infer the semantic type of a raw value within a system image.
    ///
    /// Custom types are tried first (in registration order); then each
    /// syntactic candidate is semantically verified, and the first survivor
    /// wins.  Values failing every verification fall back to `Str` (or
    /// `Number` when numeric) — the "trivial" types of §7.2.
    pub fn infer(&self, value: &str, image: &SystemImage) -> SemType {
        let v = value.trim();
        for c in &self.custom {
            if c.accepts(v, image) {
                crate::obs::TYPES_CUSTOM.incr();
                return c.maps_to;
            }
        }
        for ty in syntactic::candidates(v) {
            if self.verify(ty, v, image) {
                if needs_semantic_verification(ty) {
                    crate::obs::TYPES_SEMANTIC.incr();
                } else {
                    crate::obs::TYPES_SYNTACTIC.incr();
                }
                return ty;
            }
        }
        crate::obs::TYPES_TRIVIAL.incr();
        SemType::Str
    }

    /// Like [`TypeInference::infer`] but reports the custom-type name when a
    /// custom type matched.
    pub fn infer_named(&self, value: &str, image: &SystemImage) -> (SemType, Option<&str>) {
        let v = value.trim();
        for c in &self.custom {
            if c.accepts(v, image) {
                crate::obs::TYPES_CUSTOM.incr();
                return (c.maps_to, Some(c.name.as_str()));
            }
        }
        (self.infer(v, image), None)
    }

    /// Semantic verification of one candidate type (§4.2 step two).
    pub fn verify(&self, ty: SemType, value: &str, image: &SystemImage) -> bool {
        match ty {
            // File-system backed types: the path/name must exist.
            SemType::FilePath => image.vfs().exists(value),
            SemType::PartialFilePath => {
                // Verified when some known file ends with the fragment —
                // a cheap full-metadata search like the paper describes.
                image
                    .vfs()
                    .file_list()
                    .any(|p| p.ends_with(value) || p.ends_with(value.trim_end_matches('/')))
            }
            SemType::FileName => {
                let suffix = format!("/{value}");
                image.vfs().file_list().any(|p| p.ends_with(&suffix))
            }
            // Account-backed types.
            SemType::UserName => image.accounts().user(value).is_some(),
            SemType::GroupName => image.accounts().group(value).is_some(),
            // Service-backed type: verified against /etc/services.
            SemType::PortNumber => value
                .parse::<u16>()
                .map(|p| image.services().knows_port(p))
                .unwrap_or(false),
            // Table-backed types.
            SemType::MimeType => value
                .split_once('/')
                .map(|(major, _)| IANA_MIME_MAJOR.contains(&major))
                .unwrap_or(false),
            SemType::Charset => IANA_CHARSETS.iter().any(|c| c.eq_ignore_ascii_case(value)),
            SemType::Language => ISO_639_1.contains(&value.to_ascii_lowercase().as_str()),
            // Purely syntactic types need no external verification (N/A in
            // Table 4); future variants default to accepting.
            _ => true,
        }
    }
}

/// Whether winning as this type required step-two semantic verification
/// against the environment (the `N/A` column of Table 4 marks the types
/// that do not).  Mirrors the arms of [`TypeInference::verify`].
fn needs_semantic_verification(ty: SemType) -> bool {
    matches!(
        ty,
        SemType::FilePath
            | SemType::PartialFilePath
            | SemType::FileName
            | SemType::UserName
            | SemType::GroupName
            | SemType::PortNumber
            | SemType::MimeType
            | SemType::Charset
            | SemType::Language
    )
}

/// Coerce a raw string into a typed [`ConfigValue`] according to the
/// inferred type.
pub fn coerce(value: &str, ty: SemType) -> ConfigValue {
    let v = value.trim();
    match ty {
        SemType::FilePath | SemType::PartialFilePath => ConfigValue::path(v),
        SemType::Number => v
            .parse::<f64>()
            .map(ConfigValue::Number)
            .unwrap_or_else(|_| ConfigValue::str(v)),
        SemType::PortNumber => v
            .parse::<f64>()
            .map(ConfigValue::Number)
            .unwrap_or_else(|_| ConfigValue::str(v)),
        SemType::Size => ConfigValue::parse_size(v).unwrap_or_else(|_| ConfigValue::str(v)),
        SemType::Boolean => ConfigValue::parse_bool(v).unwrap_or_else(|_| ConfigValue::str(v)),
        SemType::IpAddress => ConfigValue::parse_ip(v).unwrap_or_else(|_| ConfigValue::str(v)),
        _ => ConfigValue::str(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> SystemImage {
        SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
            .file("/usr/lib/php/pdo.so", "root", "root", 0o644, "")
            .service("mysql", 3306)
            .build()
    }

    #[test]
    fn file_path_requires_existence() {
        let inf = TypeInference::new();
        let img = image();
        assert_eq!(inf.infer("/var/lib/mysql", &img), SemType::FilePath);
        // Looks like a path but does not exist → falls through to Str.
        assert_eq!(inf.infer("/no/such/dir", &img), SemType::Str);
    }

    #[test]
    fn username_requires_passwd_entry() {
        let inf = TypeInference::new();
        let img = image();
        assert_eq!(inf.infer("mysql", &img), SemType::UserName);
        assert_eq!(inf.infer("nonuser", &img), SemType::Str);
    }

    #[test]
    fn port_requires_services_entry() {
        let inf = TypeInference::new();
        let img = image();
        assert_eq!(inf.infer("3306", &img), SemType::PortNumber);
        // Unregistered port number degrades to plain Number.
        assert_eq!(inf.infer("12345", &img), SemType::Number);
    }

    #[test]
    fn purely_syntactic_types() {
        let inf = TypeInference::new();
        let img = image();
        assert_eq!(inf.infer("64M", &img), SemType::Size);
        assert_eq!(inf.infer("On", &img), SemType::Boolean);
        assert_eq!(inf.infer("10.0.1.1", &img), SemType::IpAddress);
        assert_eq!(inf.infer("http://example.com", &img), SemType::Url);
        assert_eq!(inf.infer("text/html", &img), SemType::MimeType);
        assert_eq!(inf.infer("UTF-8", &img), SemType::Charset);
    }

    #[test]
    fn partial_path_verified_against_tree() {
        let inf = TypeInference::new();
        let img = image();
        assert_eq!(inf.infer("php/pdo.so", &img), SemType::PartialFilePath);
        assert_eq!(inf.infer("nothing/here.so", &img), SemType::Str);
    }

    #[test]
    fn custom_types_take_priority() {
        let mut inf = TypeInference::new();
        inf.register(CustomType::new("Percentage", SemType::Number, |v| {
            v.ends_with('%') && v[..v.len() - 1].chars().all(|c| c.is_ascii_digit())
        }));
        let img = image();
        let (ty, name) = inf.infer_named("75%", &img);
        assert_eq!(ty, SemType::Number);
        assert_eq!(name, Some("Percentage"));
        // Non-matching values fall through to predefined inference.
        assert_eq!(inf.infer("64M", &img), SemType::Size);
    }

    #[test]
    fn custom_verifier_consults_image() {
        let mut inf = TypeInference::new();
        inf.register(
            CustomType::new("ExistingUser", SemType::UserName, |v| {
                v.chars().all(char::is_alphanumeric)
            })
            .with_verifier(|v, img| img.accounts().user(v).is_some()),
        );
        let img = image();
        assert_eq!(inf.infer_named("mysql", &img).1, Some("ExistingUser"));
        assert_eq!(inf.infer_named("ghost", &img).1, None);
    }

    #[test]
    fn coerce_respects_type() {
        assert_eq!(coerce("42", SemType::Number), ConfigValue::number(42.0));
        assert_eq!(coerce("64M", SemType::Size).as_bytes(), Some(64 << 20));
        assert_eq!(coerce("Off", SemType::Boolean), ConfigValue::boolean(false));
        assert_eq!(coerce("/x", SemType::FilePath), ConfigValue::path("/x"));
    }
}
