//! Configuration values.
//!
//! A [`ConfigValue`] is the parsed form of one configuration setting or one
//! augmented environment attribute.  Values keep both a normalised typed view
//! (used by relation validators) and their raw textual form (used by the
//! value-comparison baselines and by reporting).

use crate::error::ModelError;
use std::fmt;

/// Unit suffix of a [`ConfigValue::Size`] value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum SizeUnit {
    /// Bytes (no suffix).
    B,
    /// Kibibytes (`K`).
    K,
    /// Mebibytes (`M`).
    M,
    /// Gibibytes (`G`).
    G,
    /// Tebibytes (`T`).
    T,
}

impl SizeUnit {
    /// Multiplier to bytes.
    pub fn multiplier(self) -> u64 {
        match self {
            SizeUnit::B => 1,
            SizeUnit::K => 1 << 10,
            SizeUnit::M => 1 << 20,
            SizeUnit::G => 1 << 30,
            SizeUnit::T => 1 << 40,
        }
    }

    /// Parse a single-letter suffix.
    pub fn from_suffix(c: char) -> Option<SizeUnit> {
        match c.to_ascii_uppercase() {
            'K' => Some(SizeUnit::K),
            'M' => Some(SizeUnit::M),
            'G' => Some(SizeUnit::G),
            'T' => Some(SizeUnit::T),
            _ => None,
        }
    }

    /// Canonical suffix letter (empty for bytes).
    pub fn suffix(self) -> &'static str {
        match self {
            SizeUnit::B => "",
            SizeUnit::K => "K",
            SizeUnit::M => "M",
            SizeUnit::G => "G",
            SizeUnit::T => "T",
        }
    }
}

/// A parsed configuration (or augmented-attribute) value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum ConfigValue {
    /// Free-form string (also the raw form of every other variant).
    Str(String),
    /// Numeric value (integers and decimals).
    Number(f64),
    /// Byte size with original magnitude and unit.
    Size {
        /// Magnitude in the original unit.
        magnitude: u64,
        /// The unit suffix.
        unit: SizeUnit,
    },
    /// Boolean.
    Bool(bool),
    /// Absolute or partial file-system path.
    Path(String),
    /// IP address, stored textually with an `is_v6` flag.
    Ip {
        /// Original textual address.
        text: String,
        /// Whether the address is IPv6.
        v6: bool,
    },
    /// A value that was absent in a given system (sparse dataset cell).
    Absent,
}

impl ConfigValue {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> ConfigValue {
        ConfigValue::Str(s.into())
    }

    /// Construct a path value.
    pub fn path(p: impl Into<String>) -> ConfigValue {
        ConfigValue::Path(p.into())
    }

    /// Construct a numeric value.
    pub fn number(n: f64) -> ConfigValue {
        ConfigValue::Number(n)
    }

    /// Construct a boolean value.
    pub fn boolean(b: bool) -> ConfigValue {
        ConfigValue::Bool(b)
    }

    /// Construct a size value.
    pub fn size(magnitude: u64, unit: SizeUnit) -> ConfigValue {
        ConfigValue::Size { magnitude, unit }
    }

    /// Parse an IP literal, classifying v4 vs v6.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseValue`] if the input is neither a dotted
    /// IPv4 quad nor a coloned IPv6 literal.
    pub fn parse_ip(text: &str) -> Result<ConfigValue, ModelError> {
        let t = text.trim();
        let v4 = t.split('.').count() == 4
            && t.split('.').all(|o| {
                !o.is_empty()
                    && o.chars().all(|c| c.is_ascii_digit())
                    && o.parse::<u16>().map(|v| v < 256).unwrap_or(false)
            });
        let v6 = t.contains(':') && t.chars().all(|c| c.is_ascii_hexdigit() || c == ':');
        if v4 || v6 {
            Ok(ConfigValue::Ip {
                text: t.to_string(),
                v6,
            })
        } else {
            Err(ModelError::ParseValue {
                expected: "IP address",
                input: text.to_string(),
            })
        }
    }

    /// Parse a size literal such as `64M` or `1024`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseValue`] if the magnitude is not numeric or
    /// the suffix is not one of `K`, `M`, `G`, `T`.
    pub fn parse_size(text: &str) -> Result<ConfigValue, ModelError> {
        let t = text.trim();
        let err = || ModelError::ParseValue {
            expected: "size",
            input: text.to_string(),
        };
        if t.is_empty() {
            return Err(err());
        }
        let last = t.chars().last().expect("non-empty");
        let (digits, unit) = if last.is_ascii_digit() {
            (t, SizeUnit::B)
        } else {
            let unit = SizeUnit::from_suffix(last).ok_or_else(err)?;
            (&t[..t.len() - 1], unit)
        };
        let magnitude: u64 = digits.parse().map_err(|_| err())?;
        Ok(ConfigValue::Size { magnitude, unit })
    }

    /// Parse a boolean in any of the forms configuration files use.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseValue`] for anything outside the accepted
    /// literal set.
    pub fn parse_bool(text: &str) -> Result<ConfigValue, ModelError> {
        match text.trim().to_ascii_lowercase().as_str() {
            "on" | "yes" | "true" | "1" => Ok(ConfigValue::Bool(true)),
            "off" | "no" | "false" | "0" => Ok(ConfigValue::Bool(false)),
            _ => Err(ModelError::ParseValue {
                expected: "boolean",
                input: text.to_string(),
            }),
        }
    }

    /// The value in bytes if this is a `Size`, the plain number if `Number`.
    pub fn as_bytes(&self) -> Option<u64> {
        match self {
            ConfigValue::Size { magnitude, unit } => Some(magnitude * unit.multiplier()),
            ConfigValue::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric view (sizes convert to bytes).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ConfigValue::Number(n) => Some(*n),
            ConfigValue::Size { .. } => self.as_bytes().map(|b| b as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfigValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the underlying text, if the variant carries text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s),
            ConfigValue::Path(p) => Some(p),
            ConfigValue::Ip { text, .. } => Some(text),
            _ => None,
        }
    }

    /// Whether this cell is [`ConfigValue::Absent`].
    pub fn is_absent(&self) -> bool {
        matches!(self, ConfigValue::Absent)
    }

    /// Render an unambiguous *tagged* form for persistence and interning.
    ///
    /// [`ConfigValue::render`] is lossy across variants: `Str("10")`,
    /// `Number(10.0)`, and `Size(10B)` all render `"10"`.  The tagged form
    /// prefixes the variant (mirroring [`crate::attr::AttrName::render_tagged`])
    /// so [`ConfigValue::parse_tagged`] is an exact inverse:
    /// `s:text`, `n:10`, `z:64M`, `b:1`, `p:/var/lib`, `i4:10.0.0.1`,
    /// `i6:fe80::1`, `a:`.  Numbers use `f64`'s shortest round-trip
    /// rendering, so no precision is lost.
    pub fn render_tagged(&self) -> String {
        match self {
            ConfigValue::Str(s) => format!("s:{s}"),
            ConfigValue::Number(n) => format!("n:{n}"),
            ConfigValue::Size { magnitude, unit } => format!("z:{magnitude}{}", unit.suffix()),
            ConfigValue::Bool(b) => format!("b:{}", u8::from(*b)),
            ConfigValue::Path(p) => format!("p:{p}"),
            ConfigValue::Ip { text, v6 } => {
                format!("{}:{text}", if *v6 { "i6" } else { "i4" })
            }
            ConfigValue::Absent => "a:".to_string(),
        }
    }

    /// Parse the tagged form produced by [`ConfigValue::render_tagged`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseValue`] for an unknown tag or a malformed
    /// payload (non-numeric `n:`, bad size magnitude/suffix, a `b:` payload
    /// other than `0`/`1`, or a non-empty `a:` payload).
    pub fn parse_tagged(text: &str) -> Result<ConfigValue, ModelError> {
        let err = || ModelError::ParseValue {
            expected: "tagged value",
            input: text.to_string(),
        };
        let (tag, rest) = text.split_once(':').ok_or_else(err)?;
        match tag {
            "s" => Ok(ConfigValue::Str(rest.to_string())),
            "n" => rest
                .parse::<f64>()
                .map(ConfigValue::Number)
                .map_err(|_| err()),
            "z" => ConfigValue::parse_size(rest).map_err(|_| err()),
            "b" => match rest {
                "1" => Ok(ConfigValue::Bool(true)),
                "0" => Ok(ConfigValue::Bool(false)),
                _ => Err(err()),
            },
            "p" => Ok(ConfigValue::Path(rest.to_string())),
            "i4" => Ok(ConfigValue::Ip {
                text: rest.to_string(),
                v6: false,
            }),
            "i6" => Ok(ConfigValue::Ip {
                text: rest.to_string(),
                v6: true,
            }),
            "a" if rest.is_empty() => Ok(ConfigValue::Absent),
            _ => Err(err()),
        }
    }

    /// Canonical textual rendering used for value-equality comparison by the
    /// baselines and for CSV export.
    pub fn render(&self) -> String {
        match self {
            ConfigValue::Str(s) => s.clone(),
            ConfigValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            ConfigValue::Size { magnitude, unit } => format!("{magnitude}{}", unit.suffix()),
            ConfigValue::Bool(b) => if *b { "On" } else { "Off" }.to_string(),
            ConfigValue::Path(p) => p.clone(),
            ConfigValue::Ip { text, .. } => text.clone(),
            ConfigValue::Absent => String::new(),
        }
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for ConfigValue {
    fn from(s: &str) -> Self {
        ConfigValue::Str(s.to_string())
    }
}

impl From<String> for ConfigValue {
    fn from(s: String) -> Self {
        ConfigValue::Str(s)
    }
}

impl From<f64> for ConfigValue {
    fn from(n: f64) -> Self {
        ConfigValue::Number(n)
    }
}

impl From<bool> for ConfigValue {
    fn from(b: bool) -> Self {
        ConfigValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing_and_bytes() {
        let v = ConfigValue::parse_size("64M").expect("parse");
        assert_eq!(v.as_bytes(), Some(64 << 20));
        assert_eq!(v.render(), "64M");
        let plain = ConfigValue::parse_size("2048").expect("parse");
        assert_eq!(plain.as_bytes(), Some(2048));
    }

    #[test]
    fn size_rejects_garbage() {
        assert!(ConfigValue::parse_size("").is_err());
        assert!(ConfigValue::parse_size("12Q").is_err());
        assert!(ConfigValue::parse_size("M").is_err());
    }

    #[test]
    fn bool_accepts_all_config_spellings() {
        for t in ["On", "yes", "TRUE", "1"] {
            assert_eq!(ConfigValue::parse_bool(t).unwrap().as_bool(), Some(true));
        }
        for t in ["Off", "no", "false", "0"] {
            assert_eq!(ConfigValue::parse_bool(t).unwrap().as_bool(), Some(false));
        }
        assert!(ConfigValue::parse_bool("maybe").is_err());
    }

    #[test]
    fn ip_classification() {
        match ConfigValue::parse_ip("10.0.1.1").unwrap() {
            ConfigValue::Ip { v6, .. } => assert!(!v6),
            other => panic!("unexpected {other:?}"),
        }
        match ConfigValue::parse_ip("fe80::1").unwrap() {
            ConfigValue::Ip { v6, .. } => assert!(v6),
            other => panic!("unexpected {other:?}"),
        }
        assert!(ConfigValue::parse_ip("300.1.1.1").is_err());
        assert!(ConfigValue::parse_ip("not-an-ip").is_err());
    }

    #[test]
    fn render_round_trips_for_display() {
        let v = ConfigValue::number(42.0);
        assert_eq!(v.to_string(), "42");
        let v = ConfigValue::boolean(true);
        assert_eq!(v.to_string(), "On");
    }

    #[test]
    fn number_view_of_sizes_is_bytes() {
        let v = ConfigValue::parse_size("1K").unwrap();
        assert_eq!(v.as_number(), Some(1024.0));
    }

    #[test]
    fn tagged_form_round_trips_every_variant() {
        let cases = [
            ConfigValue::str("mysql"),
            ConfigValue::str(""),
            ConfigValue::str("10"), // renders like Number(10.0) untagged
            ConfigValue::number(10.0),
            ConfigValue::number(0.1),
            ConfigValue::number(-3.5e300),
            ConfigValue::size(64, SizeUnit::M),
            ConfigValue::size(2048, SizeUnit::B),
            ConfigValue::boolean(true),
            ConfigValue::boolean(false),
            ConfigValue::path("/var/lib/mysql"),
            ConfigValue::parse_ip("10.0.1.1").unwrap(),
            ConfigValue::parse_ip("fe80::1").unwrap(),
            ConfigValue::Absent,
        ];
        for v in &cases {
            let back = ConfigValue::parse_tagged(&v.render_tagged()).unwrap();
            assert_eq!(&back, v, "{}", v.render_tagged());
        }
    }

    #[test]
    fn tagged_form_distinguishes_render_collisions() {
        // All three render "10"; the tagged forms must differ.
        let s = ConfigValue::str("10");
        let n = ConfigValue::number(10.0);
        let z = ConfigValue::size(10, SizeUnit::B);
        assert_eq!(s.render(), n.render());
        assert_eq!(n.render(), z.render());
        assert_ne!(s.render_tagged(), n.render_tagged());
        assert_ne!(n.render_tagged(), z.render_tagged());
        assert_ne!(s.render_tagged(), z.render_tagged());
    }

    #[test]
    fn tagged_form_rejects_malformed_input() {
        for bad in ["", "nocolon", "x:1", "n:abc", "z:12Q", "b:2", "a:junk"] {
            assert!(ConfigValue::parse_tagged(bad).is_err(), "{bad}");
        }
    }
}
