//! Core data model shared by every EnCore crate.
//!
//! The paper's pipeline converts heterogeneous inputs (configuration files,
//! file-system metadata, account databases, hardware descriptions) into a
//! uniform table of *attributes*: each column is a named attribute, each row
//! is one configured system.  This crate defines:
//!
//! * [`ConfigValue`] — a parsed configuration value,
//! * [`SemType`] — the semantic type lattice of §4.2 / Table 4,
//! * [`AttrName`] — an attribute name (a config entry or an augmented
//!   attribute such as `datadir.owner`),
//! * [`Dataset`] — the systems × attributes table the rule learner consumes,
//! * [`AppKind`] — the applications studied by the paper.
//!
//! # Examples
//!
//! ```
//! use encore_model::{AttrName, ConfigValue, Dataset, Row};
//!
//! let mut ds = Dataset::new();
//! let mut row = Row::new("image-0");
//! row.set(AttrName::entry("datadir"), ConfigValue::path("/var/lib/mysql"));
//! ds.push_row(row);
//! assert_eq!(ds.num_rows(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod columnar;
pub mod dataset;
pub mod error;
pub mod intern;
pub mod semtype;
pub mod value;

pub use attr::{AttrName, Augmentation};
pub use columnar::{Column, ColumnStore};
pub use dataset::{Dataset, Row};
pub use error::ModelError;
pub use intern::{AttrId, Interner, ValueId};
pub use semtype::SemType;
pub use value::{ConfigValue, SizeUnit};

use std::fmt;

/// The server applications studied in the paper's evaluation (§2.1, §7).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum AppKind {
    /// Apache httpd (core + mpm modules).
    Apache,
    /// MySQL server (`my.cnf`).
    Mysql,
    /// PHP runtime (`php.ini`).
    Php,
    /// OpenSSH daemon (`sshd_config`) — studied in Table 1 only.
    Sshd,
}

impl AppKind {
    /// The three applications used in the detection experiments (§7).
    pub const EVALUATED: [AppKind; 3] = [AppKind::Apache, AppKind::Mysql, AppKind::Php];

    /// All four applications from the manual study (Table 1).
    pub const STUDIED: [AppKind; 4] =
        [AppKind::Apache, AppKind::Mysql, AppKind::Php, AppKind::Sshd];

    /// Canonical configuration-file path for this application.
    pub fn config_path(self) -> &'static str {
        match self {
            AppKind::Apache => "/etc/httpd/conf/httpd.conf",
            AppKind::Mysql => "/etc/mysql/my.cnf",
            AppKind::Php => "/etc/php.ini",
            AppKind::Sshd => "/etc/ssh/sshd_config",
        }
    }

    /// Short lowercase name (`"apache"`, `"mysql"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Apache => "apache",
            AppKind::Mysql => "mysql",
            AppKind::Php => "php",
            AppKind::Sshd => "sshd",
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AppKind {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "apache" | "httpd" => Ok(AppKind::Apache),
            "mysql" => Ok(AppKind::Mysql),
            "php" => Ok(AppKind::Php),
            "sshd" | "ssh" => Ok(AppKind::Sshd),
            other => Err(ModelError::UnknownApp(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_kind_round_trips_through_name() {
        for app in AppKind::STUDIED {
            let parsed: AppKind = app.name().parse().expect("parse back");
            assert_eq!(parsed, app);
        }
    }

    #[test]
    fn app_kind_rejects_unknown() {
        assert!("nginx".parse::<AppKind>().is_err());
    }

    #[test]
    fn config_paths_are_absolute() {
        for app in AppKind::STUDIED {
            assert!(app.config_path().starts_with('/'));
        }
    }
}
