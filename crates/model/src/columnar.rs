//! Columnar view of a [`Dataset`]: one contiguous value-id column per
//! attribute plus a per-attribute row-presence bitset.
//!
//! The assembled [`Dataset`] is row-major — each [`crate::dataset::Row`] is
//! a `BTreeMap` from attribute to value, which is the right shape for
//! assembly but the wrong one for inference: validating one `(a, b)`
//! attribute pair against every training system walks two map lookups per
//! row.  A [`ColumnStore`] is built once after assembly and pivots the
//! table: column `i` holds the interned [`ValueId`] of attribute `i` for
//! every row in a flat `Vec<u32>`, and a presence bitset (bit `r` set iff
//! row `r` has a present, non-absent value) lets pair loops intersect two
//! columns one 64-row word at a time.
//!
//! Attribute ids follow sorted attribute order —
//! [`crate::intern::AttrId`]`(i)` is the `i`-th attribute of
//! [`Dataset::attributes`] — so any sorted attribute list over the same
//! dataset indexes columns directly.

use crate::attr::AttrName;
use crate::dataset::Dataset;
use crate::intern::{Interner, ValueId};
use std::collections::BTreeMap;

/// Sentinel stored in a column's id vector for an absent cell.
const ABSENT: u32 = u32::MAX;

/// One attribute's values across all rows: interned ids plus a presence
/// bitset.
#[derive(Debug, Clone)]
pub struct Column {
    ids: Vec<u32>,
    presence: Vec<u64>,
}

impl Column {
    /// The interned value id at `row`, or `None` when the cell is absent.
    pub fn value_id(&self, row: usize) -> Option<ValueId> {
        match self.ids[row] {
            ABSENT => None,
            id => Some(ValueId(id)),
        }
    }

    /// Whether `row` has a present (non-absent) value.
    pub fn is_present(&self, row: usize) -> bool {
        self.presence[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// The row-presence bitset: bit `r` of the words is set iff row `r` has
    /// a present value.  Identical to [`Dataset::presence_mask`] for the
    /// same attribute.
    pub fn presence(&self) -> &[u64] {
        &self.presence
    }

    /// Number of rows with a present value (the attribute's support count).
    pub fn support(&self) -> usize {
        self.presence.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Columnar, interned view over one [`Dataset`].
#[derive(Debug, Clone)]
pub struct ColumnStore {
    interner: Interner,
    num_rows: usize,
    columns: Vec<Column>,
}

impl ColumnStore {
    /// Pivot a dataset into columns, interning every attribute and distinct
    /// value.  Attributes are interned in sorted order; values in
    /// column-major order — both deterministic for a given dataset.
    pub fn build(dataset: &Dataset) -> ColumnStore {
        let mut interner = Interner::new();
        let num_rows = dataset.num_rows();
        let words = num_rows.div_ceil(64);
        let attributes: Vec<AttrName> = dataset.attributes().into_iter().collect();
        let mut columns = Vec::with_capacity(attributes.len());
        for attr in &attributes {
            interner.intern_attr(attr);
            let mut ids = vec![ABSENT; num_rows];
            let mut presence = vec![0u64; words];
            for (r, row) in dataset.rows().iter().enumerate() {
                if let Some(value) = row.get(attr).filter(|v| !v.is_absent()) {
                    ids[r] = interner.intern_value(value).0;
                    presence[r / 64] |= 1u64 << (r % 64);
                }
            }
            columns.push(Column { ids, presence });
        }
        ColumnStore {
            interner,
            num_rows,
            columns,
        }
    }

    /// The attribute/value interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Number of rows in the pivoted dataset.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attribute columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column of the attribute with sorted index `index`.
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// The column of an attribute, if the dataset contains it.
    pub fn column_of(&self, attr: &AttrName) -> Option<&Column> {
        self.interner
            .attr_id(attr)
            .map(|id| &self.columns[id.index()])
    }

    /// The exact original value behind an interned id.
    pub fn value(&self, id: ValueId) -> &crate::value::ConfigValue {
        self.interner.value(id)
    }

    /// Frequency of each rendered value in column `index`, keyed by the
    /// interned render strings.  Iterating the map yields the same
    /// (sorted-render) order and counts as [`Dataset::value_histogram`] on
    /// the source dataset.
    pub fn value_histogram(&self, index: usize) -> BTreeMap<&str, usize> {
        let column = &self.columns[index];
        let mut hist: BTreeMap<&str, usize> = BTreeMap::new();
        for &raw in &column.ids {
            if raw != ABSENT {
                *hist
                    .entry(self.interner.render_of(ValueId(raw)))
                    .or_insert(0) += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Row;
    use crate::value::ConfigValue;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..70 {
            let mut r = Row::new(format!("s{i}"));
            r.set(AttrName::entry("user"), ConfigValue::str("mysql"));
            if i % 2 == 0 {
                r.set(
                    AttrName::entry("datadir"),
                    ConfigValue::path(format!("/var/lib/mysql{}", i % 3)),
                );
            }
            if i == 5 {
                r.set(AttrName::entry("port"), ConfigValue::Absent);
            }
            ds.push_row(r);
        }
        ds
    }

    #[test]
    fn presence_matches_dataset_masks() {
        let ds = dataset();
        let store = ColumnStore::build(&ds);
        assert_eq!(store.num_rows(), 70);
        for (i, attr) in ds.attributes().iter().enumerate() {
            assert_eq!(
                store.column(i).presence(),
                ds.presence_mask(attr).as_slice(),
                "{attr}"
            );
            assert_eq!(store.column(i).support(), ds.support(attr), "{attr}");
            assert!(std::ptr::eq(
                store.column_of(attr).unwrap(),
                store.column(i)
            ));
        }
    }

    #[test]
    fn histograms_match_dataset_histograms() {
        let ds = dataset();
        let store = ColumnStore::build(&ds);
        for (i, attr) in ds.attributes().iter().enumerate() {
            let row_major = ds.value_histogram(attr);
            let columnar = store.value_histogram(i);
            let columnar_owned: Vec<(String, usize)> =
                columnar.iter().map(|(k, &v)| (k.to_string(), v)).collect();
            let row_major_vec: Vec<(String, usize)> = row_major.into_iter().collect();
            assert_eq!(columnar_owned, row_major_vec, "{attr}");
        }
    }

    #[test]
    fn cells_round_trip_through_ids() {
        let ds = dataset();
        let store = ColumnStore::build(&ds);
        for (i, attr) in ds.attributes().iter().enumerate() {
            let column = store.column(i);
            for (r, row) in ds.rows().iter().enumerate() {
                match row.get(attr).filter(|v| !v.is_absent()) {
                    Some(v) => {
                        let id = column.value_id(r).expect("present cell has an id");
                        assert!(column.is_present(r));
                        assert_eq!(store.interner().value(id), v);
                        assert_eq!(
                            store.interner().value(id).render_tagged(),
                            v.render_tagged()
                        );
                    }
                    None => {
                        assert_eq!(column.value_id(r), None);
                        assert!(!column.is_present(r));
                    }
                }
            }
        }
    }

    #[test]
    fn absent_cells_are_not_interned_as_present() {
        let ds = dataset();
        let store = ColumnStore::build(&ds);
        let port = store.column_of(&AttrName::entry("port")).expect("column");
        assert_eq!(port.support(), 0);
        assert_eq!(port.value_id(5), None);
    }
}
