//! Dense-id interning of attribute names and configuration values.
//!
//! Rule inference touches the same few hundred [`AttrName`]s and a few
//! thousand distinct [`ConfigValue`]s millions of times.  The [`Interner`]
//! maps each to a dense `u32` id resolved once per run, so the hot loops
//! compare integers instead of chasing `BTreeMap` nodes and re-rendering
//! strings.
//!
//! Interned values round-trip losslessly: ids are keyed on the *tagged*
//! rendering ([`ConfigValue::render_tagged`] /
//! [`AttrName::render_tagged`]) — the same unambiguous encodings the
//! snapshot format builds on — so two values share an id iff they are the
//! same typed value, and every id maps back to its exact original.
//!
//! Each value id additionally carries a precomputed *render class*: a dense
//! id over distinct [`ConfigValue::render`] strings.  Validators that
//! compare rendered values (`Equal`, `=~` family membership) compare render
//! classes — one integer comparison with semantics identical to comparing
//! the rendered strings.

use crate::attr::AttrName;
use crate::value::ConfigValue;
use std::collections::BTreeMap;

/// Dense id of an interned [`AttrName`].
///
/// Ids are assigned in sorted attribute order, so `AttrId(i)` is also the
/// index of the attribute in any sorted attribute list over the same
/// dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an interned [`ConfigValue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between attributes/values and dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    attrs: Vec<AttrName>,
    attr_ids: BTreeMap<AttrName, AttrId>,
    values: Vec<ConfigValue>,
    value_ids: BTreeMap<String, ValueId>,
    renders: Vec<String>,
    render_classes: Vec<u32>,
    distinct_renders: BTreeMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern an attribute name, returning its stable id.
    pub fn intern_attr(&mut self, attr: &AttrName) -> AttrId {
        if let Some(&id) = self.attr_ids.get(attr) {
            return id;
        }
        let id = AttrId(u32::try_from(self.attrs.len()).expect("< 2^32 attributes"));
        self.attrs.push(attr.clone());
        self.attr_ids.insert(attr.clone(), id);
        id
    }

    /// Intern a value, returning its stable id.  Two values share an id iff
    /// their tagged renderings ([`ConfigValue::render_tagged`]) are equal —
    /// i.e. iff they are the same typed value.
    pub fn intern_value(&mut self, value: &ConfigValue) -> ValueId {
        let tagged = value.render_tagged();
        if let Some(&id) = self.value_ids.get(&tagged) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("< 2^32 values"));
        let render = value.render();
        let next_class = u32::try_from(self.distinct_renders.len()).expect("< 2^32 renders");
        let class = *self
            .distinct_renders
            .entry(render.clone())
            .or_insert(next_class);
        self.values.push(value.clone());
        self.value_ids.insert(tagged, id);
        self.renders.push(render);
        self.render_classes.push(class);
        id
    }

    /// Look up an already-interned attribute's id.
    pub fn attr_id(&self, attr: &AttrName) -> Option<AttrId> {
        self.attr_ids.get(attr).copied()
    }

    /// Look up an already-interned value's id.
    pub fn value_id(&self, value: &ConfigValue) -> Option<ValueId> {
        self.value_ids.get(&value.render_tagged()).copied()
    }

    /// The attribute behind an id.
    pub fn attr(&self, id: AttrId) -> &AttrName {
        &self.attrs[id.index()]
    }

    /// The exact original value behind an id (the lossless round-trip).
    pub fn value(&self, id: ValueId) -> &ConfigValue {
        &self.values[id.index()]
    }

    /// The precomputed [`ConfigValue::render`] string of an interned value.
    pub fn render_of(&self, id: ValueId) -> &str {
        &self.renders[id.index()]
    }

    /// The render class of an interned value: two ids have equal classes iff
    /// their [`ConfigValue::render`] strings are equal.
    pub fn render_class(&self, id: ValueId) -> u32 {
        self.render_classes[id.index()]
    }

    /// Number of interned attributes.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of interned distinct values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizeUnit;

    #[test]
    fn value_ids_key_on_typed_identity_not_render() {
        let mut interner = Interner::new();
        let s = ConfigValue::str("10");
        let n = ConfigValue::number(10.0);
        let z = ConfigValue::size(10, SizeUnit::B);
        let ids = [
            interner.intern_value(&s),
            interner.intern_value(&n),
            interner.intern_value(&z),
        ];
        // Distinct typed values, distinct ids...
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        // ...but all render "10", so one shared render class.
        assert_eq!(interner.render_class(ids[0]), interner.render_class(ids[1]));
        assert_eq!(interner.render_class(ids[1]), interner.render_class(ids[2]));
        // Re-interning is stable.
        assert_eq!(interner.intern_value(&n), ids[1]);
        assert_eq!(interner.num_values(), 3);
    }

    #[test]
    fn interned_values_round_trip_to_tagged_rendering() {
        let mut interner = Interner::new();
        let cases = [
            ConfigValue::str("mysql"),
            ConfigValue::number(0.5),
            ConfigValue::size(64, SizeUnit::M),
            ConfigValue::boolean(true),
            ConfigValue::path("/var/lib/mysql"),
            ConfigValue::parse_ip("10.0.1.1").unwrap(),
        ];
        for v in &cases {
            let id = interner.intern_value(v);
            assert_eq!(interner.value(id), v);
            assert_eq!(interner.value(id).render_tagged(), v.render_tagged());
            assert_eq!(interner.render_of(id), v.render());
            assert_eq!(interner.value_id(v), Some(id));
        }
    }

    #[test]
    fn attr_ids_are_dense_and_stable() {
        let mut interner = Interner::new();
        let a = AttrName::entry("datadir");
        let b = AttrName::entry("datadir").augmented("owner");
        let ia = interner.intern_attr(&a);
        let ib = interner.intern_attr(&b);
        assert_eq!(ia, AttrId(0));
        assert_eq!(ib, AttrId(1));
        assert_eq!(interner.intern_attr(&a), ia);
        assert_eq!(interner.attr(ib), &b);
        assert_eq!(interner.attr_id(&a), Some(ia));
        assert_eq!(interner.attr_id(&AttrName::entry("missing")), None);
        assert_eq!(interner.num_attrs(), 2);
    }

    #[test]
    fn render_classes_distinguish_distinct_renders() {
        let mut interner = Interner::new();
        let x = interner.intern_value(&ConfigValue::str("a"));
        let y = interner.intern_value(&ConfigValue::str("b"));
        assert_ne!(interner.render_class(x), interner.render_class(y));
    }
}
