//! The systems × attributes table consumed by rule inference.
//!
//! The assembler stores one [`Row`] per configured system; columns are
//! [`AttrName`]s.  The table is sparse: an attribute absent from a system is
//! simply missing from its row (the paper skips rules whose entries are
//! absent, §6).

use crate::attr::AttrName;
use crate::error::ModelError;
use crate::value::ConfigValue;
use std::collections::{BTreeMap, BTreeSet};

/// One configured system: an id plus its attribute values.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Row {
    id: String,
    cells: BTreeMap<AttrName, ConfigValue>,
}

impl Row {
    /// Create an empty row for the system with the given id.
    pub fn new(id: impl Into<String>) -> Row {
        Row {
            id: id.into(),
            cells: BTreeMap::new(),
        }
    }

    /// The system identifier (e.g. an image name).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Set an attribute value, returning the previous value if any.
    pub fn set(&mut self, attr: AttrName, value: ConfigValue) -> Option<ConfigValue> {
        self.cells.insert(attr, value)
    }

    /// Look up an attribute value.
    pub fn get(&self, attr: &AttrName) -> Option<&ConfigValue> {
        self.cells.get(attr)
    }

    /// Whether the row has a (present) value for `attr`.
    pub fn has(&self, attr: &AttrName) -> bool {
        self.cells
            .get(attr)
            .map(|v| !v.is_absent())
            .unwrap_or(false)
    }

    /// Iterate over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &ConfigValue)> {
        self.cells.iter()
    }

    /// Number of attributes set in this row.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the row has no attributes.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The assembled dataset: a sparse table of systems × attributes.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Dataset {
    rows: Vec<Row>,
    /// Row indices sorted by system id, first insertion winning for
    /// duplicate ids (matching the find-first semantics of the linear scan
    /// this index replaced).  Maintained by every mutation path so
    /// [`Dataset::row`] stays a binary search.
    by_id: Vec<usize>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Append a system row.
    pub fn push_row(&mut self, row: Row) {
        let index = self.rows.len();
        self.rows.push(row);
        let id = self.rows[index].id();
        let pos = self.by_id.partition_point(|&i| self.rows[i].id() < id);
        if self.by_id.get(pos).map(|&i| self.rows[i].id()) != Some(id) {
            self.by_id.insert(pos, index);
        }
    }

    /// Rebuild the id index from scratch after a bulk row insertion.
    fn rebuild_index(&mut self) {
        let rows = &self.rows;
        self.by_id = (0..rows.len()).collect();
        self.by_id
            .sort_by(|&x, &y| rows[x].id().cmp(rows[y].id()).then(x.cmp(&y)));
        self.by_id
            .dedup_by(|&mut later, &mut first| rows[first].id() == rows[later].id());
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of systems.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Find a row by system id via the sorted id index — O(log rows) id
    /// comparisons, where the seed implementation scanned every row.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoSuchRow`] when the id is unknown.
    pub fn row(&self, id: &str) -> Result<&Row, ModelError> {
        match self.locate(id).0 {
            Some(i) => Ok(&self.rows[i]),
            None => Err(ModelError::NoSuchRow(id.to_string())),
        }
    }

    /// Number of id comparisons [`Dataset::row`] performs looking up `id` —
    /// instrumentation for the regression test pinning lookups to the
    /// logarithmic bound of the index.
    pub fn lookup_comparisons(&self, id: &str) -> usize {
        self.locate(id).1
    }

    /// Binary-search the id index, counting comparisons.
    fn locate(&self, id: &str) -> (Option<usize>, usize) {
        let (mut lo, mut hi, mut comparisons) = (0usize, self.by_id.len(), 0usize);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            comparisons += 1;
            match self.rows[self.by_id[mid]].id().cmp(id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return (Some(self.by_id[mid]), comparisons),
            }
        }
        (None, comparisons)
    }

    /// The set of all attribute names appearing in any row (the columns).
    pub fn attributes(&self) -> BTreeSet<AttrName> {
        self.rows
            .iter()
            .flat_map(|r| r.iter().map(|(a, _)| a.clone()))
            .collect()
    }

    /// Number of distinct attributes (columns).
    pub fn num_attributes(&self) -> usize {
        self.attributes().len()
    }

    /// Total number of occupied cells (the paper's per-occurrence attribute
    /// count in Table 2 treats each occurrence as an attribute).
    pub fn num_occurrences(&self) -> usize {
        self.rows.iter().map(Row::len).sum()
    }

    /// All present values of one attribute across rows.
    pub fn column(&self, attr: &AttrName) -> Vec<&ConfigValue> {
        self.rows
            .iter()
            .filter_map(|r| r.get(attr))
            .filter(|v| !v.is_absent())
            .collect()
    }

    /// Number of rows in which `attr` is present — the *support count* of the
    /// attribute.
    pub fn support(&self, attr: &AttrName) -> usize {
        self.rows.iter().filter(|r| r.has(attr)).count()
    }

    /// Frequency of each rendered value of `attr` (input to entropy and the
    /// Inverse Change Frequency ranking).
    pub fn value_histogram(&self, attr: &AttrName) -> BTreeMap<String, usize> {
        let mut hist = BTreeMap::new();
        for v in self.column(attr) {
            *hist.entry(v.render()).or_insert(0) += 1;
        }
        hist
    }

    /// Whether `attr` is present (non-absent) in at least one row.
    pub fn has_attribute(&self, attr: &AttrName) -> bool {
        self.rows.iter().any(|r| r.has(attr))
    }

    /// Row-presence bitset of `attr`: bit `i` of the returned words is set
    /// iff `rows[i]` has a present value for `attr`.  Two attributes can
    /// co-occur in some system iff their masks intersect — the basis of the
    /// eligibility analysis that prunes dead template work.
    pub fn presence_mask(&self, attr: &AttrName) -> Vec<u64> {
        let mut mask = vec![0u64; self.rows.len().div_ceil(64)];
        for (i, row) in self.rows.iter().enumerate() {
            if row.has(attr) {
                mask[i / 64] |= 1u64 << (i % 64);
            }
        }
        mask
    }
}

impl FromIterator<Row> for Dataset {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Self {
        let mut ds = Dataset {
            rows: iter.into_iter().collect(),
            by_id: Vec::new(),
        };
        ds.rebuild_index();
        ds
    }
}

impl Extend<Row> for Dataset {
    fn extend<T: IntoIterator<Item = Row>>(&mut self, iter: T) {
        self.rows.extend(iter);
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..3 {
            let mut r = Row::new(format!("sys-{i}"));
            r.set(AttrName::entry("user"), ConfigValue::str("mysql"));
            r.set(
                AttrName::entry("datadir"),
                ConfigValue::path(format!("/var/lib/mysql{i}")),
            );
            ds.push_row(r);
        }
        ds
    }

    #[test]
    fn columns_and_support() {
        let ds = sample();
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.num_attributes(), 2);
        assert_eq!(ds.support(&AttrName::entry("user")), 3);
        assert_eq!(ds.support(&AttrName::entry("missing")), 0);
    }

    #[test]
    fn histogram_counts_values() {
        let ds = sample();
        let hist = ds.value_histogram(&AttrName::entry("user"));
        assert_eq!(hist.get("mysql"), Some(&3));
        let hist = ds.value_histogram(&AttrName::entry("datadir"));
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn absent_values_do_not_count_as_present() {
        let mut r = Row::new("s");
        r.set(AttrName::entry("x"), ConfigValue::Absent);
        assert!(!r.has(&AttrName::entry("x")));
        let ds: Dataset = [r].into_iter().collect();
        assert_eq!(ds.support(&AttrName::entry("x")), 0);
        assert!(ds.column(&AttrName::entry("x")).is_empty());
    }

    #[test]
    fn row_lookup_by_id() {
        let ds = sample();
        assert!(ds.row("sys-1").is_ok());
        assert!(ds.row("nope").is_err());
    }

    #[test]
    fn row_lookup_is_sublinear_on_large_datasets() {
        // Regression: `row(id)` was an O(n) scan per lookup.  On 1k rows a
        // binary search needs at most ceil(log2(1000)) = 10 id comparisons;
        // allow slack, but stay far under the 500-comparison average (and
        // 1000 worst case) of the linear scan.
        let mut ds = Dataset::new();
        for i in 0..1000 {
            ds.push_row(Row::new(format!("row-{i:04}")));
        }
        for probe in ["row-0000", "row-0499", "row-0999", "no-such-row"] {
            assert!(
                ds.lookup_comparisons(probe) <= 16,
                "{probe}: {} comparisons",
                ds.lookup_comparisons(probe)
            );
        }
        // The index must agree with the scan it replaced.
        for i in (0..1000).step_by(97) {
            let id = format!("row-{i:04}");
            assert_eq!(ds.row(&id).unwrap().id(), id);
        }
        assert!(ds.row("row-1000").is_err());
    }

    #[test]
    fn duplicate_ids_resolve_to_first_inserted_row() {
        // The linear scan returned the first match; the index must too, on
        // every construction path.
        let make = |tag: &str| {
            let mut r = Row::new("dup");
            r.set(AttrName::entry("tag"), ConfigValue::str(tag));
            r
        };
        let mut pushed = Dataset::new();
        pushed.push_row(make("first"));
        pushed.push_row(make("second"));
        let collected: Dataset = [make("first"), make("second")].into_iter().collect();
        let mut extended = Dataset::new();
        extended.extend([make("first"), make("second")]);
        for (name, ds) in [
            ("push_row", &pushed),
            ("collect", &collected),
            ("extend", &extended),
        ] {
            let got = ds.row("dup").unwrap().get(&AttrName::entry("tag")).unwrap();
            assert_eq!(got.render(), "first", "{name}");
        }
    }

    #[test]
    fn index_stays_consistent_across_construction_paths() {
        let rows: Vec<Row> = (0..50).map(|i| Row::new(format!("s{i}"))).collect();
        let collected: Dataset = rows.clone().into_iter().collect();
        let mut pushed = Dataset::new();
        for r in rows.clone() {
            pushed.push_row(r);
        }
        let mut extended = Dataset::new();
        extended.extend(rows);
        for ds in [&collected, &pushed, &extended] {
            for i in 0..50 {
                let id = format!("s{i}");
                assert_eq!(ds.row(&id).unwrap().id(), id);
            }
            assert!(ds.row("s50").is_err());
        }
        assert_eq!(collected, pushed);
        assert_eq!(collected, extended);
    }

    #[test]
    fn occurrences_count_cells() {
        let ds = sample();
        assert_eq!(ds.num_occurrences(), 6);
    }

    #[test]
    fn presence_masks_track_row_membership() {
        let mut ds = sample();
        let mut sparse = Row::new("sys-3");
        sparse.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        ds.push_row(sparse);
        let user = ds.presence_mask(&AttrName::entry("user"));
        let datadir = ds.presence_mask(&AttrName::entry("datadir"));
        assert_eq!(user, vec![0b1111]);
        assert_eq!(datadir, vec![0b0111]);
        assert_eq!(ds.presence_mask(&AttrName::entry("missing")), vec![0]);
        assert!(ds.has_attribute(&AttrName::entry("user")));
        assert!(!ds.has_attribute(&AttrName::entry("missing")));
    }

    #[test]
    fn presence_mask_spans_word_boundaries() {
        let mut ds = Dataset::new();
        for i in 0..70 {
            let mut r = Row::new(format!("s{i}"));
            if i % 2 == 0 {
                r.set(AttrName::entry("even"), ConfigValue::str("x"));
            }
            ds.push_row(r);
        }
        let mask = ds.presence_mask(&AttrName::entry("even"));
        assert_eq!(mask.len(), 2);
        for i in 0..70 {
            let set = mask[i / 64] & (1u64 << (i % 64)) != 0;
            assert_eq!(set, i % 2 == 0, "row {i}");
        }
    }
}
