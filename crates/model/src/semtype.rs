//! The semantic type system of §4.2 (paper Table 4).
//!
//! EnCore's analyses are *type-directed*: a template slot only accepts
//! attributes of a matching [`SemType`], which is what makes the rule search
//! tractable (Finding 3) and what anchors environment augmentation (§4.3).

use std::fmt;

/// Semantic type of a configuration attribute.
///
/// The variants mirror paper Table 4 plus the two trivial fall-back types
/// (`Str`, and `Number` which Table 4 lists explicitly).  `Permission` and
/// `Enum` appear as augmented-attribute types in Table 5a.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[non_exhaustive]
pub enum SemType {
    /// Absolute file-system path (`/.+(/.+)*`), verified against the VFS.
    FilePath,
    /// Relative path fragment, concatenable onto a `FilePath`.
    PartialFilePath,
    /// Bare file name (no directory separators).
    FileName,
    /// System user name, verified against `/etc/passwd`.
    UserName,
    /// System group name, verified against `/etc/group`.
    GroupName,
    /// IPv4/IPv6 address (optionally with a netmask suffix).
    IpAddress,
    /// TCP/UDP port number, verified against `/etc/services`.
    PortNumber,
    /// Plain numeric quantity.
    Number,
    /// Byte size with a unit suffix (`K`, `M`, `G`, `T`).
    Size,
    /// URL (`scheme://...`).
    Url,
    /// MIME type (`major/minor`), verified against the IANA table.
    MimeType,
    /// Character-set name, verified against the IANA table.
    Charset,
    /// ISO 639-1 language code.
    Language,
    /// Boolean (On/Off, yes/no, true/false, 0/1).
    Boolean,
    /// Octal permission bits (augmented attributes only).
    Permission,
    /// Small closed set of symbolic values (augmented attributes only).
    Enum,
    /// Untyped string — the fall-back when nothing else matches.
    Str,
}

impl SemType {
    /// All predefined types, in priority order used by syntactic inference.
    ///
    /// More specific types come first: a value matching `FilePath` must be
    /// classified as such before the `Str` fall-back is considered.
    pub const PRIORITY: [SemType; 17] = [
        SemType::Url,
        SemType::IpAddress,
        SemType::Size,
        SemType::Boolean,
        SemType::FilePath,
        SemType::PartialFilePath,
        SemType::MimeType,
        SemType::Permission,
        SemType::PortNumber,
        SemType::Number,
        SemType::FileName,
        SemType::UserName,
        SemType::GroupName,
        SemType::Charset,
        SemType::Language,
        SemType::Enum,
        SemType::Str,
    ];

    /// Whether this type carries system-environment semantics, i.e. whether
    /// Table 5a defines augmented attributes for it.
    pub fn is_env_related(self) -> bool {
        matches!(
            self,
            SemType::FilePath
                | SemType::PartialFilePath
                | SemType::FileName
                | SemType::UserName
                | SemType::GroupName
                | SemType::IpAddress
                | SemType::PortNumber
        )
    }

    /// Whether the type is one of the two trivial fall-backs (§7.2 counts
    /// "NonTrivial" entries as those *not* typed `Str`/`Number`).
    pub fn is_trivial(self) -> bool {
        matches!(self, SemType::Str | SemType::Number)
    }

    /// Whether values of this type are ordered and numerically comparable
    /// (eligible for `<` templates).
    pub fn is_ordered(self) -> bool {
        matches!(self, SemType::Number | SemType::Size | SemType::PortNumber)
    }

    /// Short stable name used in rule files and reports.
    pub fn name(self) -> &'static str {
        match self {
            SemType::FilePath => "FilePath",
            SemType::PartialFilePath => "PartialFilePath",
            SemType::FileName => "FileName",
            SemType::UserName => "UserName",
            SemType::GroupName => "GroupName",
            SemType::IpAddress => "IPAddress",
            SemType::PortNumber => "PortNumber",
            SemType::Number => "Number",
            SemType::Size => "Size",
            SemType::Url => "URL",
            SemType::MimeType => "MIMEType",
            SemType::Charset => "Charset",
            SemType::Language => "Language",
            SemType::Boolean => "Boolean",
            SemType::Permission => "Permission",
            SemType::Enum => "Enum",
            SemType::Str => "String",
        }
    }

    /// Parse a type name as written in templates and customization files.
    pub fn parse_name(s: &str) -> Option<SemType> {
        let canon = s.trim();
        SemType::PRIORITY
            .iter()
            .copied()
            .find(|t| t.name().eq_ignore_ascii_case(canon))
    }
}

impl fmt::Display for SemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for ty in SemType::PRIORITY {
            assert_eq!(SemType::parse_name(ty.name()), Some(ty), "{ty}");
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(SemType::parse_name("filepath"), Some(SemType::FilePath));
        assert_eq!(SemType::parse_name(" USERNAME "), Some(SemType::UserName));
    }

    #[test]
    fn env_related_types_match_table_5a() {
        assert!(SemType::FilePath.is_env_related());
        assert!(SemType::UserName.is_env_related());
        assert!(SemType::IpAddress.is_env_related());
        assert!(!SemType::Number.is_env_related());
        assert!(!SemType::Str.is_env_related());
    }

    #[test]
    fn trivial_types_are_str_and_number() {
        let trivial: Vec<_> = SemType::PRIORITY
            .iter()
            .filter(|t| t.is_trivial())
            .collect();
        assert_eq!(trivial.len(), 2);
    }

    #[test]
    fn priority_contains_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for ty in SemType::PRIORITY {
            assert!(seen.insert(ty), "duplicate {ty}");
        }
    }
}
