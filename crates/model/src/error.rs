//! Error types for the data model.

use std::fmt;

/// Errors produced while constructing or manipulating model values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An application name could not be recognised.
    UnknownApp(String),
    /// A value string could not be parsed as the requested kind.
    ParseValue {
        /// What we tried to parse the input as.
        expected: &'static str,
        /// The offending input.
        input: String,
    },
    /// An attribute name was syntactically invalid (empty, embedded NUL, ...).
    InvalidAttrName(String),
    /// A dataset operation referenced a row that does not exist.
    NoSuchRow(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownApp(name) => write!(f, "unknown application `{name}`"),
            ModelError::ParseValue { expected, input } => {
                write!(f, "cannot parse `{input}` as {expected}")
            }
            ModelError::InvalidAttrName(name) => write!(f, "invalid attribute name `{name}`"),
            ModelError::NoSuchRow(id) => write!(f, "no row with system id `{id}`"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let err = ModelError::UnknownApp("foo".into());
        let msg = err.to_string();
        assert!(msg.starts_with("unknown"));
        assert!(!msg.ends_with('.'));
    }
}
