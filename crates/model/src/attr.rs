//! Attribute names.
//!
//! After data assembly the paper treats original configuration entries and
//! augmented environment attributes uniformly ("attribute", §3).  An
//! [`AttrName`] is the fully-qualified column name: a base entry plus an
//! optional augmentation suffix, rendered as `entry.suffix` (Table 5a) —
//! e.g. `datadir.owner` — or a free-standing environment attribute such as
//! `Sys.HostName` (Table 5b).

use crate::error::ModelError;
use std::fmt;

/// How an attribute was derived from the raw data.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Augmentation {
    /// The original configuration entry value.
    Original,
    /// An environment property attached to a typed entry (Table 5a),
    /// identified by its suffix (`owner`, `group`, `type`, ...).
    EnvProperty,
    /// Entry-independent environment data (Table 5b: `Sys.*`, `OS.*`, `HW.*`).
    SystemWide,
}

/// Fully-qualified attribute name.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct AttrName {
    base: String,
    suffix: Option<String>,
    augmentation: Augmentation,
}

impl AttrName {
    /// An original configuration entry (e.g. `datadir`).
    ///
    /// # Panics
    ///
    /// Panics if `base` is empty; use [`AttrName::try_entry`] for fallible
    /// construction from untrusted input.
    pub fn entry(base: impl Into<String>) -> AttrName {
        AttrName::try_entry(base).expect("attribute base name must be non-empty")
    }

    /// Fallible constructor for an original entry name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAttrName`] when the name is empty or
    /// contains control characters.
    pub fn try_entry(base: impl Into<String>) -> Result<AttrName, ModelError> {
        let base = base.into();
        if base.is_empty() || base.chars().any(|c| c.is_control()) {
            return Err(ModelError::InvalidAttrName(base));
        }
        Ok(AttrName {
            base,
            suffix: None,
            augmentation: Augmentation::Original,
        })
    }

    /// An augmented environment property of `self` (e.g. `datadir` →
    /// `datadir.owner`).
    pub fn augmented(&self, suffix: impl Into<String>) -> AttrName {
        AttrName {
            base: self.base.clone(),
            suffix: Some(suffix.into()),
            augmentation: Augmentation::EnvProperty,
        }
    }

    /// A system-wide environment attribute (e.g. `Sys.HostName`).
    pub fn system(name: impl Into<String>) -> AttrName {
        AttrName {
            base: name.into(),
            suffix: None,
            augmentation: Augmentation::SystemWide,
        }
    }

    /// The base entry name (without any augmentation suffix).
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The augmentation suffix, if any.
    pub fn suffix(&self) -> Option<&str> {
        self.suffix.as_deref()
    }

    /// How this attribute was derived.
    pub fn augmentation(&self) -> Augmentation {
        self.augmentation
    }

    /// Whether this is an original configuration entry.
    pub fn is_original(&self) -> bool {
        self.augmentation == Augmentation::Original
    }

    /// Whether this attribute came from the environment (either kind).
    pub fn is_environmental(&self) -> bool {
        !self.is_original()
    }

    /// Render an unambiguous tagged form for persistence.
    ///
    /// The human-readable [`fmt::Display`] form is lossy: an original entry
    /// whose name contains a dot (php's `session.use_cookies`) renders
    /// identically to an augmented property.  The tagged form prefixes the
    /// augmentation kind so [`AttrName::parse_tagged`] is an exact inverse:
    /// `O:session.use_cookies`, `E:datadir:owner`, `S:Sys.HostName`.
    /// Suffixes never contain `:` (they are the fixed Table 5a tokens), so
    /// the encoding splits on the *last* colon.
    pub fn render_tagged(&self) -> String {
        match self.augmentation {
            Augmentation::Original => format!("O:{}", self.base),
            Augmentation::EnvProperty => {
                format!("E:{}:{}", self.base, self.suffix.as_deref().unwrap_or(""))
            }
            Augmentation::SystemWide => format!("S:{}", self.base),
        }
    }

    /// Parse the tagged form produced by [`AttrName::render_tagged`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAttrName`] for an unknown tag, a missing
    /// suffix on an `E:` attribute, or an invalid base name.
    pub fn parse_tagged(text: &str) -> Result<AttrName, ModelError> {
        let err = || ModelError::InvalidAttrName(text.to_string());
        let (tag, rest) = text.split_once(':').ok_or_else(err)?;
        match tag {
            "O" => AttrName::try_entry(rest),
            "E" => {
                let (base, suffix) = rest.rsplit_once(':').ok_or_else(err)?;
                if suffix.is_empty() {
                    return Err(err());
                }
                Ok(AttrName::try_entry(base)?.augmented(suffix))
            }
            "S" => {
                if rest.is_empty() {
                    return Err(err());
                }
                Ok(AttrName::system(rest))
            }
            _ => Err(err()),
        }
    }

    /// Parse the rendered form back into an `AttrName`.
    ///
    /// `Sys.*`/`OS.*`/`HW.*`/`CPU.*`/`MemSize`/`HDD.*` prefixes parse as
    /// system-wide attributes; `x.y` parses as an augmented property of `x`;
    /// anything else is an original entry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAttrName`] for empty input.
    pub fn parse(text: &str) -> Result<AttrName, ModelError> {
        let t = text.trim();
        if t.is_empty() {
            return Err(ModelError::InvalidAttrName(text.to_string()));
        }
        const SYSTEM_PREFIXES: [&str; 5] = ["Sys.", "OS.", "HW.", "CPU.", "HDD."];
        if SYSTEM_PREFIXES.iter().any(|p| t.starts_with(p)) || t == "MemSize" {
            return Ok(AttrName::system(t));
        }
        match t.rsplit_once('.') {
            Some((base, suffix)) if !base.is_empty() && !suffix.is_empty() => {
                Ok(AttrName::try_entry(base)?.augmented(suffix))
            }
            _ => AttrName::try_entry(t),
        }
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.suffix {
            Some(s) => write!(f, "{}.{}", self.base, s),
            None => f.write_str(&self.base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augmented_names_render_with_dot() {
        let a = AttrName::entry("datadir").augmented("owner");
        assert_eq!(a.to_string(), "datadir.owner");
        assert_eq!(a.base(), "datadir");
        assert_eq!(a.suffix(), Some("owner"));
        assert!(a.is_environmental());
    }

    #[test]
    fn parse_classifies_system_attrs() {
        let a = AttrName::parse("Sys.HostName").unwrap();
        assert_eq!(a.augmentation(), Augmentation::SystemWide);
        let b = AttrName::parse("MemSize").unwrap();
        assert_eq!(b.augmentation(), Augmentation::SystemWide);
    }

    #[test]
    fn parse_round_trips_augmented() {
        let a = AttrName::entry("extension_dir").augmented("type");
        let back = AttrName::parse(&a.to_string()).unwrap();
        assert_eq!(back.base(), "extension_dir");
        assert_eq!(back.suffix(), Some("type"));
    }

    #[test]
    fn empty_names_rejected() {
        assert!(AttrName::try_entry("").is_err());
        assert!(AttrName::parse("  ").is_err());
    }

    #[test]
    fn tagged_form_round_trips_dotted_entries() {
        // `Display` is ambiguous for these; the tagged form must not be.
        let cases = [
            AttrName::entry("session.use_cookies"),
            AttrName::entry("datadir"),
            AttrName::entry("datadir").augmented("owner"),
            AttrName::entry("session.save_path").augmented("type"),
            AttrName::system("Sys.HostName"),
            AttrName::system("MemSize"),
        ];
        for attr in &cases {
            let back = AttrName::parse_tagged(&attr.render_tagged()).unwrap();
            assert_eq!(&back, attr, "{}", attr.render_tagged());
        }
        // The dotted original does NOT round-trip through the display form —
        // exactly why the tagged form exists.
        let dotted = AttrName::entry("session.use_cookies");
        assert_ne!(AttrName::parse(&dotted.to_string()).unwrap(), dotted);
    }

    #[test]
    fn tagged_form_rejects_malformed_input() {
        assert!(AttrName::parse_tagged("session.use_cookies").is_err());
        assert!(AttrName::parse_tagged("X:whatever").is_err());
        assert!(AttrName::parse_tagged("E:no_suffix").is_err());
        assert!(AttrName::parse_tagged("E:base:").is_err());
        assert!(AttrName::parse_tagged("O:").is_err());
        assert!(AttrName::parse_tagged("S:").is_err());
    }

    #[test]
    fn original_entries_have_no_suffix() {
        let a = AttrName::entry("user");
        assert!(a.is_original());
        assert_eq!(a.suffix(), None);
        assert_eq!(a.to_string(), "user");
    }
}
