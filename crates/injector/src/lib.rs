//! ConfErr-style misconfiguration injection (§7.1.1).
//!
//! The paper evaluates detection coverage by injecting random errors into
//! correctly configured systems with ConfErr (citation 25).  This crate reproduces
//! that capability: seeded, reproducible injections confined — like
//! ConfErr's — to the configuration file itself ("the error injection of
//! ConfErr is within the scope of configuration files and does not touch
//! other system locations").
//!
//! Five injection operators are implemented:
//!
//! * [`InjectionKind::Typo`] — spelling errors in entry names (omission,
//!   insertion, substitution, transposition, case flip — ConfErr's
//!   psychologically-motivated typo model),
//! * [`InjectionKind::ValueTypo`] — the same operators applied to a value,
//! * [`InjectionKind::NumericPerturbation`] — off-by-orders-of-magnitude
//!   numbers and flipped size units,
//! * [`InjectionKind::PathError`] — truncated or misdirected paths,
//! * [`InjectionKind::BoolFlip`] — boolean inversion.
//!
//! # Examples
//!
//! ```
//! use encore_injector::{Injector, InjectionKind};
//! use encore_parser::{IniLens, Lens};
//!
//! let config = "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\n";
//! let mut injector = Injector::with_seed(7);
//! let (broken, injections) = injector.inject(&IniLens::mysql(), config, 1).unwrap();
//! assert_eq!(injections.len(), 1);
//! assert_ne!(broken, config);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use encore_parser::{KeyValue, Lens, ParseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The kind of error injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InjectionKind {
    /// Spelling error in the entry name.
    Typo,
    /// Spelling error in the value.
    ValueTypo,
    /// Numeric value perturbed (magnitude or unit).
    NumericPerturbation,
    /// Path value truncated or redirected.
    PathError,
    /// Boolean value inverted.
    BoolFlip,
}

impl fmt::Display for InjectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InjectionKind::Typo => "name typo",
            InjectionKind::ValueTypo => "value typo",
            InjectionKind::NumericPerturbation => "numeric perturbation",
            InjectionKind::PathError => "path error",
            InjectionKind::BoolFlip => "boolean flip",
        };
        f.write_str(s)
    }
}

/// Record of one injected error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// What was done.
    pub kind: InjectionKind,
    /// The *original* entry name (ground truth for detection scoring).
    pub entry: String,
    /// Entry name after injection (differs for [`InjectionKind::Typo`]).
    pub entry_after: String,
    /// Value before.
    pub before: String,
    /// Value after.
    pub after: String,
}

/// Seeded error injector.
#[derive(Debug)]
pub struct Injector {
    rng: StdRng,
}

impl Injector {
    /// Deterministic injector from a seed.
    pub fn with_seed(seed: u64) -> Injector {
        Injector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Inject `n` distinct errors into a configuration file.
    ///
    /// Each error hits a different entry.  Returns the modified file text
    /// and the injection records.
    ///
    /// # Errors
    ///
    /// Propagates lens parse failures on the input text.
    pub fn inject<L: Lens + ?Sized>(
        &mut self,
        lens: &L,
        config: &str,
        n: usize,
    ) -> Result<(String, Vec<Injection>), ParseError> {
        let mut pairs = lens.parse(config)?;
        let mut injections = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut attempts = 0;
        while injections.len() < n && attempts < n * 50 {
            attempts += 1;
            if pairs.is_empty() {
                break;
            }
            let idx = self.rng.gen_range(0..pairs.len());
            if touched.contains(&idx) {
                continue;
            }
            if let Some(injection) = self.mutate(&mut pairs[idx]) {
                touched.push(idx);
                injections.push(injection);
            }
        }
        Ok((lens.render(&pairs), injections))
    }

    /// Mutate one pair, choosing an operator appropriate for its value.
    fn mutate(&mut self, pair: &mut KeyValue) -> Option<Injection> {
        let value = pair.value.clone();
        let kind = self.pick_kind(&value);
        let (entry_after, after) = match kind {
            InjectionKind::Typo => {
                let mangled = self.typo(&pair.key)?;
                (mangled, value.clone())
            }
            InjectionKind::ValueTypo => {
                let mangled = self.typo(&value)?;
                (pair.key.clone(), mangled)
            }
            InjectionKind::NumericPerturbation => (pair.key.clone(), self.perturb_number(&value)?),
            InjectionKind::PathError => (pair.key.clone(), self.break_path(&value)?),
            InjectionKind::BoolFlip => (pair.key.clone(), flip_bool(&value)?),
        };
        let record = Injection {
            kind,
            entry: pair.key.clone(),
            entry_after: entry_after.clone(),
            before: value,
            after: after.clone(),
        };
        pair.key = entry_after;
        pair.value = after;
        Some(record)
    }

    fn pick_kind(&mut self, value: &str) -> InjectionKind {
        let is_bool = flip_bool(value).is_some();
        let is_num = !value.is_empty()
            && value
                .chars()
                .next()
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false);
        let is_path = value.starts_with('/');
        // Weighted choice among the applicable operators.  Spelling errors
        // are ConfErr's signature class (its psychological typo model), so
        // name typos carry double weight.
        let mut options = vec![
            InjectionKind::Typo,
            InjectionKind::Typo,
            InjectionKind::ValueTypo,
        ];
        if is_bool {
            options.push(InjectionKind::BoolFlip);
            options.push(InjectionKind::BoolFlip);
        }
        if is_num {
            options.push(InjectionKind::NumericPerturbation);
            options.push(InjectionKind::NumericPerturbation);
        }
        if is_path {
            options.push(InjectionKind::PathError);
            options.push(InjectionKind::PathError);
        }
        options[self.rng.gen_range(0..options.len())]
    }

    /// ConfErr's five typo operators.
    fn typo(&mut self, text: &str) -> Option<String> {
        if text.len() < 2 {
            return None;
        }
        let chars: Vec<char> = text.chars().collect();
        let mut out = chars.clone();
        match self.rng.gen_range(0..5u8) {
            // omission
            0 => {
                let i = self.rng.gen_range(0..out.len());
                out.remove(i);
            }
            // insertion (duplicate a letter)
            1 => {
                let i = self.rng.gen_range(0..out.len());
                let c = out[i];
                out.insert(i, c);
            }
            // substitution (neighbouring letter)
            2 => {
                let i = self.rng.gen_range(0..out.len());
                let c = out[i];
                out[i] = if c == 'z' { 'a' } else { (c as u8 + 1) as char };
            }
            // transposition
            3 => {
                if out.len() >= 2 {
                    let i = self.rng.gen_range(0..out.len() - 1);
                    out.swap(i, i + 1);
                }
            }
            // case flip
            _ => {
                let alpha: Vec<usize> = out
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_ascii_alphabetic())
                    .map(|(i, _)| i)
                    .collect();
                if alpha.is_empty() {
                    return None;
                }
                let i = alpha[self.rng.gen_range(0..alpha.len())];
                out[i] = if out[i].is_ascii_uppercase() {
                    out[i].to_ascii_lowercase()
                } else {
                    out[i].to_ascii_uppercase()
                };
            }
        }
        let mangled: String = out.into_iter().collect();
        if mangled == text {
            None
        } else {
            Some(mangled)
        }
    }

    fn perturb_number(&mut self, value: &str) -> Option<String> {
        let digits_end = value
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(value.len());
        if digits_end == 0 {
            return None;
        }
        let (digits, suffix) = value.split_at(digits_end);
        let n: u64 = digits.parse().ok()?;
        let mutated = match self.rng.gen_range(0..3u8) {
            0 => n.checked_mul(1000)?,
            1 => n / 1000,
            _ => n.checked_add(7)?,
        };
        if mutated == n {
            return None;
        }
        Some(format!("{mutated}{suffix}"))
    }

    fn break_path(&mut self, value: &str) -> Option<String> {
        if !value.starts_with('/') || value.len() < 2 {
            return None;
        }
        Some(match self.rng.gen_range(0..3u8) {
            // truncate the last component
            0 => match value.rfind('/') {
                Some(0) | None => format!("{value}.bak"),
                Some(i) => value[..i].to_string(),
            },
            // redirect into a sibling that does not exist
            1 => format!("{value}.bak"),
            // point at a generic wrong location
            _ => format!("/tmp/{}", value.rsplit('/').next().unwrap_or("x")),
        })
    }
}

fn flip_bool(value: &str) -> Option<String> {
    let flipped = match value.to_ascii_lowercase().as_str() {
        "on" => "Off",
        "off" => "On",
        "yes" => "no",
        "no" => "yes",
        "true" => "false",
        "false" => "true",
        "1" if value == "1" => "0",
        "0" if value == "0" => "1",
        _ => return None,
    };
    Some(flipped.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_parser::IniLens;

    const CONFIG: &str = "\
[mysqld]
user = mysql
datadir = /var/lib/mysql
max_allowed_packet = 16M
skip-name-resolve = on
port = 3306
";

    #[test]
    fn injects_requested_count() {
        let mut inj = Injector::with_seed(42);
        let (text, records) = inj.inject(&IniLens::mysql(), CONFIG, 3).unwrap();
        assert_eq!(records.len(), 3);
        assert_ne!(text, CONFIG);
        // All touched entries distinct.
        let mut entries: Vec<&str> = records.iter().map(|r| r.entry.as_str()).collect();
        entries.sort_unstable();
        entries.dedup();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            Injector::with_seed(seed)
                .inject(&IniLens::mysql(), CONFIG, 2)
                .unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn result_still_parses() {
        for seed in 0..20 {
            let mut inj = Injector::with_seed(seed);
            let (text, _) = inj.inject(&IniLens::mysql(), CONFIG, 4).unwrap();
            IniLens::mysql()
                .parse(&text)
                .expect("injected config must stay parseable");
        }
    }

    #[test]
    fn every_injection_changes_something() {
        for seed in 0..30 {
            let mut inj = Injector::with_seed(seed);
            let (_, records) = inj.inject(&IniLens::mysql(), CONFIG, 3).unwrap();
            for r in records {
                assert!(
                    r.entry != r.entry_after || r.before != r.after,
                    "no-op injection {r:?}"
                );
            }
        }
    }

    #[test]
    fn bool_flip_helper() {
        assert_eq!(flip_bool("On"), Some("Off".to_string()));
        assert_eq!(flip_bool("no"), Some("yes".to_string()));
        assert_eq!(flip_bool("1"), Some("0".to_string()));
        assert_eq!(flip_bool("16M"), None);
    }

    #[test]
    fn typo_never_returns_identity() {
        let mut inj = Injector::with_seed(1);
        for _ in 0..200 {
            if let Some(t) = inj.typo("datadir") {
                assert_ne!(t, "datadir");
            }
        }
    }
}
