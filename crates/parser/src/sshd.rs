//! sshd_config lens: simple `Key value` pairs, `#` comments.

use crate::{KeyValue, Lens, ParseError};

/// Lens for OpenSSH daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct SshdLens {
    _priv: (),
}

impl SshdLens {
    /// Create the lens.
    pub fn new() -> SshdLens {
        SshdLens::default()
    }
}

impl Lens for SshdLens {
    fn name(&self) -> &str {
        "sshd_config"
    }

    fn parse(&self, text: &str) -> Result<Vec<KeyValue>, ParseError> {
        let mut pairs = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_once(char::is_whitespace) {
                Some((k, v)) => pairs.push(KeyValue::new(k.trim(), v.trim())),
                None => {
                    return Err(ParseError::BadLine {
                        line: idx + 1,
                        text: raw.to_string(),
                    })
                }
            }
        }
        Ok(pairs)
    }

    fn render(&self, pairs: &[KeyValue]) -> String {
        let mut out = String::new();
        for kv in pairs {
            out.push_str(&kv.key);
            out.push(' ');
            out.push_str(&kv.value);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SSHD: &str = "\
# sshd config
Port 22
PermitRootLogin no
AuthorizedKeysFile .ssh/authorized_keys
";

    #[test]
    fn parses_key_value_pairs() {
        let pairs = SshdLens::new().parse(SSHD).unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], KeyValue::new("Port", "22"));
        assert_eq!(pairs[1], KeyValue::new("PermitRootLogin", "no"));
    }

    #[test]
    fn bare_key_is_error() {
        assert!(SshdLens::new().parse("UseDNS\n").is_err());
    }

    #[test]
    fn round_trip() {
        let lens = SshdLens::new();
        let pairs = lens.parse(SSHD).unwrap();
        assert_eq!(lens.parse(&lens.render(&pairs)).unwrap(), pairs);
    }
}
