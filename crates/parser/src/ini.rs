//! INI-style lens for `my.cnf` and `php.ini`.
//!
//! Both MySQL and PHP configurations are line-oriented `key = value` files
//! with `[section]` headers and `#`/`;` comments.  MySQL additionally allows
//! bare flag entries (`skip-external-locking`) which parse as a key with an
//! empty value.

use crate::{KeyValue, Lens, ParseError};

/// Lens for INI-family configuration files.
#[derive(Debug, Clone)]
pub struct IniLens {
    name: String,
    /// Whether the target section is filtered (`Some("mysqld")` keeps only
    /// entries under `[mysqld]`, matching how the paper analyses `my.cnf`).
    section_filter: Option<String>,
    /// Whether bare flag lines (no `=`) are legal.
    allow_flags: bool,
    /// Section to emit in `render`.
    render_section: Option<String>,
}

impl IniLens {
    /// Generic INI lens: all sections kept, flags allowed.
    pub fn new(name: impl Into<String>) -> IniLens {
        IniLens {
            name: name.into(),
            section_filter: None,
            allow_flags: true,
            render_section: None,
        }
    }

    /// MySQL `my.cnf` lens: keeps the `[mysqld]` section, allows flags.
    pub fn mysql() -> IniLens {
        IniLens {
            name: "my.cnf".to_string(),
            section_filter: Some("mysqld".to_string()),
            allow_flags: true,
            render_section: Some("mysqld".to_string()),
        }
    }

    /// PHP `php.ini` lens: all sections, `=` required.
    pub fn php() -> IniLens {
        IniLens {
            name: "php.ini".to_string(),
            section_filter: None,
            allow_flags: false,
            render_section: Some("PHP".to_string()),
        }
    }
}

impl Lens for IniLens {
    fn name(&self) -> &str {
        &self.name
    }

    fn parse(&self, text: &str) -> Result<Vec<KeyValue>, ParseError> {
        let mut pairs = Vec::new();
        let mut current_section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                match rest.strip_suffix(']') {
                    Some(name) => {
                        current_section = Some(name.trim().to_string());
                        continue;
                    }
                    None => {
                        return Err(ParseError::BadLine {
                            line: idx + 1,
                            text: raw.to_string(),
                        })
                    }
                }
            }
            if let Some(filter) = &self.section_filter {
                if current_section.as_deref() != Some(filter.as_str()) {
                    continue;
                }
            }
            if let Some((k, v)) = line.split_once('=') {
                let key = k.trim();
                if key.is_empty() {
                    return Err(ParseError::BadLine {
                        line: idx + 1,
                        text: raw.to_string(),
                    });
                }
                // Strip a trailing same-line comment and surrounding quotes.
                let mut value = v.trim();
                if let Some(i) = value.find(" ;").or_else(|| value.find(" #")) {
                    value = value[..i].trim();
                }
                let value = value.trim_matches('"');
                pairs.push(KeyValue::new(key, value));
            } else if self.allow_flags
                && line
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
            {
                pairs.push(KeyValue::new(line, ""));
            } else {
                return Err(ParseError::BadLine {
                    line: idx + 1,
                    text: raw.to_string(),
                });
            }
        }
        Ok(pairs)
    }

    fn render(&self, pairs: &[KeyValue]) -> String {
        let mut out = String::new();
        if let Some(section) = &self.render_section {
            out.push('[');
            out.push_str(section);
            out.push_str("]\n");
        }
        for kv in pairs {
            if kv.value.is_empty() && self.allow_flags {
                out.push_str(&kv.key);
            } else {
                out.push_str(&kv.key);
                out.push_str(" = ");
                out.push_str(&kv.value);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MY_CNF: &str = "\
# MySQL configuration
[client]
port = 3306

[mysqld]
user = mysql
datadir = /var/lib/mysql
max_allowed_packet = 16M
skip-external-locking
log_error = /var/log/mysql/error.log
";

    #[test]
    fn mysql_lens_filters_to_mysqld() {
        let pairs = IniLens::mysql().parse(MY_CNF).unwrap();
        let keys: Vec<_> = pairs.iter().map(|p| p.key.as_str()).collect();
        assert!(keys.contains(&"datadir"));
        assert!(keys.contains(&"skip-external-locking"));
        // client-section port must be filtered out
        assert!(!keys.contains(&"port"));
    }

    #[test]
    fn flags_have_empty_value() {
        let pairs = IniLens::mysql().parse(MY_CNF).unwrap();
        let flag = pairs
            .iter()
            .find(|p| p.key == "skip-external-locking")
            .unwrap();
        assert_eq!(flag.value, "");
    }

    #[test]
    fn php_lens_parses_all_sections() {
        let text = "[PHP]\nmemory_limit = 64M\n; comment\nupload_max_filesize = 2M\n[Date]\ndate.timezone = UTC\n";
        let pairs = IniLens::php().parse(text).unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2].key, "date.timezone");
    }

    #[test]
    fn php_lens_rejects_bare_flags() {
        assert!(IniLens::php().parse("[PHP]\nbare_flag\n").is_err());
    }

    #[test]
    fn quotes_and_inline_comments_stripped() {
        let pairs = IniLens::php()
            .parse("[PHP]\nextension_dir = \"/usr/lib/php\" ; where modules live\n")
            .unwrap();
        assert_eq!(pairs[0].value, "/usr/lib/php");
    }

    #[test]
    fn bad_section_header_reports_line() {
        let err = IniLens::php().parse("[PHP\nx = 1\n").unwrap_err();
        match err {
            ParseError::BadLine { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip() {
        let lens = IniLens::mysql();
        let pairs = lens.parse(MY_CNF).unwrap();
        let rendered = lens.render(&pairs);
        let back = lens.parse(&rendered).unwrap();
        assert_eq!(pairs, back);
    }
}
