//! Parsing metrics for the assembly phase: files parsed, key–value entries
//! produced, and parse failures, measured at the [`LensRegistry`] dispatch
//! point (direct `Lens::parse` calls bypass the registry and are not
//! counted).
//!
//! [`LensRegistry`]: crate::LensRegistry

use encore_obs::{Counter, PhaseReport, Timer};

/// Configuration files handed to a registered lens.
pub static PARSE_CALLS: Counter = Counter::new("assemble.parse.files");
/// Key–value entries the lenses produced.
pub static PARSE_ENTRIES: Counter = Counter::new("assemble.parse.entries");
/// Parse failures (missing lens or lens error).
pub static PARSE_ERRORS: Counter = Counter::new("assemble.parse.errors");
/// Wall time inside lens parsing.
pub static PARSE_TIME: Timer = Timer::new("assemble.parse.time");

/// Snapshot of the parsing half of the assembly phase, to be merged into
/// the assembler's `assemble` report.
pub fn phase_report() -> PhaseReport {
    PhaseReport::new("assemble")
        .counter(&PARSE_CALLS)
        .counter(&PARSE_ENTRIES)
        .counter(&PARSE_ERRORS)
        .timer(&PARSE_TIME)
}

/// Reset every parsing instrument.
pub fn reset() {
    PARSE_CALLS.reset();
    PARSE_ENTRIES.reset();
    PARSE_ERRORS.reset();
    PARSE_TIME.reset();
}
