//! Lens registry — Augeas-style extensible dispatch.
//!
//! "Augeas provides an extensible interface to import other parsers,
//! enabling users to easily import their own configuration parser into
//! EnCore" (§4.1).  The registry reproduces that: predefined lenses for the
//! studied applications, plus [`LensRegistry::register`] for user lenses.

use crate::{ApacheLens, IniLens, KeyValue, Lens, ParseError, SshdLens};
use std::collections::HashMap;
use std::sync::Arc;

/// Registry mapping application names to lenses.
#[derive(Clone)]
pub struct LensRegistry {
    lenses: HashMap<String, Arc<dyn Lens>>,
}

impl std::fmt::Debug for LensRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LensRegistry")
            .field("apps", &self.apps())
            .finish()
    }
}

impl Default for LensRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl LensRegistry {
    /// An empty registry.
    pub fn new() -> LensRegistry {
        LensRegistry {
            lenses: HashMap::new(),
        }
    }

    /// A registry preloaded with the four studied applications.
    pub fn with_defaults() -> LensRegistry {
        let mut r = LensRegistry::new();
        r.register("apache", Arc::new(ApacheLens::new()));
        r.register("mysql", Arc::new(IniLens::mysql()));
        r.register("php", Arc::new(IniLens::php()));
        r.register("sshd", Arc::new(SshdLens::new()));
        r
    }

    /// Register (or replace) a lens for an application name.
    pub fn register(&mut self, app: &str, lens: Arc<dyn Lens>) {
        self.lenses.insert(app.to_string(), lens);
    }

    /// Look up the lens for an application.
    pub fn lens(&self, app: &str) -> Option<&Arc<dyn Lens>> {
        self.lenses.get(app)
    }

    /// Parse `text` with the lens registered for `app`.
    ///
    /// # Errors
    ///
    /// [`ParseError::NoLens`] if no lens is registered, otherwise whatever
    /// the lens reports.
    pub fn parse(&self, app: &str, text: &str) -> Result<Vec<KeyValue>, ParseError> {
        let _span = crate::obs::PARSE_TIME.span();
        crate::obs::PARSE_CALLS.incr();
        let result = match self.lens(app) {
            Some(l) => l.parse(text),
            None => Err(ParseError::NoLens(app.to_string())),
        };
        match &result {
            Ok(pairs) => crate::obs::PARSE_ENTRIES.add(pairs.len() as u64),
            Err(_) => crate::obs::PARSE_ERRORS.incr(),
        }
        result
    }

    /// Registered application names, sorted.
    pub fn apps(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.lenses.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_studied_apps() {
        let r = LensRegistry::with_defaults();
        assert_eq!(r.apps(), vec!["apache", "mysql", "php", "sshd"]);
    }

    #[test]
    fn dispatch_parses_per_app() {
        let r = LensRegistry::with_defaults();
        let pairs = r.parse("php", "[PHP]\nmemory_limit = 64M\n").unwrap();
        assert_eq!(pairs[0].key, "memory_limit");
        assert!(matches!(r.parse("nginx", ""), Err(ParseError::NoLens(_))));
    }

    #[test]
    fn user_lens_registration() {
        struct TrivialLens;
        impl Lens for TrivialLens {
            fn name(&self) -> &str {
                "trivial"
            }
            fn parse(&self, text: &str) -> Result<Vec<KeyValue>, ParseError> {
                Ok(text
                    .lines()
                    .filter_map(|l| l.split_once(':'))
                    .map(|(k, v)| KeyValue::new(k, v))
                    .collect())
            }
            fn render(&self, pairs: &[KeyValue]) -> String {
                pairs
                    .iter()
                    .map(|p| format!("{}:{}", p.key, p.value))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
        let mut r = LensRegistry::with_defaults();
        r.register("custom", Arc::new(TrivialLens));
        let pairs = r.parse("custom", "a:1\nb:2").unwrap();
        assert_eq!(pairs.len(), 2);
    }
}
