//! Apache httpd configuration lens.
//!
//! httpd.conf is directive-oriented: `Directive arg1 arg2 ...` plus nested
//! container sections `<Directory /path> ... </Directory>`.  The lens
//! flattens this structure into keys:
//!
//! * single-argument directives → `Directive` = arg,
//! * multi-argument directives → `Directive/arg1`, `Directive/arg2`, ...
//!   (the paper's rule `ServerRoot + LoadModule/arg2 => <FilePath exists>`
//!   relies on exactly this naming, Figure 4(b)),
//! * section-scoped directives → `Section:arg|Directive` — the `|`
//!   separator cannot collide with slashes inside section arguments
//!   (Apache "allows nested configuration entries at arbitrary levels"
//!   and unseen section/entry combinations are flagged, §7.1.2).
//!
//! Repeated directives (e.g. many `LoadModule` lines) get an occurrence
//! index: `LoadModule#0/arg1`, `LoadModule#1/arg1`, ...

use crate::{KeyValue, Lens, ParseError};
use std::collections::HashMap;

/// Lens for Apache httpd-style configuration.
#[derive(Debug, Clone, Default)]
pub struct ApacheLens {
    _priv: (),
}

impl ApacheLens {
    /// Create the lens.
    pub fn new() -> ApacheLens {
        ApacheLens::default()
    }

    /// Directives that legitimately repeat and therefore carry an occurrence
    /// index in their flattened key.
    fn is_repeatable(directive: &str) -> bool {
        matches!(
            directive,
            "LoadModule" | "AddType" | "AddHandler" | "Alias" | "Listen" | "Include"
        )
    }
}

/// Split a directive line into words, honouring double quotes.
fn split_args(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    for c in line.chars() {
        match c {
            '"' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl Lens for ApacheLens {
    fn name(&self) -> &str {
        "httpd.conf"
    }

    fn parse(&self, text: &str) -> Result<Vec<KeyValue>, ParseError> {
        let mut pairs = Vec::new();
        let mut section_stack: Vec<String> = Vec::new();
        let mut occurrence: HashMap<String, usize> = HashMap::new();

        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("</") {
                let name = rest.trim_end_matches('>').trim();
                match section_stack.pop() {
                    Some(open) if open.split(':').next() == Some(name) => continue,
                    _ => {
                        return Err(ParseError::MismatchedClose {
                            line: idx + 1,
                            found: name.to_string(),
                        })
                    }
                }
            }
            if let Some(rest) = line.strip_prefix('<') {
                let inner = rest.trim_end_matches('>').trim();
                let mut words = split_args(inner);
                if words.is_empty() {
                    return Err(ParseError::BadLine {
                        line: idx + 1,
                        text: raw.to_string(),
                    });
                }
                let name = words.remove(0);
                let arg = words.join(" ");
                // Expose the section argument as a stable attribute
                // (`Directory#0/section` = "/var/www/html") so correlations
                // between directives and section scopes are learnable —
                // e.g. "DocumentRoot should have a related <Directory>"
                // (real-world case #1).
                if !arg.is_empty() {
                    let prefix = if section_stack.is_empty() {
                        String::new()
                    } else {
                        format!("{}|", section_stack.join("|"))
                    };
                    let n = occurrence.entry(format!("<{name}>")).or_insert(0);
                    pairs.push(KeyValue::new(
                        format!("{prefix}{name}#{n}/section"),
                        arg.clone(),
                    ));
                    *n += 1;
                }
                section_stack.push(if arg.is_empty() {
                    name
                } else {
                    format!("{name}:{arg}")
                });
                continue;
            }
            let words = split_args(line);
            if words.is_empty() {
                continue;
            }
            let directive = &words[0];
            let prefix = if section_stack.is_empty() {
                String::new()
            } else {
                format!("{}|", section_stack.join("|"))
            };
            let base = if ApacheLens::is_repeatable(directive) {
                let n = occurrence.entry(directive.clone()).or_insert(0);
                let key = format!("{prefix}{directive}#{n}");
                *n += 1;
                key
            } else {
                format!("{prefix}{directive}")
            };
            match words.len() {
                1 => pairs.push(KeyValue::new(base, "")),
                2 => pairs.push(KeyValue::new(base, words[1].clone())),
                _ => {
                    for (i, arg) in words[1..].iter().enumerate() {
                        pairs.push(KeyValue::new(format!("{base}/arg{}", i + 1), arg.clone()));
                    }
                }
            }
        }
        if let Some(open) = section_stack.pop() {
            return Err(ParseError::UnclosedSection {
                name: open.split(':').next().unwrap_or(&open).to_string(),
            });
        }
        Ok(pairs)
    }

    fn render(&self, pairs: &[KeyValue]) -> String {
        // Re-group multi-arg directives (`Key/argN`) and section scopes.
        let mut out = String::new();
        let mut open_sections: Vec<String> = Vec::new();
        let mut grouped: Vec<(String, Vec<(usize, String)>)> = Vec::new();
        for kv in pairs {
            let (scope_key, argpos) = match kv.key.rfind("/arg") {
                Some(i)
                    if kv.key[i + 4..].chars().all(|c| c.is_ascii_digit())
                        && !kv.key[i + 4..].is_empty() =>
                {
                    (
                        kv.key[..i].to_string(),
                        kv.key[i + 4..].parse::<usize>().expect("digits"),
                    )
                }
                _ => (kv.key.clone(), 0),
            };
            match grouped.last_mut() {
                Some((k, args)) if *k == scope_key && argpos > 0 => {
                    args.push((argpos, kv.value.clone()))
                }
                _ => grouped.push((scope_key, vec![(argpos, kv.value.clone())])),
            }
        }
        for (key, mut args) in grouped {
            let parts: Vec<&str> = key.split('|').collect();
            // Section-argument pairs (`Name#n/section`) are the
            // authoritative section openers.
            let last = parts[parts.len() - 1];
            if let Some(sec) = last.strip_suffix("/section") {
                let name = sec.split('#').next().unwrap_or(sec);
                let arg = args.first().map(|(_, v)| v.clone()).unwrap_or_default();
                // Close sections deeper than this one's outer scope.
                let outer = &parts[..parts.len() - 1];
                while open_sections.len() > outer.len()
                    || !open_sections.iter().zip(outer.iter()).all(|(a, b)| a == *b)
                {
                    match open_sections.pop() {
                        Some(closed) => {
                            let n = closed.split(':').next().unwrap_or(&closed);
                            out.push_str(&format!("</{n}>\n"));
                        }
                        None => break,
                    }
                }
                out.push_str(&format!("<{name} {arg}>\n"));
                open_sections.push(format!("{name}:{arg}"));
                continue;
            }
            let sections = &parts[..parts.len() - 1];
            // close sections no longer in scope
            while open_sections.len() > sections.len()
                || !open_sections
                    .iter()
                    .zip(sections.iter())
                    .all(|(a, b)| a == *b)
            {
                let closed = open_sections.pop().expect("non-empty while unequal");
                let name = closed.split(':').next().unwrap_or(&closed);
                out.push_str(&format!("</{name}>\n"));
                if open_sections.len() <= sections.len()
                    && open_sections
                        .iter()
                        .zip(sections.iter())
                        .all(|(a, b)| a == *b)
                {
                    break;
                }
            }
            // open new sections
            for s in &sections[open_sections.len()..] {
                match s.split_once(':') {
                    Some((name, arg)) => out.push_str(&format!("<{name} {arg}>\n")),
                    None => out.push_str(&format!("<{s}>\n")),
                }
                open_sections.push(s.to_string());
            }
            let directive_raw = parts[parts.len() - 1];
            let directive = directive_raw.split('#').next().unwrap_or(directive_raw);
            args.sort_by_key(|(pos, _)| *pos);
            let rendered_args: Vec<String> = args
                .into_iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(_, v)| {
                    if v.contains(' ') {
                        format!("\"{v}\"")
                    } else {
                        v
                    }
                })
                .collect();
            if rendered_args.is_empty() {
                out.push_str(&format!("{directive}\n"));
            } else {
                out.push_str(&format!("{directive} {}\n", rendered_args.join(" ")));
            }
        }
        while let Some(closed) = open_sections.pop() {
            let name = closed.split(':').next().unwrap_or(&closed);
            out.push_str(&format!("</{name}>\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HTTPD: &str = r#"
# Apache configuration
ServerRoot "/etc/httpd"
Listen 80
LoadModule auth_basic_module modules/mod_auth_basic.so
LoadModule mime_module modules/mod_mime.so
User apache
DocumentRoot "/var/www/html"
<Directory /var/www/html>
    Options Indexes FollowSymLinks
    AllowOverride None
</Directory>
Timeout 60
"#;

    #[test]
    fn single_arg_directives() {
        let pairs = ApacheLens::new().parse(HTTPD).unwrap();
        let get = |k: &str| pairs.iter().find(|p| p.key == k).map(|p| p.value.as_str());
        assert_eq!(get("ServerRoot"), Some("/etc/httpd"));
        assert_eq!(get("User"), Some("apache"));
        assert_eq!(get("Timeout"), Some("60"));
    }

    #[test]
    fn repeated_multiarg_directives_get_indices() {
        let pairs = ApacheLens::new().parse(HTTPD).unwrap();
        let get = |k: &str| pairs.iter().find(|p| p.key == k).map(|p| p.value.as_str());
        assert_eq!(get("LoadModule#0/arg1"), Some("auth_basic_module"));
        assert_eq!(get("LoadModule#0/arg2"), Some("modules/mod_auth_basic.so"));
        assert_eq!(get("LoadModule#1/arg2"), Some("modules/mod_mime.so"));
        assert_eq!(get("Listen#0"), Some("80"));
    }

    #[test]
    fn sections_scope_keys() {
        let pairs = ApacheLens::new().parse(HTTPD).unwrap();
        let get = |k: &str| pairs.iter().find(|p| p.key == k).map(|p| p.value.as_str());
        assert_eq!(get("Directory:/var/www/html|AllowOverride"), Some("None"));
        assert_eq!(get("Directory:/var/www/html|Options/arg1"), Some("Indexes"));
        assert_eq!(
            get("Directory:/var/www/html|Options/arg2"),
            Some("FollowSymLinks")
        );
    }

    #[test]
    fn unclosed_section_is_error() {
        let err = ApacheLens::new()
            .parse("<Directory /x>\nOptions None\n")
            .unwrap_err();
        assert!(matches!(err, ParseError::UnclosedSection { .. }));
    }

    #[test]
    fn mismatched_close_is_error() {
        let err = ApacheLens::new()
            .parse("<Directory /x>\n</Files>\n")
            .unwrap_err();
        assert!(matches!(err, ParseError::MismatchedClose { .. }));
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let pairs = ApacheLens::new()
            .parse("ServerAdmin \"web master\"\n")
            .unwrap();
        assert_eq!(pairs[0].value, "web master");
    }

    #[test]
    fn round_trip() {
        let lens = ApacheLens::new();
        let pairs = lens.parse(HTTPD).unwrap();
        let rendered = lens.render(&pairs);
        let back = lens.parse(&rendered).unwrap();
        assert_eq!(pairs, back, "render:\n{rendered}");
    }
}

#[cfg(test)]
mod section_arg_tests {
    use super::*;

    #[test]
    fn section_args_exposed_as_attributes() {
        let pairs = ApacheLens::new()
            .parse("DocumentRoot /var/www/html\n<Directory /var/www/html>\nAllowOverride None\n</Directory>\n")
            .unwrap();
        let sec = pairs
            .iter()
            .find(|p| p.key == "Directory#0/section")
            .unwrap();
        assert_eq!(sec.value, "/var/www/html");
    }

    #[test]
    fn section_arg_round_trip() {
        let lens = ApacheLens::new();
        let text = "DocumentRoot /srv/www\n<Directory /srv/www>\nAllowOverride All\n</Directory>\n<Directory /var/www/cgi-bin>\nOptions None\n</Directory>\n";
        let pairs = lens.parse(text).unwrap();
        let back = lens.parse(&lens.render(&pairs)).unwrap();
        assert_eq!(pairs, back, "render:\n{}", lens.render(&pairs));
    }

    #[test]
    fn empty_section_round_trip() {
        let lens = ApacheLens::new();
        let pairs = lens
            .parse("<Directory /opt>\n</Directory>\nTimeout 60\n")
            .unwrap();
        assert_eq!(pairs.len(), 2);
        let back = lens.parse(&lens.render(&pairs)).unwrap();
        assert_eq!(pairs, back, "render:\n{}", lens.render(&pairs));
    }
}
