//! Configuration-file parsing — the Augeas substitute (§4.1).
//!
//! The paper builds its parser on Augeas, which maps application-specific
//! configuration formats to uniform key–value pairs and lets users plug in
//! their own lenses.  This crate reproduces that contract with hand-written
//! lenses for the three evaluated applications plus sshd:
//!
//! * [`IniLens`] — `my.cnf` / `php.ini` style (`key = value`, `[section]`s,
//!   `#`/`;` comments),
//! * [`ApacheLens`] — httpd directives (`Key value...`, multi-argument
//!   directives exposed as `Key/argN`, nested `<Section arg>` blocks
//!   flattened as `Section:arg/Key`),
//! * [`SshdLens`] — `Key value` pairs.
//!
//! A [`LensRegistry`] dispatches by application kind and accepts
//! user-registered lenses, mirroring Augeas' extensible interface.
//!
//! # Examples
//!
//! ```
//! use encore_parser::{IniLens, Lens};
//!
//! let pairs = IniLens::mysql().parse("[mysqld]\ndatadir = /var/lib/mysql\n").unwrap();
//! assert_eq!(pairs[0].key, "datadir");
//! assert_eq!(pairs[0].value, "/var/lib/mysql");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apache;
pub mod ini;
pub mod obs;
pub mod registry;
pub mod sshd;

pub use apache::ApacheLens;
pub use ini::IniLens;
pub use registry::LensRegistry;
pub use sshd::SshdLens;

use std::fmt;

/// One parsed configuration pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyValue {
    /// Flattened entry key (may embed section/argument context).
    pub key: String,
    /// Raw textual value.
    pub value: String,
}

impl KeyValue {
    /// Construct a pair.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> KeyValue {
        KeyValue {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line could not be interpreted by the lens.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A `<Section>` block was left unclosed (Apache lens).
    UnclosedSection {
        /// The section name.
        name: String,
    },
    /// A closing tag did not match the open section (Apache lens).
    MismatchedClose {
        /// 1-based line number.
        line: usize,
        /// What was found.
        found: String,
    },
    /// No lens is registered for the requested application.
    NoLens(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, text } => {
                write!(f, "cannot parse line {line}: `{text}`")
            }
            ParseError::UnclosedSection { name } => write!(f, "unclosed section <{name}>"),
            ParseError::MismatchedClose { line, found } => {
                write!(f, "mismatched closing tag `{found}` at line {line}")
            }
            ParseError::NoLens(app) => write!(f, "no lens registered for `{app}`"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A configuration lens: text → key–value pairs, and back.
///
/// Implementors should guarantee the round-trip property
/// `parse(render(pairs)) == pairs` for pairs they themselves produced.
pub trait Lens: Send + Sync {
    /// Lens name (for diagnostics and registry listings).
    fn name(&self) -> &str;

    /// Parse a configuration file body.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first unparseable construct.
    fn parse(&self, text: &str) -> Result<Vec<KeyValue>, ParseError>;

    /// Render key–value pairs back to configuration text.
    fn render(&self, pairs: &[KeyValue]) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_is_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(KeyValue::new("a", "1"));
        s.insert(KeyValue::new("a", "1"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::BadLine {
            line: 3,
            text: "???".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
