//! Synthetic configuration corpora — the EC2 / private-cloud substitute.
//!
//! The paper trains on public Amazon EC2 images (127 Apache, 187 MySQL,
//! 123 PHP) and evaluates on 120 fresh EC2 images plus 300 images from a
//! commercial private cloud.  None of that data is available, so this crate
//! generates the closest synthetic equivalent (DESIGN.md §2):
//!
//! * [`schema`] — per-application configuration schemas: entry names,
//!   semantic types, realistic value distributions, and the environment
//!   couplings (ownership, path existence, orderings) that EnCore's
//!   templates learn,
//! * [`genimage`] — a deterministic, seeded generator producing
//!   [`SystemImage`](encore_sysimage::SystemImage) populations: pristine
//!   training fleets and evaluation fleets with seeded misconfigurations,
//! * [`realworld`] — the ten real-world misconfiguration scenarios of
//!   paper Table 9, each reconstructed as a failing image,
//! * [`study`] — the manual-study database behind paper Table 1.
//!
//! # Examples
//!
//! ```
//! use encore_corpus::genimage::{Population, PopulationOptions};
//! use encore_model::AppKind;
//!
//! let fleet = Population::training(AppKind::Mysql, &PopulationOptions::new(20, 1));
//! assert_eq!(fleet.images().len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genimage;
pub mod realworld;
pub mod schema;
pub mod study;

pub use genimage::{MisconfigCategory, Population, PopulationOptions, SeededMisconfig};
pub use realworld::{InfoKind, RealWorldCase};
pub use schema::{AppSchema, EntrySpec, ValueDist};
