//! The manual configuration-entry study behind paper Table 1 (§2.1).
//!
//! The paper's authors manually examined the configuration entries of four
//! server applications, counting how many relate to the execution
//! environment and how many correlate with other entries.  Our equivalent
//! of that manual exercise is the schema database: each [`EntrySpec`](crate::schema::EntrySpec)
//! carries `env_related` and `correlated` flags assigned while modelling
//! the entry.  This module aggregates them into the Table 1 rows.

use crate::schema::AppSchema;
use encore_model::AppKind;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyRow {
    /// The application.
    pub app: AppKind,
    /// Total entries examined.
    pub total: usize,
    /// Entries associated with the environment.
    pub env_related: usize,
    /// Entries correlated with other entries.
    pub correlated: usize,
}

impl StudyRow {
    /// Percentage of environment-related entries.
    pub fn env_percent(&self) -> f64 {
        100.0 * self.env_related as f64 / self.total as f64
    }

    /// Percentage of correlated entries.
    pub fn corr_percent(&self) -> f64 {
        100.0 * self.correlated as f64 / self.total as f64
    }
}

/// Aggregate the Table 1 rows for all four studied applications.
pub fn table_1() -> Vec<StudyRow> {
    AppKind::STUDIED
        .iter()
        .map(|&app| {
            let schema = AppSchema::for_app(app);
            StudyRow {
                app,
                total: schema.entries().len(),
                env_related: schema.env_related_count(),
                correlated: schema.correlated_count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_in_app_order() {
        let rows = table_1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].app, AppKind::Apache);
        assert_eq!(rows[3].app, AppKind::Sshd);
    }

    #[test]
    fn significant_portions_flagged() {
        for row in table_1() {
            // Paper: >20% of entries point to environment objects; around a
            // third to half correlate.
            assert!(row.env_percent() >= 10.0, "{:?}", row);
            assert!(row.corr_percent() >= 15.0, "{:?}", row);
            assert!(row.env_related <= row.total);
            assert!(row.correlated <= row.total);
        }
    }
}
