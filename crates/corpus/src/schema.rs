//! Per-application configuration schemas.
//!
//! A schema describes every configuration entry of an application: its
//! semantic type, how values are distributed across a fleet of systems,
//! whether the entry relates to the execution environment, and whether it
//! correlates with other entries.  The generator ([`crate::genimage`])
//! samples schemas into concrete configuration files plus the environment
//! state (directories, owners, permissions) the values reference, and the
//! [`crate::study`] module derives the Table 1 statistics from the flags.
//!
//! Entry lists follow the real applications' configuration vocabularies
//! (Apache core+mpm directives, MySQL `[mysqld]` options, PHP core
//! `php.ini` settings, sshd keywords) at the same scale the paper studied:
//! 94 / 113 / 53 / 57 entries.

use encore_model::{AppKind, SemType};

/// How an entry's value is distributed across a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDist {
    /// Every system uses the same value (a default nobody changes — the
    /// entropy filter's target).
    Fixed(&'static str),
    /// Weighted choice from a closed set.
    Choice(&'static [(&'static str, u32)]),
    /// A directory path drawn from a pool `base{0..variants}`; the chosen
    /// directory is materialized in the image's VFS.
    PathPool {
        /// Path prefix (e.g. `/var/lib/mysql`).
        base: &'static str,
        /// Number of pool variants.
        variants: u32,
    },
    /// A file path pool; the file is materialized.
    FilePool {
        /// Path prefix.
        base: &'static str,
        /// Number of variants.
        variants: u32,
        /// File-name suffix (e.g. `.log`).
        suffix: &'static str,
    },
    /// Numbers sampled from a fixed ladder of plausible settings.
    NumberLadder(&'static [&'static str]),
    /// Sizes sampled from a ladder (`16M`, `32M`, ...).
    SizeLadder(&'static [&'static str]),
    /// Booleans with a probability (percent) of being on.
    BoolPercentOn(u32),
}

/// Environment/correlation couplings the generator enforces (and the
/// templates learn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// The referenced directory/file is owned by the user named in the
    /// `user_entry` configuration entry.
    OwnedBy {
        /// The UserName-typed entry that owns this path.
        user_entry: &'static str,
    },
    /// This entry must be numerically/size-wise smaller than another entry.
    LessThan {
        /// The larger entry.
        other: &'static str,
        /// Percent of systems violating the ordering (training noise; the
        /// paper's confidence filter runs at 90%).
        violation_percent: u32,
    },
    /// A partial path which, concatenated onto `base_entry`, exists.
    ConcatOnto {
        /// The FilePath-typed base entry.
        base_entry: &'static str,
    },
    /// Equal to (one instance of) another entry.
    EqualsEntry {
        /// The mirrored entry.
        other: &'static str,
    },
    /// Boolean entry that must be On whenever the directory named by
    /// `path_entry` contains symlinks.
    GuardsSymlinks {
        /// The guarded FilePath entry.
        path_entry: &'static str,
    },
}

/// One configuration entry's specification.
#[derive(Debug, Clone, PartialEq)]
pub struct EntrySpec {
    /// Entry name as written in the configuration file.
    pub name: &'static str,
    /// Ground-truth semantic type (Table 11's oracle).
    pub ty: SemType,
    /// Value distribution across a fleet.
    pub dist: ValueDist,
    /// Percent of systems that set this entry at all.
    pub presence_percent: u32,
    /// Whether the entry references the execution environment (Table 1).
    pub env_related: bool,
    /// Whether the entry correlates with other entries (Table 1).
    pub correlated: bool,
    /// Enforced coupling, if any.
    pub coupling: Option<Coupling>,
}

impl EntrySpec {
    const fn new(name: &'static str, ty: SemType, dist: ValueDist, presence: u32) -> EntrySpec {
        EntrySpec {
            name,
            ty,
            dist,
            presence_percent: presence,
            env_related: false,
            correlated: false,
            coupling: None,
        }
    }

    const fn env(mut self) -> EntrySpec {
        self.env_related = true;
        self
    }

    const fn corr(mut self) -> EntrySpec {
        self.correlated = true;
        self
    }

    const fn couple(mut self, c: Coupling) -> EntrySpec {
        self.coupling = Some(c);
        self.correlated = true;
        self
    }
}

/// A complete application schema.
#[derive(Debug, Clone)]
pub struct AppSchema {
    app: AppKind,
    entries: Vec<EntrySpec>,
}

impl AppSchema {
    /// The schema for an application.
    pub fn for_app(app: AppKind) -> AppSchema {
        let entries = match app {
            AppKind::Apache => apache_entries(),
            AppKind::Mysql => mysql_entries(),
            AppKind::Php => php_entries(),
            AppKind::Sshd => sshd_entries(),
        };
        AppSchema { app, entries }
    }

    /// The application.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// All entry specifications.
    pub fn entries(&self) -> &[EntrySpec] {
        &self.entries
    }

    /// Look up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&EntrySpec> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Number of entries flagged environment-related (Table 1).
    pub fn env_related_count(&self) -> usize {
        self.entries.iter().filter(|e| e.env_related).count()
    }

    /// Number of entries flagged correlated (Table 1).
    pub fn correlated_count(&self) -> usize {
        self.entries.iter().filter(|e| e.correlated).count()
    }

    /// Number of entries whose ground-truth type is non-trivial (Table 11).
    pub fn nontrivial_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.ty.is_trivial()).count()
    }

    /// Whether operators actually *tune* this entry across a fleet — it
    /// carries a coupling, is the partner of another entry's coupling, or
    /// offers a wide settings menu (ladder of 4+ values).  Tuned entries
    /// sample diversely; everything else keeps its shipped default almost
    /// everywhere, which is what EC2 template images look like (§7.3).
    pub fn is_tuned(&self, name: &str) -> bool {
        let spec = match self.entry(name) {
            Some(s) => s,
            None => return false,
        };
        if spec.coupling.is_some() {
            return true;
        }
        if let ValueDist::NumberLadder(l) | ValueDist::SizeLadder(l) = &spec.dist {
            if l.len() >= 4 {
                return true;
            }
        }
        self.entries.iter().any(|e| {
            matches!(
                e.coupling,
                Some(Coupling::LessThan { other, .. }) if other == name
            ) || matches!(
                e.coupling,
                Some(Coupling::EqualsEntry { other }) if other == name
            )
        })
    }
}

// Shorthand used by the tables below.
use Coupling::*;
use SemType::*;
use ValueDist::*;

const ON_OFF_MOSTLY_OFF: ValueDist = BoolPercentOn(15);
const ON_OFF_MOSTLY_ON: ValueDist = BoolPercentOn(85);
const ON_OFF_MIXED: ValueDist = BoolPercentOn(55);

/// Apache httpd: 94 core+mpm directives (Table 1 row 1).
fn apache_entries() -> Vec<EntrySpec> {
    vec![
        // --- serving fundamentals ------------------------------------------------
        EntrySpec::new(
            "ServerRoot",
            FilePath,
            PathPool {
                base: "/etc/httpd",
                variants: 3,
            },
            100,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "DocumentRoot",
            FilePath,
            PathPool {
                base: "/var/www/html",
                variants: 32,
            },
            100,
        )
        .env()
        .couple(OwnedBy { user_entry: "User" }),
        EntrySpec::new(
            "User",
            UserName,
            Choice(&[("apache", 8), ("www-data", 3), ("nobody", 1)]),
            100,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "Group",
            GroupName,
            Choice(&[("apache", 8), ("www-data", 3), ("nobody", 1)]),
            100,
        )
        .env()
        .couple(EqualsEntry { other: "User" }),
        EntrySpec::new(
            "Listen",
            PortNumber,
            Choice(&[("80", 12), ("8080", 3), ("443", 2)]),
            100,
        )
        .env(),
        EntrySpec::new(
            "ServerName",
            Str,
            Choice(&[
                ("localhost", 6),
                ("web01.example.com", 3),
                ("www.example.com", 3),
            ]),
            85,
        ),
        EntrySpec::new(
            "ServerAdmin",
            Str,
            Choice(&[("root@localhost", 7), ("webmaster@example.com", 5)]),
            90,
        ),
        EntrySpec::new(
            "PidFile",
            FilePath,
            FilePool {
                base: "/var/run/httpd",
                variants: 2,
                suffix: ".pid",
            },
            95,
        )
        .env(),
        EntrySpec::new(
            "ErrorLog",
            FilePath,
            FilePool {
                base: "/var/log/httpd/error",
                variants: 24,
                suffix: ".log",
            },
            100,
        )
        .env()
        .couple(OwnedBy { user_entry: "User" }),
        EntrySpec::new(
            "CustomLog",
            FilePath,
            FilePool {
                base: "/var/log/httpd/access",
                variants: 24,
                suffix: ".log",
            },
            90,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "LogLevel",
            Str,
            Choice(&[("warn", 9), ("error", 3), ("debug", 1)]),
            95,
        ),
        EntrySpec::new("LogFormat", Str, Fixed("%h %l %u %t \\\"%r\\\" %>s %b"), 80),
        EntrySpec::new(
            "TransferLog",
            FilePath,
            FilePool {
                base: "/var/log/httpd/transfer",
                variants: 2,
                suffix: ".log",
            },
            25,
        )
        .env(),
        EntrySpec::new(
            "ScoreBoardFile",
            FilePath,
            FilePool {
                base: "/var/run/httpd/scoreboard",
                variants: 2,
                suffix: "",
            },
            30,
        )
        .env(),
        EntrySpec::new(
            "CoreDumpDirectory",
            FilePath,
            PathPool {
                base: "/var/tmp/httpd-core",
                variants: 2,
            },
            20,
        )
        .env(),
        EntrySpec::new(
            "LockFile",
            FilePath,
            FilePool {
                base: "/var/lock/httpd",
                variants: 2,
                suffix: ".lock",
            },
            40,
        )
        .env(),
        EntrySpec::new(
            "Include",
            PartialFilePath,
            Choice(&[
                ("conf.d/ssl.conf", 5),
                ("conf.d/php.conf", 5),
                ("conf.d/vhosts.conf", 2),
            ]),
            70,
        )
        .env()
        .couple(ConcatOnto {
            base_entry: "ServerRoot",
        }),
        EntrySpec::new(
            "TypesConfig",
            FilePath,
            FilePool {
                base: "/etc/mime",
                variants: 2,
                suffix: ".types",
            },
            85,
        )
        .env(),
        EntrySpec::new(
            "MIMEMagicFile",
            PartialFilePath,
            Choice(&[("conf/magic", 9), ("conf/magic.local", 1)]),
            60,
        )
        .env()
        .couple(ConcatOnto {
            base_entry: "ServerRoot",
        }),
        EntrySpec::new(
            "DirectoryIndex",
            FileName,
            Choice(&[("index.html", 8), ("index.php", 4), ("default.htm", 1)]),
            95,
        )
        .env(),
        EntrySpec::new(
            "AccessFileName",
            FileName,
            Choice(&[(".htaccess", 12), (".acl", 1)]),
            80,
        )
        .env(),
        // --- connection management ----------------------------------------------
        EntrySpec::new("Timeout", Number, NumberLadder(&["60", "120", "300"]), 95),
        EntrySpec::new("KeepAlive", Boolean, ON_OFF_MOSTLY_ON, 95),
        EntrySpec::new(
            "MaxKeepAliveRequests",
            Number,
            NumberLadder(&["100", "200", "500"]),
            90,
        ),
        EntrySpec::new(
            "KeepAliveTimeout",
            Number,
            NumberLadder(&["5", "15", "30"]),
            90,
        )
        .couple(LessThan {
            other: "Timeout",
            violation_percent: 3,
        }),
        EntrySpec::new("ListenBacklog", Number, NumberLadder(&["511", "1024"]), 25),
        EntrySpec::new(
            "SendBufferSize",
            Number,
            NumberLadder(&["0", "16384", "65536"]),
            20,
        ),
        EntrySpec::new(
            "ReceiveBufferSize",
            Number,
            NumberLadder(&["0", "16384"]),
            15,
        ),
        // --- mpm tuning -----------------------------------------------------------
        EntrySpec::new("StartServers", Number, NumberLadder(&["5", "8", "10"]), 90).corr(),
        EntrySpec::new(
            "MinSpareServers",
            Number,
            NumberLadder(&["5", "10", "25"]),
            90,
        )
        .couple(LessThan {
            other: "MaxSpareServers",
            violation_percent: 4,
        }),
        EntrySpec::new(
            "MaxSpareServers",
            Number,
            NumberLadder(&["20", "50", "75"]),
            90,
        )
        .corr(),
        EntrySpec::new("ServerLimit", Number, NumberLadder(&["256", "512"]), 70).corr(),
        EntrySpec::new(
            "MaxClients",
            Number,
            NumberLadder(&["150", "256", "512"]),
            90,
        )
        .couple(LessThan {
            other: "ServerLimit",
            violation_percent: 4,
        }),
        EntrySpec::new(
            "MaxRequestsPerChild",
            Number,
            NumberLadder(&["0", "4000", "10000"]),
            85,
        ),
        EntrySpec::new("MinSpareThreads", Number, NumberLadder(&["25", "75"]), 45).couple(
            LessThan {
                other: "MaxSpareThreads",
                violation_percent: 4,
            },
        ),
        EntrySpec::new("MaxSpareThreads", Number, NumberLadder(&["75", "250"]), 45).corr(),
        EntrySpec::new("ThreadsPerChild", Number, NumberLadder(&["25", "64"]), 45),
        EntrySpec::new("ThreadLimit", Number, NumberLadder(&["64", "128"]), 40),
        EntrySpec::new("MaxMemFree", Number, NumberLadder(&["0", "2048"]), 15),
        EntrySpec::new(
            "GracefulShutdownTimeout",
            Number,
            NumberLadder(&["0", "30"]),
            10,
        ),
        // --- identity & lookup ----------------------------------------------------
        EntrySpec::new("UseCanonicalName", Boolean, ON_OFF_MOSTLY_OFF, 70),
        EntrySpec::new("HostnameLookups", Boolean, Fixed("Off"), 90),
        EntrySpec::new(
            "ServerTokens",
            Str,
            Choice(&[("OS", 6), ("Prod", 5), ("Full", 1)]),
            80,
        ),
        EntrySpec::new("ServerSignature", Boolean, ON_OFF_MIXED, 80),
        EntrySpec::new("TraceEnable", Boolean, ON_OFF_MOSTLY_OFF, 40),
        EntrySpec::new("ExtendedStatus", Boolean, ON_OFF_MOSTLY_OFF, 35),
        EntrySpec::new(
            "FileETag",
            Str,
            Choice(&[("INode MTime Size", 8), ("MTime Size", 3), ("None", 1)]),
            30,
        ),
        EntrySpec::new("ContentDigest", Boolean, ON_OFF_MOSTLY_OFF, 15),
        // --- content handling -------------------------------------------------
        EntrySpec::new(
            "AddDefaultCharset",
            Charset,
            Choice(&[("UTF-8", 10), ("ISO-8859-1", 3)]),
            75,
        )
        .env(),
        EntrySpec::new(
            "DefaultType",
            MimeType,
            Choice(&[("text/plain", 10), ("text/html", 2)]),
            70,
        )
        .env(),
        EntrySpec::new(
            "AddLanguage",
            Language,
            Choice(&[("en", 8), ("fr", 2), ("de", 2), ("ja", 1)]),
            55,
        )
        .env(),
        EntrySpec::new(
            "LanguagePriority",
            Language,
            Choice(&[("en", 10), ("fr", 1), ("de", 1)]),
            50,
        )
        .env(),
        EntrySpec::new(
            "ForceLanguagePriority",
            Str,
            Choice(&[("Prefer Fallback", 9), ("Prefer", 2)]),
            45,
        ),
        EntrySpec::new(
            "AddType",
            MimeType,
            Choice(&[
                ("application/x-httpd-php", 5),
                ("text/x-component", 2),
                ("application/x-tar", 2),
            ]),
            65,
        )
        .env(),
        EntrySpec::new(
            "AddEncoding",
            Str,
            Choice(&[("x-compress .Z", 5), ("x-gzip .gz .tgz", 6)]),
            40,
        ),
        EntrySpec::new(
            "AddHandler",
            Str,
            Choice(&[("cgi-script .cgi", 6), ("type-map var", 3)]),
            40,
        ),
        EntrySpec::new(
            "AddCharset",
            Charset,
            Choice(&[("UTF-8", 7), ("ISO-8859-2", 2), ("KOI8-R", 1)]),
            30,
        )
        .env(),
        EntrySpec::new(
            "DefaultIcon",
            PartialFilePath,
            Choice(&[("icons/unknown.gif", 11), ("icons/blank.gif", 1)]),
            45,
        )
        .env(),
        EntrySpec::new("ReadmeName", FileName, Fixed("README.html"), 40),
        EntrySpec::new("HeaderName", FileName, Fixed("HEADER.html"), 40),
        EntrySpec::new("IndexIgnore", Str, Fixed(".??* *~ *# HEADER* README*"), 40),
        EntrySpec::new(
            "IndexOptions",
            Str,
            Choice(&[("FancyIndexing HTMLTable", 8), ("FancyIndexing", 4)]),
            45,
        ),
        EntrySpec::new(
            "AddIcon",
            Str,
            Choice(&[
                ("/icons/binary.gif .bin .exe", 6),
                ("/icons/tar.gif .tar", 4),
            ]),
            35,
        ),
        EntrySpec::new(
            "AddIconByType",
            Str,
            Fixed("(TXT,/icons/text.gif) text/*"),
            30,
        ),
        EntrySpec::new(
            "AddIconByEncoding",
            Str,
            Fixed("(CMP,/icons/compressed.gif) x-compress x-gzip"),
            30,
        ),
        EntrySpec::new(
            "ErrorDocument",
            Str,
            Choice(&[("404 /error/404.html", 5), ("500 /error/500.html", 4)]),
            35,
        ),
        // --- access & overrides -----------------------------------------------
        EntrySpec::new(
            "AllowOverride",
            Str,
            Choice(&[("None", 9), ("All", 3), ("AuthConfig", 1)]),
            90,
        ),
        EntrySpec::new(
            "Order",
            Str,
            Choice(&[("allow,deny", 9), ("deny,allow", 3)]),
            85,
        ),
        EntrySpec::new(
            "Allow",
            Str,
            Choice(&[("from all", 11), ("from 10.0.0.0/8", 2)]),
            85,
        ),
        EntrySpec::new(
            "Deny",
            Str,
            Choice(&[("from none", 8), ("from all", 3)]),
            40,
        ),
        EntrySpec::new(
            "Options",
            Str,
            Choice(&[("Indexes FollowSymLinks", 8), ("None", 3), ("All", 1)]),
            90,
        )
        .corr(),
        EntrySpec::new("FollowSymLinks", Boolean, BoolPercentOn(70), 85)
            .env()
            .couple(GuardsSymlinks {
                path_entry: "DocumentRoot",
            }),
        EntrySpec::new(
            "Alias",
            Str,
            Choice(&[
                ("/icons/ /var/www/icons/", 8),
                ("/error/ /var/www/error/", 5),
            ]),
            60,
        ),
        EntrySpec::new(
            "ScriptAlias",
            Str,
            Choice(&[("/cgi-bin/ /var/www/cgi-bin/", 11), ("/cgi/ /srv/cgi/", 1)]),
            60,
        ),
        EntrySpec::new(
            "NameVirtualHost",
            Str,
            Choice(&[("*:80", 10), ("192.168.0.10:80", 1)]),
            30,
        ),
        EntrySpec::new(
            "SetHandler",
            Str,
            Choice(&[("server-status", 6), ("server-info", 2)]),
            20,
        ),
        EntrySpec::new(
            "BrowserMatch",
            Str,
            Fixed("\\\"Mozilla/2\\\" nokeepalive"),
            35,
        ),
        // --- limits -----------------------------------------------------------
        EntrySpec::new(
            "LimitRequestBody",
            Number,
            NumberLadder(&["0", "1048576", "10485760"]),
            30,
        ),
        EntrySpec::new(
            "LimitRequestFields",
            Number,
            NumberLadder(&["100", "200"]),
            20,
        ),
        EntrySpec::new("LimitRequestFieldSize", Number, NumberLadder(&["8190"]), 15),
        EntrySpec::new("LimitRequestLine", Number, NumberLadder(&["8190"]), 15),
        EntrySpec::new("RLimitCPU", Number, NumberLadder(&["60", "120"]), 10),
        EntrySpec::new(
            "RLimitMEM",
            Number,
            NumberLadder(&["67108864", "134217728"]),
            10,
        ),
        EntrySpec::new("RLimitNPROC", Number, NumberLadder(&["25", "50"]), 10),
        // --- misc ---------------------------------------------------------------
        EntrySpec::new("EnableMMAP", Boolean, ON_OFF_MOSTLY_ON, 35),
        EntrySpec::new("EnableSendfile", Boolean, ON_OFF_MOSTLY_ON, 40),
        EntrySpec::new(
            "SetEnv",
            Str,
            Choice(&[("APP_ENV production", 7), ("APP_ENV staging", 3)]),
            25,
        ),
        EntrySpec::new(
            "ServerPort",
            PortNumber,
            Choice(&[("80", 12), ("8080", 3), ("443", 2)]),
            55,
        )
        .couple(EqualsEntry { other: "Listen" }),
        EntrySpec::new(
            "UserDir",
            Str,
            Choice(&[("disabled", 9), ("public_html", 3)]),
            45,
        ),
        EntrySpec::new(
            "CacheRoot",
            FilePath,
            PathPool {
                base: "/var/cache/httpd",
                variants: 2,
            },
            15,
        )
        .env(),
        EntrySpec::new("CacheEnable", Str, Fixed("disk /"), 12),
        EntrySpec::new("RewriteEngine", Boolean, ON_OFF_MIXED, 35),
        EntrySpec::new("ProxyRequests", Boolean, ON_OFF_MOSTLY_OFF, 20),
        EntrySpec::new("ProxyVia", Boolean, ON_OFF_MOSTLY_OFF, 15),
    ]
}

/// MySQL `[mysqld]`: 113 options (Table 1 row 2).
fn mysql_entries() -> Vec<EntrySpec> {
    vec![
        // --- identity & storage ------------------------------------------------
        EntrySpec::new(
            "user",
            UserName,
            Choice(&[("mysql", 10), ("mysqld", 2), ("root", 1)]),
            100,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "datadir",
            FilePath,
            PathPool {
                base: "/var/lib/mysql",
                variants: 32,
            },
            100,
        )
        .env()
        .couple(OwnedBy { user_entry: "user" }),
        EntrySpec::new(
            "basedir",
            FilePath,
            PathPool {
                base: "/usr",
                variants: 2,
            },
            70,
        )
        .env(),
        EntrySpec::new(
            "tmpdir",
            FilePath,
            PathPool {
                base: "/tmp",
                variants: 16,
            },
            80,
        )
        .env(),
        EntrySpec::new(
            "socket",
            FilePath,
            FilePool {
                base: "/var/lib/mysql/mysql",
                variants: 3,
                suffix: ".sock",
            },
            95,
        )
        .env(),
        EntrySpec::new(
            "pid-file",
            FilePath,
            FilePool {
                base: "/var/run/mysqld/mysqld",
                variants: 2,
                suffix: ".pid",
            },
            90,
        )
        .env(),
        EntrySpec::new("port", PortNumber, Choice(&[("3306", 40), ("3307", 1)]), 95).env(),
        EntrySpec::new(
            "bind-address",
            IpAddress,
            Choice(&[("127.0.0.1", 8), ("0.0.0.0", 5), ("10.0.0.5", 1)]),
            85,
        )
        .env(),
        EntrySpec::new(
            "lc-messages-dir",
            FilePath,
            PathPool {
                base: "/usr/share/mysql",
                variants: 2,
            },
            60,
        )
        .env(),
        EntrySpec::new("server-id", Number, NumberLadder(&["1", "2", "10"]), 60),
        // --- logging -------------------------------------------------------------
        EntrySpec::new(
            "log_error",
            FilePath,
            FilePool {
                base: "/var/log/mysql/error",
                variants: 24,
                suffix: ".log",
            },
            95,
        )
        .env()
        .couple(OwnedBy { user_entry: "user" }),
        EntrySpec::new("general_log", Boolean, ON_OFF_MOSTLY_OFF, 60),
        EntrySpec::new(
            "general_log_file",
            FilePath,
            FilePool {
                base: "/var/log/mysql/general",
                variants: 3,
                suffix: ".log",
            },
            55,
        )
        .env()
        .corr(),
        EntrySpec::new("slow_query_log", Boolean, ON_OFF_MIXED, 65),
        EntrySpec::new(
            "slow_query_log_file",
            FilePath,
            FilePool {
                base: "/var/log/mysql/slow",
                variants: 3,
                suffix: ".log",
            },
            60,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "long_query_time",
            Number,
            NumberLadder(&["1", "2", "10"]),
            65,
        ),
        EntrySpec::new("log_warnings", Number, NumberLadder(&["1", "2"]), 45),
        EntrySpec::new(
            "log_queries_not_using_indexes",
            Boolean,
            ON_OFF_MOSTLY_OFF,
            35,
        ),
        EntrySpec::new(
            "expire_logs_days",
            Number,
            NumberLadder(&["7", "10", "30"]),
            55,
        ),
        EntrySpec::new(
            "log-bin",
            FilePath,
            FilePool {
                base: "/var/log/mysql/bin",
                variants: 3,
                suffix: ".log",
            },
            45,
        )
        .env(),
        EntrySpec::new(
            "binlog_format",
            Str,
            Choice(&[("STATEMENT", 6), ("ROW", 5), ("MIXED", 2)]),
            40,
        ),
        EntrySpec::new("sync_binlog", Number, NumberLadder(&["0", "1"]), 35),
        EntrySpec::new(
            "max_binlog_size",
            Size,
            SizeLadder(&["100M", "512M", "1G"]),
            45,
        ),
        EntrySpec::new("max_binlog_cache_size", Size, SizeLadder(&["2G", "4G"]), 20),
        EntrySpec::new("log_slave_updates", Boolean, ON_OFF_MOSTLY_OFF, 20),
        EntrySpec::new(
            "relay_log",
            FilePath,
            FilePool {
                base: "/var/log/mysql/relay",
                variants: 2,
                suffix: ".log",
            },
            20,
        )
        .env(),
        EntrySpec::new(
            "relay_log_index",
            FilePath,
            FilePool {
                base: "/var/log/mysql/relay",
                variants: 2,
                suffix: ".index",
            },
            15,
        )
        .env(),
        EntrySpec::new("relay_log_info_file", FileName, Fixed("relay-log.info"), 15).env(),
        // --- buffers & caches (the ordering-rule playground) -----------------
        EntrySpec::new(
            "key_buffer_size",
            Size,
            SizeLadder(&["16M", "32M", "128M", "256M"]),
            90,
        )
        .corr(),
        EntrySpec::new(
            "max_allowed_packet",
            Size,
            SizeLadder(&["1M", "16M", "64M"]),
            95,
        )
        .corr(),
        EntrySpec::new("net_buffer_length", Size, Fixed("8K"), 70).couple(LessThan {
            other: "max_allowed_packet",
            violation_percent: 2,
        }),
        EntrySpec::new(
            "sort_buffer_size",
            Size,
            SizeLadder(&["512K", "2M", "4M"]),
            80,
        ),
        EntrySpec::new(
            "read_buffer_size",
            Size,
            SizeLadder(&["128K", "256K", "1M"]),
            80,
        ),
        EntrySpec::new(
            "read_rnd_buffer_size",
            Size,
            SizeLadder(&["256K", "512K", "4M"]),
            75,
        ),
        EntrySpec::new(
            "myisam_sort_buffer_size",
            Size,
            SizeLadder(&["8M", "64M"]),
            70,
        ),
        EntrySpec::new(
            "join_buffer_size",
            Size,
            SizeLadder(&["128K", "256K", "1M"]),
            55,
        ),
        EntrySpec::new(
            "bulk_insert_buffer_size",
            Size,
            SizeLadder(&["8M", "16M"]),
            40,
        ),
        EntrySpec::new("preload_buffer_size", Size, SizeLadder(&["32K"]), 15),
        EntrySpec::new(
            "query_cache_size",
            Size,
            SizeLadder(&["0", "16M", "64M"]),
            75,
        )
        .corr(),
        EntrySpec::new("query_cache_limit", Size, SizeLadder(&["1M", "2M"]), 70).couple(LessThan {
            other: "query_cache_size",
            violation_percent: 5,
        }),
        EntrySpec::new("query_cache_type", Number, NumberLadder(&["0", "1"]), 55),
        EntrySpec::new("query_cache_min_res_unit", Size, SizeLadder(&["4K"]), 15),
        EntrySpec::new("query_alloc_block_size", Size, SizeLadder(&["8K"]), 12),
        EntrySpec::new("query_prealloc_size", Size, SizeLadder(&["8K"]), 12),
        EntrySpec::new(
            "tmp_table_size",
            Size,
            SizeLadder(&["16M", "32M", "64M"]),
            70,
        )
        .corr(),
        // The ladder legitimately reaches 16G (big-memory instances set it
        // that high), which is why real-world case #8 — 16G on a 16 GiB box
        // — is invisible without hardware data in the training set.
        EntrySpec::new(
            "max_heap_table_size",
            Size,
            SizeLadder(&["16M", "32M", "64M", "16G"]),
            70,
        )
        .corr(),
        EntrySpec::new("thread_stack", Size, SizeLadder(&["192K", "256K"]), 60),
        EntrySpec::new(
            "thread_cache_size",
            Number,
            NumberLadder(&["8", "16", "64"]),
            70,
        ),
        EntrySpec::new("thread_concurrency", Number, NumberLadder(&["8", "10"]), 35),
        EntrySpec::new(
            "transaction_alloc_block_size",
            Size,
            SizeLadder(&["8K"]),
            10,
        ),
        EntrySpec::new("transaction_prealloc_size", Size, SizeLadder(&["4K"]), 10),
        EntrySpec::new("range_alloc_block_size", Size, SizeLadder(&["4K"]), 10),
        // --- connection management -------------------------------------------
        EntrySpec::new(
            "max_connections",
            Number,
            NumberLadder(&["100", "151", "500", "1000"]),
            85,
        )
        .corr(),
        EntrySpec::new(
            "max_user_connections",
            Number,
            NumberLadder(&["0", "50", "100"]),
            40,
        )
        .couple(LessThan {
            other: "max_connections",
            violation_percent: 3,
        }),
        EntrySpec::new(
            "max_connect_errors",
            Number,
            NumberLadder(&["10", "100", "10000"]),
            45,
        ),
        EntrySpec::new("connect_timeout", Number, NumberLadder(&["5", "10"]), 45),
        EntrySpec::new("wait_timeout", Number, NumberLadder(&["600", "28800"]), 60),
        EntrySpec::new(
            "interactive_timeout",
            Number,
            NumberLadder(&["3600", "28800"]),
            55,
        ),
        EntrySpec::new("net_read_timeout", Number, NumberLadder(&["30", "60"]), 35),
        EntrySpec::new(
            "net_write_timeout",
            Number,
            NumberLadder(&["60", "120"]),
            35,
        ),
        EntrySpec::new("net_retry_count", Number, NumberLadder(&["10"]), 20),
        EntrySpec::new("back_log", Number, NumberLadder(&["50", "128"]), 35),
        EntrySpec::new(
            "innodb_open_files",
            Number,
            NumberLadder(&["300", "2000"]),
            20,
        ),
        EntrySpec::new("skip-name-resolve", Boolean, ON_OFF_MIXED, 50),
        EntrySpec::new("skip-external-locking", Boolean, ON_OFF_MOSTLY_ON, 75),
        EntrySpec::new("skip-networking", Boolean, ON_OFF_MOSTLY_OFF, 20),
        // --- table & file limits -----------------------------------------------
        EntrySpec::new(
            "table_open_cache",
            Number,
            NumberLadder(&["64", "400", "2000"]),
            70,
        ),
        EntrySpec::new(
            "table_definition_cache",
            Number,
            NumberLadder(&["400", "1400"]),
            40,
        ),
        EntrySpec::new(
            "open_files_limit",
            Number,
            NumberLadder(&["1024", "5000", "65535"]),
            50,
        ),
        EntrySpec::new(
            "lower_case_table_names",
            Number,
            NumberLadder(&["0", "1"]),
            45,
        ),
        EntrySpec::new("low_priority_updates", Boolean, ON_OFF_MOSTLY_OFF, 15),
        EntrySpec::new("concurrent_insert", Number, NumberLadder(&["1", "2"]), 25),
        // --- per-statement limits ----------------------------------------------
        EntrySpec::new(
            "max_join_size",
            Number,
            NumberLadder(&["18446744073709551615"]),
            15,
        ),
        EntrySpec::new("max_sort_length", Number, NumberLadder(&["1024"]), 15),
        EntrySpec::new(
            "max_length_for_sort_data",
            Number,
            NumberLadder(&["1024"]),
            15,
        ),
        EntrySpec::new("max_error_count", Number, NumberLadder(&["64"]), 12),
        EntrySpec::new(
            "max_prepared_stmt_count",
            Number,
            NumberLadder(&["16382"]),
            12,
        ),
        EntrySpec::new("max_sp_recursion_depth", Number, NumberLadder(&["0"]), 10),
        EntrySpec::new("group_concat_max_len", Number, NumberLadder(&["1024"]), 20),
        EntrySpec::new("ft_min_word_len", Number, NumberLadder(&["4"]), 15),
        // --- character sets --------------------------------------------------------
        EntrySpec::new(
            "character-set-server",
            Charset,
            Choice(&[("UTF-8", 9), ("ISO-8859-1", 4)]),
            65,
        )
        .env(),
        EntrySpec::new(
            "collation-server",
            Str,
            Choice(&[("utf8_general_ci", 9), ("latin1_swedish_ci", 4)]),
            60,
        )
        .corr(),
        EntrySpec::new("init-connect", Str, Fixed("SET NAMES utf8"), 20),
        EntrySpec::new("old_passwords", Number, NumberLadder(&["0", "1"]), 25),
        EntrySpec::new(
            "sql_mode",
            Str,
            Choice(&[("STRICT_TRANS_TABLES", 5), ("TRADITIONAL", 2), ("", 5)]),
            45,
        ),
        EntrySpec::new(
            "default-storage-engine",
            Str,
            Choice(&[("InnoDB", 9), ("MyISAM", 5)]),
            55,
        ),
        // --- innodb ------------------------------------------------------------------
        EntrySpec::new(
            "innodb_data_home_dir",
            FilePath,
            PathPool {
                base: "/var/lib/mysql",
                variants: 4,
            },
            40,
        )
        .env()
        .couple(EqualsEntry { other: "datadir" }),
        EntrySpec::new(
            "innodb_data_file_path",
            Str,
            Choice(&[("ibdata1:10M:autoextend", 11), ("ibdata1:128M", 2)]),
            45,
        ),
        EntrySpec::new(
            "innodb_log_group_home_dir",
            FilePath,
            PathPool {
                base: "/var/lib/mysql",
                variants: 4,
            },
            35,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "innodb_buffer_pool_size",
            Size,
            SizeLadder(&["128M", "512M", "1G"]),
            70,
        )
        .corr(),
        EntrySpec::new(
            "innodb_log_file_size",
            Size,
            SizeLadder(&["5M", "48M", "256M"]),
            55,
        )
        .couple(LessThan {
            other: "innodb_buffer_pool_size",
            violation_percent: 4,
        }),
        EntrySpec::new(
            "innodb_log_buffer_size",
            Size,
            SizeLadder(&["8M", "16M"]),
            50,
        )
        .couple(LessThan {
            other: "innodb_log_file_size",
            violation_percent: 4,
        }),
        EntrySpec::new(
            "innodb_flush_log_at_trx_commit",
            Number,
            NumberLadder(&["0", "1", "2"]),
            55,
        ),
        EntrySpec::new(
            "innodb_lock_wait_timeout",
            Number,
            NumberLadder(&["50", "120"]),
            45,
        ),
        EntrySpec::new("innodb_file_per_table", Boolean, ON_OFF_MIXED, 50),
        EntrySpec::new(
            "innodb_thread_concurrency",
            Number,
            NumberLadder(&["0", "8", "16"]),
            30,
        ),
        EntrySpec::new(
            "innodb_flush_method",
            Str,
            Choice(&[("O_DIRECT", 7), ("fdatasync", 4)]),
            30,
        ),
        // --- myisam ----------------------------------------------------------------
        EntrySpec::new(
            "myisam_max_sort_file_size",
            Size,
            SizeLadder(&["2G", "10G"]),
            25,
        ),
        EntrySpec::new("myisam_repair_threads", Number, NumberLadder(&["1"]), 15),
        EntrySpec::new(
            "myisam-recover",
            Str,
            Choice(&[("BACKUP", 8), ("FORCE,BACKUP", 3)]),
            30,
        ),
        // --- delayed inserts ------------------------------------------------------
        EntrySpec::new("delayed_insert_limit", Number, NumberLadder(&["100"]), 10),
        EntrySpec::new("delayed_insert_timeout", Number, NumberLadder(&["300"]), 10),
        EntrySpec::new("delayed_queue_size", Number, NumberLadder(&["1000"]), 10),
        EntrySpec::new("max_delayed_threads", Number, NumberLadder(&["20"]), 10),
        // --- replication/monitoring -------------------------------------------
        EntrySpec::new(
            "replicate-do-db",
            Str,
            Choice(&[("appdb", 6), ("proddb", 3)]),
            15,
        ),
        EntrySpec::new("report-host", Str, Choice(&[("db01", 5), ("db02", 3)]), 12),
        EntrySpec::new("slave_net_timeout", Number, NumberLadder(&["3600"]), 12),
        EntrySpec::new("slave_compressed_protocol", Boolean, ON_OFF_MOSTLY_OFF, 10),
        EntrySpec::new("slow_launch_time", Number, NumberLadder(&["2"]), 15),
        EntrySpec::new("performance_schema", Boolean, ON_OFF_MOSTLY_OFF, 25),
        EntrySpec::new("sysdate-is-now", Boolean, ON_OFF_MOSTLY_OFF, 10),
        EntrySpec::new("updatable_views_with_limit", Boolean, ON_OFF_MOSTLY_ON, 8),
        EntrySpec::new("optimizer_prune_level", Number, NumberLadder(&["1"]), 10),
    ]
}

/// PHP core `php.ini`: 53 settings (Table 1 row 3).
fn php_entries() -> Vec<EntrySpec> {
    vec![
        EntrySpec::new("engine", Boolean, ON_OFF_MOSTLY_ON, 90),
        EntrySpec::new("short_open_tag", Boolean, ON_OFF_MIXED, 85),
        EntrySpec::new("asp_tags", Boolean, ON_OFF_MOSTLY_OFF, 70),
        EntrySpec::new("precision", Number, NumberLadder(&["14", "16"]), 70),
        EntrySpec::new("output_buffering", Size, SizeLadder(&["4K", "8K"]), 70),
        EntrySpec::new("zlib.output_compression", Boolean, ON_OFF_MOSTLY_OFF, 60),
        EntrySpec::new("implicit_flush", Boolean, ON_OFF_MOSTLY_OFF, 55),
        EntrySpec::new(
            "serialize_precision",
            Number,
            NumberLadder(&["17", "100"]),
            45,
        ),
        EntrySpec::new("safe_mode", Boolean, ON_OFF_MOSTLY_OFF, 65),
        EntrySpec::new("safe_mode_gid", Boolean, ON_OFF_MOSTLY_OFF, 40),
        EntrySpec::new("expose_php", Boolean, ON_OFF_MIXED, 75),
        EntrySpec::new(
            "max_execution_time",
            Number,
            NumberLadder(&["30", "60", "300"]),
            90,
        )
        .couple(LessThan {
            other: "max_input_time",
            violation_percent: 35,
        }),
        EntrySpec::new(
            "max_input_time",
            Number,
            NumberLadder(&["60", "120", "600"]),
            80,
        )
        .corr(),
        EntrySpec::new(
            "memory_limit",
            Size,
            SizeLadder(&["64M", "128M", "256M"]),
            95,
        )
        .corr(),
        EntrySpec::new(
            "error_reporting",
            Str,
            Choice(&[
                ("E_ALL & ~E_DEPRECATED", 8),
                ("E_ALL", 4),
                ("E_ALL & ~E_NOTICE", 4),
            ]),
            90,
        ),
        EntrySpec::new("display_errors", Boolean, ON_OFF_MOSTLY_OFF, 90),
        EntrySpec::new("display_startup_errors", Boolean, ON_OFF_MOSTLY_OFF, 70),
        EntrySpec::new("log_errors", Boolean, ON_OFF_MOSTLY_ON, 90),
        EntrySpec::new("log_errors_max_len", Size, SizeLadder(&["1K"]), 55),
        EntrySpec::new("ignore_repeated_errors", Boolean, ON_OFF_MOSTLY_OFF, 45),
        EntrySpec::new("track_errors", Boolean, ON_OFF_MOSTLY_OFF, 50),
        EntrySpec::new("html_errors", Boolean, ON_OFF_MIXED, 55),
        EntrySpec::new(
            "error_log",
            FilePath,
            FilePool {
                base: "/var/log/php/error",
                variants: 24,
                suffix: ".log",
            },
            75,
        )
        .env()
        .couple(OwnedBy { user_entry: "user" }),
        EntrySpec::new(
            "variables_order",
            Str,
            Choice(&[("GPCS", 10), ("EGPCS", 3)]),
            65,
        ),
        EntrySpec::new("register_globals", Boolean, ON_OFF_MOSTLY_OFF, 70),
        EntrySpec::new("register_long_arrays", Boolean, ON_OFF_MOSTLY_OFF, 50),
        EntrySpec::new("register_argc_argv", Boolean, ON_OFF_MIXED, 55),
        EntrySpec::new("auto_globals_jit", Boolean, ON_OFF_MOSTLY_ON, 45),
        EntrySpec::new("post_max_size", Size, SizeLadder(&["8M", "16M", "32M"]), 90).corr(),
        EntrySpec::new("magic_quotes_gpc", Boolean, ON_OFF_MOSTLY_OFF, 70),
        EntrySpec::new("magic_quotes_runtime", Boolean, ON_OFF_MOSTLY_OFF, 60),
        EntrySpec::new("auto_prepend_file", FileName, Fixed("prepend.php"), 10).env(),
        EntrySpec::new("auto_append_file", FileName, Fixed("append.php"), 8).env(),
        EntrySpec::new(
            "default_mimetype",
            MimeType,
            Choice(&[("text/html", 12), ("text/plain", 2)]),
            70,
        )
        .env(),
        EntrySpec::new(
            "default_charset",
            Charset,
            Choice(&[("UTF-8", 11), ("ISO-8859-1", 3)]),
            70,
        )
        .env(),
        EntrySpec::new(
            "doc_root",
            FilePath,
            PathPool {
                base: "/var/www/html",
                variants: 24,
            },
            35,
        )
        .env()
        .corr(),
        EntrySpec::new("user_dir", Str, Choice(&[("", 8), ("public_html", 3)]), 25),
        EntrySpec::new(
            "extension_dir",
            FilePath,
            PathPool {
                base: "/usr/lib/php/modules",
                variants: 24,
            },
            90,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "extension",
            PartialFilePath,
            Choice(&[
                ("modules/pdo.so", 6),
                ("modules/mysqli.so", 5),
                ("modules/gd.so", 3),
            ]),
            60,
        )
        .env()
        .couple(ConcatOnto {
            base_entry: "extension_dir",
        }),
        EntrySpec::new("enable_dl", Boolean, ON_OFF_MOSTLY_OFF, 55),
        EntrySpec::new("file_uploads", Boolean, ON_OFF_MOSTLY_ON, 85),
        EntrySpec::new(
            "upload_tmp_dir",
            FilePath,
            PathPool {
                base: "/var/tmp/php",
                variants: 16,
            },
            55,
        )
        .env()
        .couple(OwnedBy { user_entry: "user" }),
        EntrySpec::new(
            "upload_max_filesize",
            Size,
            SizeLadder(&["2M", "8M", "16M"]),
            90,
        )
        .couple(LessThan {
            other: "post_max_size",
            violation_percent: 3,
        }),
        EntrySpec::new("max_file_uploads", Number, NumberLadder(&["20", "50"]), 55),
        EntrySpec::new("allow_url_fopen", Boolean, ON_OFF_MIXED, 75),
        EntrySpec::new("allow_url_include", Boolean, ON_OFF_MOSTLY_OFF, 65),
        EntrySpec::new(
            "default_socket_timeout",
            Number,
            NumberLadder(&["60", "120"]),
            60,
        ),
        EntrySpec::new(
            "date.timezone",
            Str,
            Choice(&[("UTC", 8), ("America/New_York", 4), ("Europe/Berlin", 2)]),
            70,
        ),
        EntrySpec::new(
            "session.save_handler",
            Str,
            Choice(&[("files", 12), ("memcached", 2)]),
            70,
        ),
        EntrySpec::new(
            "session.save_path",
            FilePath,
            PathPool {
                base: "/var/lib/php/session",
                variants: 16,
            },
            65,
        )
        .env()
        .couple(OwnedBy { user_entry: "user" }),
        EntrySpec::new("session.use_cookies", Boolean, ON_OFF_MOSTLY_ON, 60),
        EntrySpec::new(
            "session.gc_maxlifetime",
            Number,
            NumberLadder(&["1440", "3600"]),
            55,
        ),
        // `user` is not a php.ini entry in reality; our PHP model runs under
        // the web-server account and exposes it so ownership couplings can
        // be learned (the paper's PHP cases lean on the same linkage).
        EntrySpec::new(
            "user",
            UserName,
            Choice(&[("apache", 9), ("www-data", 4)]),
            85,
        )
        .env()
        .corr(),
    ]
}

/// sshd_config: 57 keywords (Table 1 row 4; studied but not evaluated).
fn sshd_entries() -> Vec<EntrySpec> {
    vec![
        EntrySpec::new("Port", PortNumber, Choice(&[("22", 13), ("2222", 2)]), 95).env(),
        EntrySpec::new("Protocol", Number, NumberLadder(&["2"]), 80).corr(),
        EntrySpec::new(
            "ListenAddress",
            IpAddress,
            Choice(&[("0.0.0.0", 9), ("127.0.0.1", 2), ("10.0.0.2", 1)]),
            60,
        )
        .env(),
        EntrySpec::new(
            "AddressFamily",
            Str,
            Choice(&[("any", 10), ("inet", 3)]),
            45,
        ),
        EntrySpec::new(
            "HostKey",
            FilePath,
            FilePool {
                base: "/etc/ssh/ssh_host_rsa_key",
                variants: 2,
                suffix: "",
            },
            90,
        )
        .env(),
        EntrySpec::new("UsePrivilegeSeparation", Boolean, ON_OFF_MOSTLY_ON, 65),
        EntrySpec::new(
            "KeyRegenerationInterval",
            Number,
            NumberLadder(&["3600"]),
            40,
        )
        .corr(),
        EntrySpec::new("ServerKeyBits", Number, NumberLadder(&["768", "1024"]), 40).corr(),
        EntrySpec::new(
            "SyslogFacility",
            Str,
            Choice(&[("AUTH", 8), ("AUTHPRIV", 6)]),
            75,
        ),
        EntrySpec::new("LogLevel", Str, Choice(&[("INFO", 10), ("VERBOSE", 3)]), 75),
        EntrySpec::new("LoginGraceTime", Number, NumberLadder(&["30", "120"]), 60).corr(),
        EntrySpec::new(
            "PermitRootLogin",
            Str,
            Choice(&[("no", 8), ("yes", 4), ("without-password", 2)]),
            90,
        )
        .corr(),
        EntrySpec::new("StrictModes", Boolean, ON_OFF_MOSTLY_ON, 70).env(),
        EntrySpec::new("MaxAuthTries", Number, NumberLadder(&["3", "6"]), 55).corr(),
        EntrySpec::new("MaxSessions", Number, NumberLadder(&["10"]), 40),
        EntrySpec::new("RSAAuthentication", Boolean, ON_OFF_MOSTLY_ON, 55).corr(),
        EntrySpec::new("PubkeyAuthentication", Boolean, ON_OFF_MOSTLY_ON, 85).corr(),
        EntrySpec::new(
            "AuthorizedKeysFile",
            PartialFilePath,
            Choice(&[(".ssh/authorized_keys", 12), (".ssh/keys", 1)]),
            75,
        )
        .env()
        .corr(),
        EntrySpec::new("HostbasedAuthentication", Boolean, ON_OFF_MOSTLY_OFF, 50).corr(),
        EntrySpec::new("IgnoreUserKnownHosts", Boolean, ON_OFF_MOSTLY_OFF, 40).corr(),
        EntrySpec::new("IgnoreRhosts", Boolean, ON_OFF_MOSTLY_ON, 45).corr(),
        EntrySpec::new("PasswordAuthentication", Boolean, ON_OFF_MIXED, 90).corr(),
        EntrySpec::new("PermitEmptyPasswords", Boolean, ON_OFF_MOSTLY_OFF, 70).corr(),
        EntrySpec::new(
            "ChallengeResponseAuthentication",
            Boolean,
            ON_OFF_MOSTLY_OFF,
            65,
        )
        .corr(),
        EntrySpec::new("KerberosAuthentication", Boolean, ON_OFF_MOSTLY_OFF, 30).corr(),
        EntrySpec::new("GSSAPIAuthentication", Boolean, ON_OFF_MIXED, 45).corr(),
        EntrySpec::new("GSSAPICleanupCredentials", Boolean, ON_OFF_MOSTLY_ON, 35).corr(),
        EntrySpec::new("UsePAM", Boolean, ON_OFF_MOSTLY_ON, 80).corr(),
        EntrySpec::new("AllowAgentForwarding", Boolean, ON_OFF_MOSTLY_ON, 35),
        EntrySpec::new("AllowTcpForwarding", Boolean, ON_OFF_MOSTLY_ON, 40),
        EntrySpec::new("GatewayPorts", Boolean, ON_OFF_MOSTLY_OFF, 30),
        EntrySpec::new("X11Forwarding", Boolean, ON_OFF_MIXED, 70).corr(),
        EntrySpec::new("X11DisplayOffset", Number, NumberLadder(&["10"]), 40).corr(),
        EntrySpec::new("X11UseLocalhost", Boolean, ON_OFF_MOSTLY_ON, 30).corr(),
        EntrySpec::new("PrintMotd", Boolean, ON_OFF_MIXED, 55),
        EntrySpec::new("PrintLastLog", Boolean, ON_OFF_MOSTLY_ON, 45),
        EntrySpec::new("TCPKeepAlive", Boolean, ON_OFF_MOSTLY_ON, 55),
        EntrySpec::new("UseLogin", Boolean, ON_OFF_MOSTLY_OFF, 30),
        EntrySpec::new("PermitUserEnvironment", Boolean, ON_OFF_MOSTLY_OFF, 30),
        EntrySpec::new(
            "Compression",
            Str,
            Choice(&[("delayed", 9), ("yes", 3)]),
            40,
        ),
        EntrySpec::new(
            "ClientAliveInterval",
            Number,
            NumberLadder(&["0", "300"]),
            50,
        )
        .couple(LessThan {
            other: "KeyRegenerationInterval",
            violation_percent: 5,
        }),
        EntrySpec::new("ClientAliveCountMax", Number, NumberLadder(&["3"]), 40),
        EntrySpec::new("UseDNS", Boolean, ON_OFF_MIXED, 55),
        EntrySpec::new(
            "PidFile",
            FilePath,
            FilePool {
                base: "/var/run/sshd",
                variants: 2,
                suffix: ".pid",
            },
            50,
        )
        .env(),
        EntrySpec::new(
            "MaxStartups",
            Str,
            Choice(&[("10:30:100", 8), ("10", 4)]),
            40,
        ),
        EntrySpec::new("PermitTunnel", Boolean, ON_OFF_MOSTLY_OFF, 25),
        EntrySpec::new(
            "ChrootDirectory",
            FilePath,
            PathPool {
                base: "/var/empty/sshd",
                variants: 2,
            },
            20,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "Banner",
            FilePath,
            FilePool {
                base: "/etc/issue",
                variants: 2,
                suffix: ".net",
            },
            35,
        )
        .env(),
        EntrySpec::new(
            "Subsystem",
            Str,
            Choice(&[
                ("sftp /usr/libexec/openssh/sftp-server", 10),
                ("sftp internal-sftp", 4),
            ]),
            70,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "AllowUsers",
            UserName,
            Choice(&[("admin", 6), ("deploy", 4), ("ec2-user", 4)]),
            30,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "AllowGroups",
            GroupName,
            Choice(&[("wheel", 7), ("ssh-users", 3)]),
            25,
        )
        .env()
        .corr(),
        EntrySpec::new(
            "DenyUsers",
            UserName,
            Choice(&[("guest", 6), ("ftp", 2)]),
            15,
        )
        .env()
        .corr(),
        EntrySpec::new("DenyGroups", GroupName, Choice(&[("nogroup", 5)]), 10)
            .env()
            .corr(),
        EntrySpec::new(
            "Ciphers",
            Str,
            Choice(&[("aes128-ctr,aes192-ctr,aes256-ctr", 9), ("aes256-cbc", 2)]),
            35,
        ),
        EntrySpec::new(
            "MACs",
            Str,
            Choice(&[("hmac-sha1,hmac-ripemd160", 7), ("hmac-sha2-256", 4)]),
            30,
        ),
        EntrySpec::new(
            "KexAlgorithms",
            Str,
            Choice(&[
                ("diffie-hellman-group14-sha1", 8),
                ("diffie-hellman-group1-sha1", 2),
            ]),
            20,
        ),
        EntrySpec::new(
            "HostKeyAgent",
            FilePath,
            FilePool {
                base: "/var/run/ssh-agent",
                variants: 2,
                suffix: ".sock",
            },
            10,
        )
        .env(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_counts_match_table_1_totals() {
        assert_eq!(AppSchema::for_app(AppKind::Apache).entries().len(), 94);
        assert_eq!(AppSchema::for_app(AppKind::Mysql).entries().len(), 113);
        assert_eq!(AppSchema::for_app(AppKind::Php).entries().len(), 53);
        assert_eq!(AppSchema::for_app(AppKind::Sshd).entries().len(), 57);
    }

    #[test]
    fn env_and_corr_fractions_are_in_the_papers_range() {
        for app in AppKind::STUDIED {
            let schema = AppSchema::for_app(app);
            let total = schema.entries().len() as f64;
            let env = schema.env_related_count() as f64 / total;
            let corr = schema.correlated_count() as f64 / total;
            // Paper: env-related 17%-31%, correlated 27%-51%.
            assert!((0.10..=0.40).contains(&env), "{app}: env fraction {env}");
            assert!((0.15..=0.60).contains(&corr), "{app}: corr fraction {corr}");
        }
    }

    #[test]
    fn names_are_unique_per_app() {
        for app in AppKind::STUDIED {
            let schema = AppSchema::for_app(app);
            let mut names: Vec<&str> = schema.entries().iter().map(|e| e.name).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "{app}");
        }
    }

    #[test]
    fn couplings_reference_real_entries() {
        for app in AppKind::STUDIED {
            let schema = AppSchema::for_app(app);
            for e in schema.entries() {
                let referenced = match e.coupling {
                    Some(Coupling::OwnedBy { user_entry }) => Some(user_entry),
                    Some(Coupling::LessThan { other, .. }) => Some(other),
                    Some(Coupling::ConcatOnto { base_entry }) => Some(base_entry),
                    Some(Coupling::EqualsEntry { other }) => Some(other),
                    Some(Coupling::GuardsSymlinks { path_entry }) => Some(path_entry),
                    None => None,
                };
                if let Some(name) = referenced {
                    assert!(
                        schema.entry(name).is_some(),
                        "{app}: `{}` couples to unknown `{name}`",
                        e.name
                    );
                }
            }
        }
    }

    #[test]
    fn hero_entries_present() {
        let mysql = AppSchema::for_app(AppKind::Mysql);
        assert!(mysql.entry("datadir").is_some());
        assert!(mysql.entry("user").is_some());
        assert!(mysql.entry("net_buffer_length").is_some());
        let php = AppSchema::for_app(AppKind::Php);
        assert!(php.entry("extension_dir").is_some());
        assert!(php.entry("upload_max_filesize").is_some());
        let apache = AppSchema::for_app(AppKind::Apache);
        assert!(apache.entry("DocumentRoot").is_some());
        assert!(apache.entry("FollowSymLinks").is_some());
    }
}
