//! Deterministic image-population generation.
//!
//! Populations stand in for the paper's EC2 crawls (DESIGN.md §2): each
//! image gets a configuration sampled from the application schema, plus the
//! environment state its values reference — directories created, owners
//! set per the schema's couplings, orderings enforced (with the schema's
//! configured noise), services registered.  Hardware specs are *omitted*
//! (dormant images, Table 7 footnote).
//!
//! Evaluation populations additionally seed misconfigurations of the three
//! categories of paper Table 10: broken file paths, wrong
//! permissions/owners, and value-comparison violations.

use crate::schema::{AppSchema, Coupling, EntrySpec, ValueDist};
use encore_model::AppKind;
use encore_sysimage::{SecurityState, SystemImage, SystemImageBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The misconfiguration categories of paper Table 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisconfigCategory {
    /// File path configuration missing or wrong.
    FilePath,
    /// Permission/ownership configuration wrong.
    Permission,
    /// A value-comparison (ordering) rule violated.
    ValueCompare,
}

impl fmt::Display for MisconfigCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MisconfigCategory::FilePath => "FilePath",
            MisconfigCategory::Permission => "Permission",
            MisconfigCategory::ValueCompare => "ValueCompare",
        };
        f.write_str(s)
    }
}

/// Ground truth for one seeded misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededMisconfig {
    /// Image id carrying the error.
    pub image_id: String,
    /// Category (Table 10 row attribution).
    pub category: MisconfigCategory,
    /// The culprit entry.
    pub entry: String,
}

/// Options for population generation.
#[derive(Debug, Clone, Copy)]
pub struct PopulationOptions {
    /// Number of images.
    pub n: usize,
    /// RNG seed (populations are fully deterministic given a seed).
    pub seed: u64,
    /// Percent of images carrying a seeded misconfiguration (0 for
    /// training populations).
    pub misconfig_percent: u32,
}

impl PopulationOptions {
    /// Options for `n` images from `seed`, no seeded errors.
    pub fn new(n: usize, seed: u64) -> PopulationOptions {
        PopulationOptions {
            n,
            seed,
            misconfig_percent: 0,
        }
    }

    /// Enable seeded misconfigurations on this percentage of images.
    pub fn with_misconfig_percent(mut self, percent: u32) -> PopulationOptions {
        self.misconfig_percent = percent;
        self
    }
}

/// A generated population with its ground truth.
#[derive(Debug, Clone)]
pub struct Population {
    images: Vec<SystemImage>,
    seeded: Vec<SeededMisconfig>,
    app: AppKind,
}

impl Population {
    /// A pristine training population (the EC2 training crawl).
    pub fn training(app: AppKind, options: &PopulationOptions) -> Population {
        Population::generate(app, options, "train")
    }

    /// A fresh evaluation population with ~20% of images carrying seeded
    /// misconfigurations (the 120 fresh EC2 images of §7.1.3 had 25
    /// problematic ones).
    pub fn ec2_fresh(app: AppKind, n: usize, seed: u64) -> Population {
        Population::generate(
            app,
            &PopulationOptions::new(n, seed).with_misconfig_percent(21),
            "ec2",
        )
    }

    /// A private-cloud population: long-deployed, so a much smaller fraction
    /// of problematic images (22 of 300 in the paper).
    pub fn private_cloud(app: AppKind, n: usize, seed: u64) -> Population {
        Population::generate(
            app,
            &PopulationOptions::new(n, seed).with_misconfig_percent(7),
            "pc",
        )
    }

    fn generate(app: AppKind, options: &PopulationOptions, prefix: &str) -> Population {
        let schema = AppSchema::for_app(app);
        let mut rng = StdRng::seed_from_u64(options.seed ^ 0x5eed_c0de);
        let mut images = Vec::with_capacity(options.n);
        let mut seeded = Vec::new();
        for i in 0..options.n {
            let id = format!("{prefix}-{}-{i:04}", app.name());
            let mut gen = ImageGen::new(&id, app, &schema, &mut rng);
            if options.misconfig_percent > 0
                && gen.rng.gen_range(0..100u32) < options.misconfig_percent
            {
                let category = match gen.rng.gen_range(0..3u8) {
                    0 => MisconfigCategory::FilePath,
                    1 => MisconfigCategory::Permission,
                    _ => MisconfigCategory::ValueCompare,
                };
                if let Some(entry) = gen.plan_misconfig(category) {
                    seeded.push(SeededMisconfig {
                        image_id: id.clone(),
                        category,
                        entry,
                    });
                }
            }
            images.push(gen.build());
        }
        Population {
            images,
            seeded,
            app,
        }
    }

    /// The generated images.
    pub fn images(&self) -> &[SystemImage] {
        &self.images
    }

    /// Ground-truth seeded misconfigurations.
    pub fn seeded(&self) -> &[SeededMisconfig] {
        &self.seeded
    }

    /// The application.
    pub fn app(&self) -> AppKind {
        self.app
    }
}

/// Working state for generating one image.
struct ImageGen<'a> {
    id: String,
    app: AppKind,
    schema: &'a AppSchema,
    rng: &'a mut StdRng,
    /// (entry name, rendered value) pairs chosen so far.
    values: Vec<(String, String)>,
    /// Planned misconfiguration, applied at build time.
    misconfig: Option<(MisconfigCategory, String)>,
}

impl<'a> ImageGen<'a> {
    fn new(id: &str, app: AppKind, schema: &'a AppSchema, rng: &'a mut StdRng) -> ImageGen<'a> {
        let mut gen = ImageGen {
            id: id.to_string(),
            app,
            schema,
            rng,
            values: Vec::new(),
            misconfig: None,
        };
        gen.sample_values();
        gen
    }

    fn value_of(&self, entry: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == entry)
            .map(|(_, v)| v.as_str())
    }

    /// Sample a value for every present entry, honouring couplings.
    fn sample_values(&mut self) {
        // Two passes: independent entries first so coupled entries can read
        // their partners.
        let specs: Vec<EntrySpec> = self.schema.entries().to_vec();
        for pass in 0..2 {
            for spec in &specs {
                let coupled = spec.coupling.is_some();
                if (pass == 0) == coupled {
                    continue;
                }
                if self.rng.gen_range(0..100u32) >= spec.presence_percent {
                    continue;
                }
                let value = self.sample_value(spec);
                self.values.push((spec.name.to_string(), value));
            }
        }
    }

    fn sample_value(&mut self, spec: &EntrySpec) -> String {
        let base_value = match &spec.dist {
            ValueDist::Fixed(v) => v.to_string(),
            ValueDist::Choice(choices) => {
                let total: u32 = choices.iter().map(|(_, w)| w).sum();
                let mut pick = self.rng.gen_range(0..total);
                let mut chosen = choices[0].0;
                for (v, w) in *choices {
                    if pick < *w {
                        chosen = v;
                        break;
                    }
                    pick -= w;
                }
                chosen.to_string()
            }
            ValueDist::PathPool { base, variants } => {
                let i = self.rng.gen_range(0..*variants);
                if i == 0 {
                    base.to_string()
                } else {
                    format!("{base}{i}")
                }
            }
            ValueDist::FilePool {
                base,
                variants,
                suffix,
            } => {
                let i = self.rng.gen_range(0..*variants);
                if i == 0 {
                    format!("{base}{suffix}")
                } else {
                    format!("{base}{i}{suffix}")
                }
            }
            ValueDist::NumberLadder(ladder) => {
                let tuned = self.schema.is_tuned(spec.name);
                self.sample_ladder(ladder, tuned)
            }
            ValueDist::SizeLadder(ladder) => {
                let tuned = self.schema.is_tuned(spec.name);
                self.sample_ladder(ladder, tuned)
            }
            ValueDist::BoolPercentOn(p) => {
                if self.rng.gen_range(0..100u32) < *p {
                    "On".to_string()
                } else {
                    "Off".to_string()
                }
            }
        };
        self.apply_coupling(spec, base_value)
    }

    /// Ladder sampling models the EC2-template reality the paper leans on
    /// (§7.3): most images keep the shipped default, so *uncorrelated*
    /// numeric entries stay at their first ladder value 93% of the time —
    /// putting their value entropy below `Ht = 0.325` so the entropy filter
    /// prunes the spurious cross-entry orderings they would otherwise form.
    /// Correlated entries are the ones operators actually tune; they sample
    /// uniformly with magnitude jitter so their genuine rules survive the
    /// filter.
    fn sample_ladder(&mut self, ladder: &[&str], tuned: bool) -> String {
        if !tuned {
            if ladder.len() == 1 || self.rng.gen_range(0..100) < 97 {
                return ladder[0].to_string();
            }
            return ladder[1 + self.rng.gen_range(0..ladder.len() - 1)].to_string();
        }
        let v = ladder[self.rng.gen_range(0..ladder.len())].to_string();
        self.jitter_magnitude(&v)
    }

    /// Power-of-two magnitude jitter for tuned (correlated) entries.
    /// Coupled orderings are re-enforced afterwards in `apply_coupling`.
    fn jitter_magnitude(&mut self, value: &str) -> String {
        if self.rng.gen_range(0..100) >= 70 {
            return value.to_string();
        }
        let digits_end = value
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(value.len());
        if digits_end == 0 {
            return value.to_string();
        }
        let n: u64 = match value[..digits_end].parse() {
            Ok(v) => v,
            Err(_) => return value.to_string(),
        };
        let suffix = &value[digits_end..];
        let shift: i32 = self.rng.gen_range(-5..=5);
        let jittered = if shift >= 0 {
            n.checked_mul(1u64 << shift).unwrap_or(n)
        } else {
            (n >> (-shift as u32)).max(1)
        };
        format!("{jittered}{suffix}")
    }

    fn apply_coupling(&mut self, spec: &EntrySpec, value: String) -> String {
        match spec.coupling {
            Some(Coupling::EqualsEntry { other }) => {
                self.value_of(other).map(str::to_string).unwrap_or(value)
            }
            Some(Coupling::LessThan {
                other,
                violation_percent,
            }) => {
                let partner = match self.value_of(other) {
                    Some(p) => p.to_string(),
                    None => return value,
                };
                let violate = self.rng.gen_range(0..100u32) < violation_percent;
                constrain_less_than(&value, &partner, violate)
            }
            _ => value,
        }
    }

    /// Pick a misconfiguration target for the category, recorded for the
    /// build step.
    fn plan_misconfig(&mut self, category: MisconfigCategory) -> Option<String> {
        let candidates: Vec<String> = self
            .schema
            .entries()
            .iter()
            .filter(|e| {
                self.value_of(e.name).is_some()
                    && match category {
                        MisconfigCategory::FilePath => {
                            matches!(
                                e.dist,
                                ValueDist::PathPool { .. } | ValueDist::FilePool { .. }
                            )
                        }
                        MisconfigCategory::Permission => {
                            matches!(e.coupling, Some(Coupling::OwnedBy { .. }))
                        }
                        MisconfigCategory::ValueCompare => {
                            matches!(e.coupling, Some(Coupling::LessThan { .. }))
                        }
                    }
            })
            .map(|e| e.name.to_string())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let entry = candidates[self.rng.gen_range(0..candidates.len())].clone();
        self.misconfig = Some((category, entry.clone()));
        Some(entry)
    }

    /// Materialize the image: base system + environment objects + config.
    fn build(mut self) -> SystemImage {
        // Apply a planned ValueCompare misconfig by flipping the ordering.
        if let Some((MisconfigCategory::ValueCompare, entry)) = self.misconfig.clone() {
            let spec = self.schema.entry(&entry).expect("planned entry exists");
            if let Some(Coupling::LessThan { other, .. }) = spec.coupling {
                if let Some(partner) = self.value_of(other).map(str::to_string) {
                    let broken = constrain_less_than(
                        self.value_of(&entry).expect("present").to_string().as_str(),
                        &partner,
                        true,
                    );
                    if let Some(slot) = self.values.iter_mut().find(|(k, _)| *k == entry) {
                        slot.1 = broken;
                    }
                }
            }
        }

        let app = self.app;
        let mut builder = base_image(&self.id, app, &mut *self.rng);

        // Materialize environment objects for path-valued entries.
        // Ownership-coupled paths go first and are never overwritten by a
        // later entry that happens to reference the same directory (e.g.
        // `innodb_data_home_dir` mirroring `datadir`).
        let owner_default = default_owner(app);
        let mut created: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut ordered: Vec<&EntrySpec> = self.schema.entries().iter().collect();
        ordered.sort_by_key(|e| !matches!(e.coupling, Some(Coupling::OwnedBy { .. })));
        for spec in ordered {
            let value = match self.value_of(spec.name) {
                Some(v) => v.to_string(),
                None => continue,
            };
            let owner = match spec.coupling {
                Some(Coupling::OwnedBy { user_entry }) => self
                    .value_of(user_entry)
                    .unwrap_or(owner_default)
                    .to_string(),
                _ => "root".to_string(),
            };
            match &spec.dist {
                ValueDist::PathPool { .. } if created.insert(value.clone()) => {
                    let mode = if spec.coupling.is_some() {
                        0o750
                    } else {
                        0o755
                    };
                    builder = builder.dir(&value, &owner, &owner, mode);
                }
                ValueDist::FilePool { .. } if created.insert(value.clone()) => {
                    builder = builder.file(&value, &owner, &owner, 0o640, "");
                }
                _ => {}
            }
            if let Some(Coupling::ConcatOnto { base_entry }) = spec.coupling {
                if let Some(base) = self.value_of(base_entry) {
                    let full = format!(
                        "{}/{}",
                        base.trim_end_matches('/'),
                        value.trim_start_matches('/')
                    );
                    if created.insert(full.clone()) {
                        builder = builder.file(&full, "root", "root", 0o644, "");
                    }
                }
            }
        }

        // Apply FilePath/Permission misconfigurations against the
        // environment (the config text itself stays plausible — exactly the
        // class value-only detectors miss).
        match self.misconfig.clone() {
            Some((MisconfigCategory::FilePath, entry)) => {
                let value = self.value_of(&entry).expect("present").to_string();
                // Point the entry at a location that does not exist.
                let broken = format!("{value}.missing");
                if let Some(slot) = self.values.iter_mut().find(|(k, _)| *k == entry) {
                    slot.1 = broken;
                }
            }
            Some((MisconfigCategory::Permission, entry)) => {
                let value = self.value_of(&entry).expect("present").to_string();
                // Wrong owner: root grabs the path.
                builder = builder.dir(&value, "root", "root", 0o700);
            }
            _ => {}
        }

        // Apache: a fraction of fleets keep symlinked content under the
        // document root; those images run with FollowSymLinks=On.  This is
        // the diversity the `hasSymLink -> FollowSymLinks` implication rule
        // (real-world case #6) is learned from.
        if app == AppKind::Apache && self.rng.gen_range(0..100) < 30 {
            if let Some(droot) = self.value_of("DocumentRoot").map(str::to_string) {
                builder = builder.symlink(&format!("{droot}/shared"), "/mnt/shared");
                match self.values.iter_mut().find(|(k, _)| k == "FollowSymLinks") {
                    Some(slot) => slot.1 = "On".to_string(),
                    None => self
                        .values
                        .push(("FollowSymLinks".to_string(), "On".to_string())),
                }
            }
        }

        // Apache: a per-image selection of LoadModule lines.  Each module's
        // shared object is materialized under ServerRoot/modules so the
        // `ServerRoot + LoadModule/arg2` concatenation rule (paper Figure
        // 4(b)) holds across the fleet.  Repeated directives are also what
        // drives the per-occurrence attribute blow-up of paper Table 2.
        if app == AppKind::Apache {
            const MODULE_POOL: [&str; 18] = [
                "auth_basic",
                "auth_digest",
                "authn_file",
                "authz_host",
                "authz_user",
                "alias",
                "autoindex",
                "cgi",
                "deflate",
                "dir",
                "env",
                "expires",
                "headers",
                "mime",
                "negotiation",
                "rewrite",
                "setenvif",
                "status",
            ];
            let server_root = self
                .value_of("ServerRoot")
                .unwrap_or("/etc/httpd")
                .to_string();
            let count = self.rng.gen_range(8..=MODULE_POOL.len());
            for (i, module) in MODULE_POOL.iter().take(count).enumerate() {
                let frag = format!("modules/mod_{module}.so");
                let full = format!("{}/{}", server_root.trim_end_matches('/'), frag);
                builder = builder.file(&full, "root", "root", 0o755, "");
                self.values
                    .push((format!("LoadModule {i}"), format!("{module}_module {frag}")));
            }
        }

        // Render the configuration file.
        let config = render_config(app, &self.values);
        let path = app.config_path();
        builder = builder.file(path, "root", "root", 0o644, &config);

        builder.build()
    }
}

/// Enforce (or deliberately violate) `value < partner` for sizes/numbers.
fn constrain_less_than(value: &str, partner: &str, violate: bool) -> String {
    let parse = |s: &str| -> Option<(u64, String)> {
        let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        if digits_end == 0 {
            return None;
        }
        let n: u64 = s[..digits_end].parse().ok()?;
        let suffix = s[digits_end..].to_string();
        let mult: u64 = match suffix.as_str() {
            "K" | "k" => 1 << 10,
            "M" | "m" => 1 << 20,
            "G" | "g" => 1 << 30,
            _ => 1,
        };
        Some((n * mult, suffix))
    };
    let (pv, _) = match parse(partner) {
        Some(p) => p,
        None => return value.to_string(),
    };
    let (vv, _) = match parse(value) {
        Some(v) => v,
        None => return value.to_string(),
    };
    if violate {
        if vv > pv {
            return value.to_string();
        }
        // Make value comfortably larger than the partner.
        let (pn, psuf) = split_magnitude(partner);
        format!("{}{psuf}", pn.saturating_mul(4))
    } else {
        if vv < pv {
            return value.to_string();
        }
        // Shrink strictly below the partner, downshifting the unit when the
        // partner's magnitude is already 1 (1M → 512K, 1K → 512, 1 → 0).
        let (pn, psuf) = split_magnitude(partner);
        if pn >= 2 {
            format!("{}{psuf}", pn / 2)
        } else {
            match psuf {
                "G" | "g" => "512M".to_string(),
                "M" | "m" => "512K".to_string(),
                "K" | "k" => "512".to_string(),
                _ => "0".to_string(),
            }
        }
    }
}

fn split_magnitude(s: &str) -> (u64, &str) {
    let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    (s[..digits_end].parse().unwrap_or(1), &s[digits_end..])
}

fn default_owner(app: AppKind) -> &'static str {
    match app {
        AppKind::Apache | AppKind::Php => "apache",
        AppKind::Mysql => "mysql",
        AppKind::Sshd => "root",
    }
}

/// The base system shared by every generated image.
fn base_image(id: &str, app: AppKind, rng: &mut StdRng) -> SystemImageBuilder {
    let host_n: u32 = rng.gen_range(1..250);
    let mut builder = SystemImage::builder(id)
        .hostname(format!("ip-10-0-0-{host_n}"))
        .ip_address(format!("10.0.0.{host_n}"))
        .os(
            ["AmazonLinux", "Ubuntu", "CentOS"][rng.gen_range(0..3usize)],
            ["2013.03", "12.04", "6.4"][rng.gen_range(0..3usize)],
        )
        .user("daemon", 2, &["daemon"])
        .user("nobody", 99, &["nobody"])
        .user("apache", 48, &["apache"])
        .user("www-data", 33, &["www-data"])
        .user("mysql", 27, &["mysql"])
        .user("mysqld", 28, &["mysqld"])
        .user("sshd", 74, &["sshd"])
        .dir("/etc", "root", "root", 0o755)
        .dir("/var/log", "root", "root", 0o755)
        .dir("/var/run", "root", "root", 0o755)
        .dir("/tmp", "root", "root", 0o777)
        .dir("/usr/lib", "root", "root", 0o755)
        .security(SecurityState::disabled());
    for (name, port) in [
        ("ssh", 22u16),
        ("http", 80),
        ("https", 443),
        ("http-alt", 8080),
        ("mysql", 3306),
        ("mysql-alt", 3307),
        ("ssh-alt", 2222),
    ] {
        builder = builder.service(name, port);
    }
    // App-specific scaffolding referenced by fixed defaults.
    match app {
        AppKind::Apache => {
            builder = builder
                .dir("/var/www/icons", "root", "root", 0o755)
                .dir("/var/www/cgi-bin", "root", "root", 0o755)
                .file("/etc/mime.types", "root", "root", 0o644, "");
        }
        AppKind::Php => {
            builder = builder.dir("/var/www/html", "apache", "apache", 0o755);
        }
        AppKind::Mysql => {
            builder = builder.dir("/var/log/mysql", "mysql", "mysql", 0o750);
        }
        AppKind::Sshd => {
            builder = builder.dir("/etc/ssh", "root", "root", 0o755);
        }
    }
    builder
}

/// Render the sampled values into the application's config syntax.
fn render_config(app: AppKind, values: &[(String, String)]) -> String {
    match app {
        AppKind::Mysql => {
            let mut out = String::from("[mysqld]\n");
            for (k, v) in values {
                if v.is_empty() {
                    out.push_str(k);
                    out.push('\n');
                } else {
                    out.push_str(&format!("{k} = {v}\n"));
                }
            }
            out
        }
        AppKind::Php => {
            let mut out = String::from("[PHP]\n");
            for (k, v) in values {
                out.push_str(&format!("{k} = {v}\n"));
            }
            out
        }
        AppKind::Sshd => values.iter().map(|(k, v)| format!("{k} {v}\n")).collect(),
        AppKind::Apache => {
            let mut out = String::new();
            for (k, v) in values {
                if k.starts_with("LoadModule ") {
                    // Pre-formatted repeated directive (module name + path).
                    out.push_str(&format!("LoadModule {v}\n"));
                    continue;
                }
                if v.contains(' ') || v.is_empty() {
                    out.push_str(&format!("{k} {v}\n"));
                } else {
                    out.push_str(&format!("{k} \"{v}\"\n"));
                }
            }
            // Companion <Directory> for DocumentRoot — the correlation of
            // real-world case #1.
            if let Some((_, droot)) = values.iter().find(|(k, _)| k == "DocumentRoot") {
                out.push_str(&format!(
                    "<Directory {droot}>\n    AllowOverride None\n    DirSection \"{droot}\"\n</Directory>\n"
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_are_deterministic() {
        let a = Population::training(AppKind::Mysql, &PopulationOptions::new(5, 9));
        let b = Population::training(AppKind::Mysql, &PopulationOptions::new(5, 9));
        for (x, y) in a.images().iter().zip(b.images()) {
            assert_eq!(
                x.read_file("/etc/mysql/my.cnf"),
                y.read_file("/etc/mysql/my.cnf")
            );
        }
        let c = Population::training(AppKind::Mysql, &PopulationOptions::new(5, 10));
        assert_ne!(
            a.images()[0].read_file("/etc/mysql/my.cnf"),
            c.images()[0].read_file("/etc/mysql/my.cnf")
        );
    }

    #[test]
    fn training_images_have_parseable_configs() {
        use encore_parser::LensRegistry;
        let registry = LensRegistry::with_defaults();
        for app in AppKind::EVALUATED {
            let pop = Population::training(app, &PopulationOptions::new(8, 3));
            for img in pop.images() {
                let text = img.read_file(app.config_path()).expect("config present");
                registry
                    .parse(app.name(), text)
                    .unwrap_or_else(|e| panic!("{app}: {e}\n{text}"));
            }
        }
    }

    #[test]
    fn path_entries_reference_existing_objects() {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(6, 4));
        for img in pop.images() {
            let text = img.read_file("/etc/mysql/my.cnf").unwrap();
            for line in text.lines() {
                if let Some((k, v)) = line.split_once(" = ") {
                    if k == "datadir" {
                        assert!(img.vfs().is_dir(v), "{}: datadir {v} missing", img.id());
                    }
                }
            }
        }
    }

    #[test]
    fn ownership_coupling_enforced() {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(10, 5));
        for img in pop.images() {
            let text = img.read_file("/etc/mysql/my.cnf").unwrap();
            let get = |name: &str| {
                text.lines().find_map(|l| {
                    l.split_once(" = ")
                        .filter(|(k, _)| *k == name)
                        .map(|(_, v)| v)
                })
            };
            if let (Some(datadir), Some(user)) = (get("datadir"), get("user")) {
                let meta = img.vfs().metadata(datadir).expect("datadir exists");
                assert_eq!(meta.owner, user, "{}", img.id());
            }
        }
    }

    #[test]
    fn seeded_misconfigs_recorded_and_bounded() {
        let pop = Population::ec2_fresh(AppKind::Mysql, 40, 11);
        assert!(!pop.seeded().is_empty());
        assert!(pop.seeded().len() < 20);
        for m in pop.seeded() {
            assert!(pop.images().iter().any(|i| i.id() == m.image_id));
        }
    }

    #[test]
    fn private_cloud_has_lower_misconfig_rate() {
        let ec2 = Population::ec2_fresh(AppKind::Php, 100, 13);
        let pc = Population::private_cloud(AppKind::Php, 100, 13);
        assert!(pc.seeded().len() < ec2.seeded().len());
    }

    #[test]
    fn dormant_images_have_no_hardware() {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(3, 2));
        for img in pop.images() {
            assert!(img.hardware().is_none());
        }
    }
}
