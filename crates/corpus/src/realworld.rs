//! The ten real-world misconfiguration scenarios of paper Table 9.
//!
//! The paper samples fifteen reproducible problems from a ServerFault-based
//! study (citation 46) and reproduces ten of them on test images (Table 9 lists the
//! ten that need discussion; we implement exactly those).  Each scenario
//! here reconstructs, on a synthetic image drawn from the same population
//! as training, the configuration + environment state the description
//! implies.  Case #8 is the one EnCore misses for lack of hardware data in
//! dormant-image training sets — our reproduction preserves that miss.

use crate::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use encore_sysimage::{SecurityModule, SecurityState, SystemImage};
use std::fmt;

/// The information needed to detect a case (Table 9's "Info" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoKind {
    /// Correlation between entries.
    Corr,
    /// Environment information.
    Env,
    /// Both.
    EnvCorr,
}

impl fmt::Display for InfoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InfoKind::Corr => "Corr",
            InfoKind::Env => "Env",
            InfoKind::EnvCorr => "Env + Corr",
        };
        f.write_str(s)
    }
}

/// One reconstructed real-world case.
#[derive(Debug, Clone)]
pub struct RealWorldCase {
    /// Case number (1-10, matching Table 9).
    pub id: usize,
    /// Affected application.
    pub app: AppKind,
    /// The paper's problem description.
    pub description: &'static str,
    /// Information required for detection.
    pub info: InfoKind,
    /// The culprit configuration entry (ground truth).
    pub culprit: &'static str,
    /// The failing image.
    pub image: SystemImage,
    /// Whether the paper's EnCore detects it (all but #8).
    pub paper_detects: bool,
    /// The paper's reported rank (None for the miss).
    pub paper_rank: Option<usize>,
}

/// Build all ten cases.  `seed` varies the benign parts of each image.
pub fn all_cases(seed: u64) -> Vec<RealWorldCase> {
    vec![
        case_1(seed),
        case_2(seed),
        case_3(seed),
        case_4(seed),
        case_5(seed),
        case_6(seed),
        case_7(seed),
        case_8(seed),
        case_9(seed),
        case_10(seed),
    ]
}

/// A clean base image drawn from the app's generator population.
fn fresh_image(app: AppKind, seed: u64) -> SystemImage {
    Population::training(app, &PopulationOptions::new(1, seed ^ 0xbeef)).images()[0].clone()
}

/// Rewrite one entry inside a config file body (INI/Apache-style line edit),
/// or append the line if the entry is absent.
fn rewrite_entry(config: &str, app: AppKind, entry: &str, value: &str) -> String {
    let mut out = String::new();
    let mut replaced = false;
    for line in config.lines() {
        let is_target = match app {
            AppKind::Apache => line
                .trim_start()
                .strip_prefix(entry)
                .map(|rest| rest.starts_with(' ') || rest.starts_with('\t'))
                .unwrap_or(false),
            _ => line
                .split_once('=')
                .map(|(k, _)| k.trim() == entry)
                .unwrap_or(false),
        };
        if is_target && !replaced {
            match app {
                AppKind::Apache => out.push_str(&format!("{entry} \"{value}\"\n")),
                AppKind::Sshd => out.push_str(&format!("{entry} {value}\n")),
                _ => out.push_str(&format!("{entry} = {value}\n")),
            }
            replaced = true;
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    if !replaced {
        match app {
            AppKind::Apache => out.push_str(&format!("{entry} \"{value}\"\n")),
            AppKind::Sshd => out.push_str(&format!("{entry} {value}\n")),
            _ => out.push_str(&format!("{entry} = {value}\n")),
        }
    }
    out
}

/// Read one entry's value out of a generated config.
fn read_entry(config: &str, app: AppKind, entry: &str) -> Option<String> {
    for line in config.lines() {
        match app {
            AppKind::Apache => {
                if let Some(rest) = line.trim_start().strip_prefix(entry) {
                    if rest.starts_with(' ') {
                        return Some(rest.trim().trim_matches('"').to_string());
                    }
                }
            }
            _ => {
                if let Some((k, v)) = line.split_once('=') {
                    if k.trim() == entry {
                        return Some(v.trim().to_string());
                    }
                }
            }
        }
    }
    None
}

/// Clone an image with a replaced VFS (helper used by scenario builders).
fn rebuild_with_vfs(image: SystemImage, vfs: encore_sysimage::Vfs) -> SystemImage {
    image.with_vfs(vfs)
}

/// Case 1 — Apache: DocumentRoot lacks its related `<Directory>` section.
fn case_1(seed: u64) -> RealWorldCase {
    let app = AppKind::Apache;
    let image = fresh_image(app, seed ^ 1);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    // Redirect DocumentRoot to a real directory that has no <Directory>
    // section; the existing section still references the old path.
    let new_root = "/srv/www/app";
    let mut vfs = image.vfs().clone();
    vfs.add_dir(new_root, "apache", "apache", 0o755);
    let config = {
        // Only replace the DocumentRoot directive line, leaving the
        // <Directory old-root> section in place.
        let mut out = String::new();
        for line in config.lines() {
            if line.trim_start().starts_with("DocumentRoot ") {
                out.push_str(&format!("DocumentRoot \"{new_root}\"\n"));
            } else {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    };
    let mut vfs2 = vfs;
    vfs2.add_file(app.config_path(), "root", "root", 0o644, &config);
    let image = rebuild_with_vfs(image, vfs2);
    RealWorldCase {
        id: 1,
        app,
        description: "Website not granted desired protection because DocumentRoot does not have a related Directory section",
        info: InfoKind::Corr,
        culprit: "DocumentRoot",
        image,
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 2 — PHP: extension_dir points to a file instead of the directory.
fn case_2(seed: u64) -> RealWorldCase {
    let app = AppKind::Php;
    let image = fresh_image(app, seed ^ 2);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let bad = "/usr/lib/php/modules/pdo.so";
    let mut vfs = image.vfs().clone();
    vfs.add_file(bad, "root", "root", 0o644, "");
    let config = rewrite_entry(&config, app, "extension_dir", bad);
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    RealWorldCase {
        id: 2,
        app,
        description: "Does not connect to database due to extension_dir pointing to a file instead of the directory",
        info: InfoKind::Env,
        culprit: "extension_dir",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 3 — MySQL: datadir has the wrong owner.
fn case_3(seed: u64) -> RealWorldCase {
    let app = AppKind::Mysql;
    let image = fresh_image(app, seed ^ 3);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let datadir = read_entry(&config, app, "datadir").expect("datadir present");
    let mut vfs = image.vfs().clone();
    vfs.chown(&datadir, "root", "root");
    RealWorldCase {
        id: 3,
        app,
        description: "File creation error due to datadir's wrong owner",
        info: InfoKind::EnvCorr,
        culprit: "datadir",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 4 — MySQL: AppArmor denies writes to a relocated datadir.
fn case_4(seed: u64) -> RealWorldCase {
    let app = AppKind::Mysql;
    let image = fresh_image(app, seed ^ 4);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let new_dir = "/data/mysql";
    let mut vfs = image.vfs().clone();
    vfs.add_dir(new_dir, "mysql", "mysql", 0o750);
    let config = rewrite_entry(&config, app, "datadir", new_dir);
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    let mut img = rebuild_with_vfs(image, vfs);
    img = img.with_security(SecurityState::enforcing(
        SecurityModule::AppArmor,
        &["/var/lib/mysql"],
    ));
    RealWorldCase {
        id: 4,
        app,
        description: "Data writing error due to undesired protection from AppArmor",
        info: InfoKind::Env,
        culprit: "datadir",
        image: img,
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 5 — PHP: extension_dir set to a wrong (nonexistent) location.
fn case_5(seed: u64) -> RealWorldCase {
    let app = AppKind::Php;
    let image = fresh_image(app, seed ^ 5);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let config = rewrite_entry(
        &config,
        app,
        "extension_dir",
        "/usr/local/lib/php/extensions",
    );
    let mut vfs = image.vfs().clone();
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    RealWorldCase {
        id: 5,
        app,
        description: "Modules not loaded because extension_dir is set to a wrong location",
        info: InfoKind::Env,
        culprit: "extension_dir",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 6 — Apache: directory contains symlinks while FollowSymLinks is off.
fn case_6(seed: u64) -> RealWorldCase {
    let app = AppKind::Apache;
    let image = fresh_image(app, seed ^ 6);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let droot = read_entry(&config, app, "DocumentRoot").expect("DocumentRoot");
    let mut vfs = image.vfs().clone();
    vfs.add_symlink(&format!("{droot}/shared"), "/mnt/nfs/shared");
    let config = rewrite_entry(&config, app, "FollowSymLinks", "Off");
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    RealWorldCase {
        id: 6,
        app,
        description: "Website unavailability because directory contains symbolic links when FollowSymLinks is off",
        info: InfoKind::EnvCorr,
        culprit: "FollowSymLinks",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 7 — Apache: visitors cannot upload due to wrong permission for the
/// Apache user.
fn case_7(seed: u64) -> RealWorldCase {
    let app = AppKind::Apache;
    let image = fresh_image(app, seed ^ 7);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let droot = read_entry(&config, app, "DocumentRoot").expect("DocumentRoot");
    let mut vfs = image.vfs().clone();
    // root grabs the document root with a restrictive mode.
    vfs.chown(&droot, "root", "root");
    vfs.chmod(&droot, 0o700);
    RealWorldCase {
        id: 7,
        app,
        description: "Website visitors are unable to upload files due to the wrong permission set to the Apache user",
        info: InfoKind::EnvCorr,
        culprit: "DocumentRoot",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 8 — MySQL: max_heap_table_size set to the whole system memory.
/// Missed: dormant-image training sets carry no hardware information.
fn case_8(seed: u64) -> RealWorldCase {
    let app = AppKind::Mysql;
    let image = fresh_image(app, seed ^ 8);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    // 16G on a 16GiB machine.
    let config = rewrite_entry(&config, app, "max_heap_table_size", "16G");
    let mut vfs = image.vfs().clone();
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    RealWorldCase {
        id: 8,
        app,
        description: "Out of memory error due to too large table size allowed in configuration",
        info: InfoKind::EnvCorr,
        culprit: "max_heap_table_size",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: false,
        paper_rank: None,
    }
}

/// Case 9 — MySQL: logging silently skipped due to wrong log-file owner.
fn case_9(seed: u64) -> RealWorldCase {
    let app = AppKind::Mysql;
    let image = fresh_image(app, seed ^ 9);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let mut vfs = image.vfs().clone();
    // `log_error` is usually present in generated configs; materialize it
    // when this particular sample skipped it.
    let log = match read_entry(&config, app, "log_error") {
        Some(l) => l,
        None => {
            let l = "/var/log/mysql/error.log".to_string();
            let config = rewrite_entry(&config, app, "log_error", &l);
            vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
            l
        }
    };
    if !vfs.exists(&log) {
        vfs.add_file(&log, "mysql", "mysql", 0o640, "");
    }
    vfs.chown(&log, "root", "root");
    vfs.chmod(&log, 0o600);
    RealWorldCase {
        id: 9,
        app,
        description: "Logging is not performed even with relevant entry set correctly due to wrong permission",
        info: InfoKind::EnvCorr,
        culprit: "log_error",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(1),
    }
}

/// Case 10 — PHP: upload fails because upload_max_filesize exceeds
/// post_max_size.  The paper reports rank 2: another true misconfiguration
/// in the same file violates a higher-confidence rule.
fn case_10(seed: u64) -> RealWorldCase {
    let app = AppKind::Php;
    let image = fresh_image(app, seed ^ 10);
    let config = image
        .read_file(app.config_path())
        .expect("config")
        .to_string();
    let config = rewrite_entry(&config, app, "post_max_size", "8M");
    let config = rewrite_entry(&config, app, "upload_max_filesize", "64M");
    // The co-occurring true misconfiguration: session.save_path owned by
    // the wrong user (violates the ownership rule, which trains at higher
    // confidence than the size ordering and therefore ranks first — the
    // paper reports this case at rank 2 for exactly that reason).
    let mut vfs = image.vfs().clone();
    let save_path = match read_entry(&config, app, "session.save_path") {
        Some(p) => p,
        None => "/var/lib/php/session".to_string(),
    };
    let config = rewrite_entry(&config, app, "session.save_path", &save_path);
    if !vfs.exists(&save_path) {
        vfs.add_dir(&save_path, "apache", "apache", 0o750);
    }
    vfs.chown(&save_path, "root", "root");
    vfs.add_file(app.config_path(), "root", "root", 0o644, &config);
    RealWorldCase {
        id: 10,
        app,
        description:
            "Failure when uploading large file due to the wrong setting of file size limit",
        info: InfoKind::Corr,
        culprit: "upload_max_filesize",
        image: rebuild_with_vfs(image, vfs),
        paper_detects: true,
        paper_rank: Some(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_cases_with_table_9_metadata() {
        let cases = all_cases(42);
        assert_eq!(cases.len(), 10);
        assert_eq!(cases.iter().filter(|c| !c.paper_detects).count(), 1);
        assert_eq!(cases[7].id, 8);
        assert!(!cases[7].paper_detects);
        // Majority need environment and/or correlation info.
        let env_or_corr = cases
            .iter()
            .filter(|c| matches!(c.info, InfoKind::EnvCorr | InfoKind::Env))
            .count();
        assert!(env_or_corr >= 6);
    }

    #[test]
    fn case_images_are_well_formed() {
        for case in all_cases(7) {
            assert!(
                case.image.read_file(case.app.config_path()).is_some(),
                "case {} lost its config",
                case.id
            );
        }
    }

    #[test]
    fn case_3_owner_actually_wrong() {
        let c = case_3(1);
        let config = c.image.read_file(c.app.config_path()).unwrap();
        let datadir = read_entry(config, c.app, "datadir").unwrap();
        assert_eq!(c.image.vfs().metadata(&datadir).unwrap().owner, "root");
    }

    #[test]
    fn case_4_security_module_enforcing() {
        let c = case_4(1);
        assert!(c.image.security().is_enforcing());
        assert!(c.image.security().denies_write("/data/mysql"));
    }

    #[test]
    fn case_10_ordering_violated() {
        let c = case_10(1);
        let config = c.image.read_file(c.app.config_path()).unwrap();
        assert!(read_entry(config, c.app, "upload_max_filesize")
            .unwrap()
            .contains("64M"));
        assert!(read_entry(config, c.app, "post_max_size")
            .unwrap()
            .contains("8M"));
    }
}
