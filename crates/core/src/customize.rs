//! The customization interface (§5.3, Figure 6).
//!
//! EnCore is customized with a sectioned customization file.  Each section
//! name is prefixed with `$$`:
//!
//! ```text
//! $$TypeDeclaration
//! VersionString : String
//! $$TypeInference
//! VersionString : dotted-digits
//! $$Template
//! [A:Size] < [B:Size] -- 90%
//! [A:FilePath] => [B:UserName]
//! ```
//!
//! The paper embeds Python snippets in the file; a Rust library cannot
//! execute arbitrary code from text, so the file format supports a small
//! matcher vocabulary for type inference (`prefix:`, `suffix:`,
//! `contains:`, `dotted-digits`, `charset:<chars>`), while fully
//! programmatic customization — arbitrary matchers, semantic verifiers, and
//! relation validators — is available through [`CustomType`] and
//! [`CustomRelation`] closures, which are strictly more expressive.

use crate::template::Template;
use encore_assemble::CustomType;
use encore_model::SemType;
use encore_sysimage::SystemImage;
use std::fmt;
use std::sync::Arc;

/// Shared validator closure deciding whether a relation holds between two
/// rendered values within an image.
type RelationValidator = Arc<dyn Fn(&str, &str, &SystemImage) -> bool + Send + Sync>;

/// Shared matcher closure over one rendered value.
type ValueMatcher = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// A user-defined relation validator (§5.3.2's programmatic path).
#[derive(Clone)]
pub struct CustomRelation {
    /// Name for reports.
    pub name: String,
    validator: RelationValidator,
}

impl fmt::Debug for CustomRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomRelation")
            .field("name", &self.name)
            .finish()
    }
}

impl CustomRelation {
    /// Define a relation over two rendered values within an image.
    pub fn new(
        name: impl Into<String>,
        validator: impl Fn(&str, &str, &SystemImage) -> bool + Send + Sync + 'static,
    ) -> CustomRelation {
        CustomRelation {
            name: name.into(),
            validator: Arc::new(validator),
        }
    }

    /// Evaluate the relation.
    pub fn holds(&self, a: &str, b: &str, image: &SystemImage) -> bool {
        (self.validator)(a, b, image)
    }
}

/// Parsed contents of a customization file.
#[derive(Debug, Default)]
pub struct Customization {
    /// Custom types (declaration + matcher sections).
    pub types: Vec<CustomType>,
    /// Extra templates to instantiate.
    pub templates: Vec<Template>,
}

/// Errors from customization-file parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomizeError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CustomizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "customization line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CustomizeError {}

/// Build a matcher closure from the matcher vocabulary.
fn build_matcher(spec: &str) -> Option<ValueMatcher> {
    let spec = spec.trim().to_string();
    if let Some(p) = spec.strip_prefix("prefix:") {
        let p = p.trim().to_string();
        return Some(Arc::new(move |v: &str| v.starts_with(&p)));
    }
    if let Some(s) = spec.strip_prefix("suffix:") {
        let s = s.trim().to_string();
        return Some(Arc::new(move |v: &str| v.ends_with(&s)));
    }
    if let Some(c) = spec.strip_prefix("contains:") {
        let c = c.trim().to_string();
        return Some(Arc::new(move |v: &str| v.contains(&c)));
    }
    if let Some(cs) = spec.strip_prefix("charset:") {
        let cs = cs.trim().to_string();
        return Some(Arc::new(move |v: &str| {
            !v.is_empty() && v.chars().all(|ch| cs.contains(ch))
        }));
    }
    if spec == "dotted-digits" {
        return Some(Arc::new(|v: &str| {
            !v.is_empty()
                && v.split('.').count() >= 2
                && v.split('.')
                    .all(|seg| !seg.is_empty() && seg.chars().all(|c| c.is_ascii_digit()))
        }));
    }
    None
}

/// Parse a customization file.
///
/// # Errors
///
/// Reports the first malformed line.
pub fn parse(text: &str) -> Result<Customization, CustomizeError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        TypeDeclaration,
        TypeInference,
        Template,
    }
    let mut section = Section::None;
    let mut out = Customization::default();
    // name → (maps_to, matcher?)
    let mut declared: Vec<(String, SemType)> = Vec::new();
    let mut matchers: Vec<(String, ValueMatcher)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("$$") {
            section = match name.trim() {
                "TypeDeclaration" => Section::TypeDeclaration,
                "TypeInference" => Section::TypeInference,
                "Template" => Section::Template,
                // Sections we accept but do not interpret textually (the
                // paper embeds code here; use the programmatic API instead).
                "TypeValidation" | "TypeAugmentDeclaration" | "TypeAugment" | "TypeOperator" => {
                    Section::None
                }
                other => {
                    return Err(CustomizeError {
                        line: lineno,
                        message: format!("unknown section `{other}`"),
                    })
                }
            };
            continue;
        }
        match section {
            Section::TypeDeclaration => {
                let (name, ty) = line.split_once(':').ok_or_else(|| CustomizeError {
                    line: lineno,
                    message: "expected `Name : BaseType`".to_string(),
                })?;
                let ty = SemType::parse_name(ty).ok_or_else(|| CustomizeError {
                    line: lineno,
                    message: format!("unknown base type `{}`", ty.trim()),
                })?;
                declared.push((name.trim().to_string(), ty));
            }
            Section::TypeInference => {
                let (name, spec) = line.split_once(':').ok_or_else(|| CustomizeError {
                    line: lineno,
                    message: "expected `Name : matcher-spec`".to_string(),
                })?;
                let matcher = build_matcher(spec).ok_or_else(|| CustomizeError {
                    line: lineno,
                    message: format!("unknown matcher `{}`", spec.trim()),
                })?;
                matchers.push((name.trim().to_string(), matcher));
            }
            Section::Template => {
                let t = Template::parse(line).map_err(|e| CustomizeError {
                    line: lineno,
                    message: e,
                })?;
                out.templates.push(t);
            }
            Section::None => {
                // Unparsed (code-bearing) section body: ignored.
            }
        }
    }

    // Join declarations with matchers, preserving declaration order
    // (priority order, §5.3.1).
    for (name, maps_to) in declared {
        let matcher = matchers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| Arc::clone(m));
        if let Some(m) = matcher {
            let m2 = Arc::clone(&m);
            out.types
                .push(CustomType::new(name, maps_to, move |v| m2(v)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sample customization
$$TypeDeclaration
Version : String
SharedObject : PartialFilePath
$$TypeInference
Version : dotted-digits
SharedObject : suffix:.so
$$Template
[A:Size] < [B:Size] -- 90%
[A:FilePath] => [B:UserName]
";

    #[test]
    fn parses_types_and_templates() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.types.len(), 2);
        assert_eq!(c.templates.len(), 2);
        assert_eq!(c.templates[0].min_confidence, Some(0.9));
    }

    #[test]
    fn custom_types_usable_in_assembler() {
        let c = parse(SAMPLE).unwrap();
        let mut assembler = encore_assemble::Assembler::new();
        for t in c.types {
            assembler = assembler.with_custom_type(t);
        }
        let img = SystemImage::builder("t").build();
        let (_, name) = assembler.inference().infer_named("5.1.73", &img);
        assert_eq!(name, Some("Version"));
    }

    #[test]
    fn matcher_vocabulary() {
        assert!(build_matcher("prefix:/usr").unwrap()("/usr/lib"));
        assert!(!build_matcher("prefix:/usr").unwrap()("/var"));
        assert!(build_matcher("suffix:.so").unwrap()("mod_mime.so"));
        assert!(build_matcher("contains:@").unwrap()("a@b"));
        assert!(build_matcher("charset:0123456789.").unwrap()("1.2.3"));
        assert!(!build_matcher("charset:0123456789.").unwrap()("1.2a"));
        assert!(build_matcher("dotted-digits").unwrap()("10.5"));
        assert!(!build_matcher("dotted-digits").unwrap()("105"));
        assert!(build_matcher("regex:x").is_none());
    }

    #[test]
    fn bad_sections_and_lines_error_with_lineno() {
        let err = parse("$$Bogus\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("$$TypeDeclaration\nNoColonHere\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("$$Template\n[A:What] == [B:Str]\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn code_bearing_sections_are_tolerated() {
        let text =
            "$$TypeValidation\n(value): { return True }\n$$Template\n[A:Number] < [B:Number]\n";
        let c = parse(text).unwrap();
        assert_eq!(c.templates.len(), 1);
    }

    #[test]
    fn custom_relation_closure() {
        let rel = CustomRelation::new("same-length", |a, b, _| a.len() == b.len());
        let img = SystemImage::builder("t").build();
        assert!(rel.holds("abc", "xyz", &img));
        assert!(!rel.holds("abc", "wxyz", &img));
    }
}
