//! Relation validators (§5.1: "each correlation is associated with a
//! validation method that determines whether the correlation holds").
//!
//! A validator evaluates one concrete relation instance against one system —
//! its assembled [`Row`] and, for environment-dependent relations, its
//! [`SystemImage`].  The tri-state result distinguishes *inapplicable*
//! systems (an involved entry absent — the rule is skipped, §6) from actual
//! validity.

use crate::stats::StatsCache;
use crate::template::Relation;
use encore_model::{AttrName, Column, ColumnStore, ConfigValue, Row};
use encore_sysimage::SystemImage;

/// Evaluation of a relation instance on one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// Both entries present and the relation holds.
    Holds,
    /// Both entries present and the relation is violated.
    Violated,
    /// Some involved entry is absent — skip this system.
    NotApplicable,
}

impl Applicability {
    fn from_bool(b: bool) -> Applicability {
        if b {
            Applicability::Holds
        } else {
            Applicability::Violated
        }
    }
}

/// Context handed to validators: the assembled row plus (optionally) the
/// raw system image for environment-dependent relations.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// The assembled attribute row.
    pub row: &'a Row,
    /// The system image; `None` when only the row is available.
    pub image: Option<&'a SystemImage>,
}

impl<'a> SystemView<'a> {
    /// View over a row with its image.
    pub fn new(row: &'a Row, image: &'a SystemImage) -> SystemView<'a> {
        SystemView {
            row,
            image: Some(image),
        }
    }

    /// View over a bare row.
    pub fn row_only(row: &'a Row) -> SystemView<'a> {
        SystemView { row, image: None }
    }

    fn value(&self, attr: &AttrName) -> Option<&'a ConfigValue> {
        self.row.get(attr).filter(|v| !v.is_absent())
    }
}

/// Evaluate `relation(a, b)` on one system.
pub fn evaluate(
    relation: Relation,
    a: &AttrName,
    b: &AttrName,
    view: SystemView<'_>,
) -> Applicability {
    let (va, vb) = match (view.value(a), view.value(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return Applicability::NotApplicable,
    };
    match relation {
        Relation::Equal => Applicability::from_bool(va.render() == vb.render()),
        Relation::MemberEq => member_eq(va, b, view),
        // Association-rule semantics: the implication is only *exercised*
        // when the antecedent fires.  Counting false antecedents as "holds"
        // would admit vacuous rules between any two mostly-off booleans.
        Relation::ExtBoolImplies => match (va.as_bool(), vb.as_bool()) {
            (Some(false), _) => Applicability::NotApplicable,
            (Some(true), Some(y)) => Applicability::from_bool(y),
            _ => Applicability::NotApplicable,
        },
        Relation::SubnetOf => subnet_of(va, vb),
        Relation::ConcatPath => concat_path(va, vb, view.image),
        Relation::SubstringOf => match (va.as_str(), vb.as_str()) {
            (Some(x), Some(y)) => Applicability::from_bool(!x.is_empty() && y.contains(x)),
            _ => Applicability::NotApplicable,
        },
        Relation::InGroup => in_group(va, vb, view.image),
        Relation::NotAccessible => not_accessible(va, vb, view.image),
        Relation::Owns => owns(a, va, vb, view),
        // `Relation` is non_exhaustive: future variants are inapplicable
        // until a validator is written, which the catch-all below encodes —
        // but today every variant above is covered, so allow the lint.
        #[allow(unreachable_patterns)]
        Relation::LessNum | Relation::LessSize => match (va.as_number(), vb.as_number()) {
            (Some(x), Some(y)) => Applicability::from_bool(x < y),
            _ => Applicability::NotApplicable,
        },
        #[allow(unreachable_patterns)]
        _ => Applicability::NotApplicable,
    }
}

/// `[A] =~ [B]`: A's value equals *some* instance of the B entry family.
///
/// Multi-occurrence entries are flattened with `#N` markers
/// (`LoadModule#3/arg1`); the family of `B` is every attribute sharing B's
/// base name with the occurrence index stripped.
fn member_eq(va: &ConfigValue, b: &AttrName, view: SystemView<'_>) -> Applicability {
    let family_base = strip_occurrence(b.base());
    let target = va.render();
    let mut seen_any = false;
    for (attr, value) in view.row.iter() {
        if strip_occurrence(attr.base()) == family_base
            && attr.suffix() == b.suffix()
            && !value.is_absent()
        {
            seen_any = true;
            if value.render() == target {
                return Applicability::Holds;
            }
        }
    }
    if seen_any {
        Applicability::Violated
    } else {
        Applicability::NotApplicable
    }
}

/// Strip the `#N` occurrence marker from a flattened entry name.
pub(crate) fn strip_occurrence(base: &str) -> String {
    match base.find('#') {
        Some(i) => {
            let (head, tail) = base.split_at(i);
            match tail[1..].find('/') {
                Some(j) => format!("{head}{}", &tail[1 + j..]),
                None => head.to_string(),
            }
        }
        None => base.to_string(),
    }
}

/// Canonicalize an entry name for *name-novelty* checks: occurrence markers
/// are stripped and section arguments are wildcarded
/// (`Directory:/srv/www|AllowOverride` → `Directory:*|AllowOverride`).
/// Without this, every unseen section path would flood the unknown-entry
/// check — the Apache false-warning source the paper describes in §7.1.2,
/// scoped here to genuinely novel section/entry *combinations*.
pub(crate) fn canonical_entry_name(base: &str) -> String {
    let stripped = strip_occurrence(base);
    stripped
        .split('|')
        .map(|segment| match segment.split_once(':') {
            Some((name, _arg)) => format!("{name}:*"),
            None => segment.to_string(),
        })
        .collect::<Vec<_>>()
        .join("|")
}

fn subnet_of(va: &ConfigValue, vb: &ConfigValue) -> Applicability {
    let (a_text, b_text) = match (va.as_str(), vb.as_str()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Applicability::NotApplicable,
    };
    // `B` may carry a `/len` CIDR suffix; default to /24 for IPv4.
    let (b_addr, prefix_len) = match b_text.split_once('/') {
        Some((addr, len)) => match len.parse::<u32>() {
            Ok(l) => (addr, l),
            Err(_) => return Applicability::NotApplicable,
        },
        None => (b_text, 24),
    };
    let parse4 = |s: &str| -> Option<u32> {
        let octets: Vec<u32> = s
            .split('.')
            .map(|o| o.parse().ok())
            .collect::<Option<_>>()?;
        if octets.len() == 4 && octets.iter().all(|&o| o < 256) {
            Some((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3])
        } else {
            None
        }
    };
    match (parse4(a_text), parse4(b_addr)) {
        (Some(a4), Some(b4)) if prefix_len <= 32 => {
            let mask = if prefix_len == 0 {
                0
            } else {
                u32::MAX << (32 - prefix_len)
            };
            Applicability::from_bool((a4 & mask) == (b4 & mask))
        }
        _ => Applicability::NotApplicable,
    }
}

fn concat_path(va: &ConfigValue, vb: &ConfigValue, image: Option<&SystemImage>) -> Applicability {
    let image = match image {
        Some(i) => i,
        None => return Applicability::NotApplicable,
    };
    let (dir, frag) = match (va.as_str(), vb.as_str()) {
        (Some(d), Some(f)) => (d, f),
        _ => return Applicability::NotApplicable,
    };
    let full = format!(
        "{}/{}",
        dir.trim_end_matches('/'),
        frag.trim_start_matches('/')
    );
    Applicability::from_bool(image.vfs().exists(&full))
}

fn in_group(va: &ConfigValue, vb: &ConfigValue, image: Option<&SystemImage>) -> Applicability {
    let image = match image {
        Some(i) => i,
        None => return Applicability::NotApplicable,
    };
    match (va.as_str(), vb.as_str()) {
        (Some(user), Some(group)) => {
            Applicability::from_bool(image.accounts().is_member(user, group))
        }
        _ => Applicability::NotApplicable,
    }
}

fn not_accessible(
    va: &ConfigValue,
    vb: &ConfigValue,
    image: Option<&SystemImage>,
) -> Applicability {
    let image = match image {
        Some(i) => i,
        None => return Applicability::NotApplicable,
    };
    let (path, user) = match (va.as_str(), vb.as_str()) {
        (Some(p), Some(u)) => (p, u),
        _ => return Applicability::NotApplicable,
    };
    if !image.vfs().exists(path) {
        return Applicability::NotApplicable;
    }
    let groups = image.accounts().groups_of(user);
    Applicability::from_bool(!image.vfs().readable_by(path, user, &groups))
}

/// `[A] => [B]`: the user named by B owns the path named by A.
///
/// Prefers the assembled `A.owner` augmented attribute (always present in
/// training rows); falls back to live VFS metadata when the row lacks it.
fn owns(a: &AttrName, va: &ConfigValue, vb: &ConfigValue, view: SystemView<'_>) -> Applicability {
    let user = match vb.as_str() {
        Some(u) => u,
        None => return Applicability::NotApplicable,
    };
    if let Some(owner) = view.row.get(&a.augmented("owner")) {
        if !owner.is_absent() {
            return Applicability::from_bool(owner.render() == user);
        }
    }
    let image = match view.image {
        Some(i) => i,
        None => return Applicability::NotApplicable,
    };
    let path = match va.as_str() {
        Some(p) => p,
        None => return Applicability::NotApplicable,
    };
    match image.vfs().metadata(path) {
        Some(meta) => Applicability::from_bool(meta.owner == user),
        None => Applicability::NotApplicable,
    }
}

/// Row-independent evaluation strategy of one `(a, relation, b)` pair over
/// the columnar store — resolved once per pair instead of once per row.
enum PairKind<'c> {
    /// `Equal`: compare interned render classes (≡ comparing rendered
    /// strings).
    RenderEqual,
    /// `MemberEq`: the b-entry family columns, resolved once — the per-row
    /// scan over every row cell becomes a probe of just these columns.
    MemberEq {
        /// Columns whose attribute shares b's occurrence-stripped base and
        /// suffix, in ascending attribute order.
        family: Vec<&'c Column>,
    },
    /// `ExtBoolImplies`.
    BoolImplies,
    /// `SubnetOf`.
    SubnetOf,
    /// `ConcatPath` (environment-backed).
    ConcatPath,
    /// `SubstringOf`.
    SubstringOf,
    /// `InGroup` (environment-backed).
    InGroup,
    /// `NotAccessible` (environment-backed).
    NotAccessible,
    /// `Owns`: the `a.owner` augmented column, if the dataset has one.
    Owns { owner: Option<&'c Column> },
    /// `LessNum`/`LessSize`.
    LessNumeric,
    /// A relation without a columnar strategy — never applicable, matching
    /// [`evaluate`]'s catch-all.
    Unsupported,
}

/// Columnar validator for one attribute pair: scans the two value-id
/// columns' presence intersection one 64-row word at a time, with all
/// row-independent work (render classes, the `=~` family, the `.owner`
/// column) hoisted out of the row loop.  For every row it reproduces
/// [`evaluate`] exactly — same helpers, same gating, same tri-state — so
/// the tallies are bit-identical to the row-major path.
pub(crate) struct PairEvaluator<'c> {
    store: &'c ColumnStore,
    col_a: &'c Column,
    col_b: &'c Column,
    kind: PairKind<'c>,
}

impl<'c> PairEvaluator<'c> {
    /// Resolve the evaluation strategy for the pair of attributes at sorted
    /// indices `a_index` / `b_index` of `cache`.
    pub(crate) fn new(
        relation: Relation,
        cache: &'c StatsCache,
        a_index: usize,
        b_index: usize,
    ) -> PairEvaluator<'c> {
        let store = cache.columns();
        let attrs = cache.attributes();
        let kind = match relation {
            Relation::Equal => PairKind::RenderEqual,
            Relation::MemberEq => {
                let b = &attrs[b_index];
                let family = (0..attrs.len())
                    .filter(|&j| {
                        cache.stripped_base(j) == cache.stripped_base(b_index)
                            && attrs[j].suffix() == b.suffix()
                    })
                    .map(|j| store.column(j))
                    .collect();
                PairKind::MemberEq { family }
            }
            Relation::ExtBoolImplies => PairKind::BoolImplies,
            Relation::SubnetOf => PairKind::SubnetOf,
            Relation::ConcatPath => PairKind::ConcatPath,
            Relation::SubstringOf => PairKind::SubstringOf,
            Relation::InGroup => PairKind::InGroup,
            Relation::NotAccessible => PairKind::NotAccessible,
            Relation::Owns => PairKind::Owns {
                owner: cache
                    .attr_index(&attrs[a_index].augmented("owner"))
                    .map(|j| store.column(j)),
            },
            #[allow(unreachable_patterns)]
            Relation::LessNum | Relation::LessSize => PairKind::LessNumeric,
            #[allow(unreachable_patterns)]
            _ => PairKind::Unsupported,
        };
        PairEvaluator {
            store,
            col_a: store.column(a_index),
            col_b: store.column(b_index),
            kind,
        }
    }

    /// Tally `(holds, applicable)` over every training system — the counts
    /// [`crate::infer`] turns into a candidate's support and confidence.
    pub(crate) fn tally(&self, systems: &[(Row, SystemImage)]) -> (usize, usize) {
        let mut holds = 0usize;
        let mut applicable = 0usize;
        let words = self.col_a.presence().iter().zip(self.col_b.presence());
        for (w, (wa, wb)) in words.enumerate() {
            // Both slots must be present — the same gate `evaluate` applies
            // before dispatching any relation.
            let mut both = wa & wb;
            while both != 0 {
                let i = w * 64 + both.trailing_zeros() as usize;
                both &= both - 1;
                match self.eval_row(i, &systems[i].1) {
                    Applicability::Holds => {
                        holds += 1;
                        applicable += 1;
                    }
                    Applicability::Violated => applicable += 1,
                    Applicability::NotApplicable => {}
                }
            }
        }
        (holds, applicable)
    }

    /// Evaluate the pair on row `i` (whose presence bits are known set).
    fn eval_row(&self, i: usize, image: &SystemImage) -> Applicability {
        let interner = self.store.interner();
        let va_id = self.col_a.value_id(i).expect("presence bit set for a");
        let vb_id = self.col_b.value_id(i).expect("presence bit set for b");
        match &self.kind {
            PairKind::RenderEqual => Applicability::from_bool(
                interner.render_class(va_id) == interner.render_class(vb_id),
            ),
            PairKind::MemberEq { family } => {
                let target = interner.render_class(va_id);
                let mut seen_any = false;
                for column in family {
                    if let Some(member) = column.value_id(i) {
                        seen_any = true;
                        if interner.render_class(member) == target {
                            return Applicability::Holds;
                        }
                    }
                }
                if seen_any {
                    Applicability::Violated
                } else {
                    Applicability::NotApplicable
                }
            }
            PairKind::BoolImplies => {
                match (
                    interner.value(va_id).as_bool(),
                    interner.value(vb_id).as_bool(),
                ) {
                    (Some(false), _) => Applicability::NotApplicable,
                    (Some(true), Some(y)) => Applicability::from_bool(y),
                    _ => Applicability::NotApplicable,
                }
            }
            PairKind::SubnetOf => subnet_of(interner.value(va_id), interner.value(vb_id)),
            PairKind::ConcatPath => {
                concat_path(interner.value(va_id), interner.value(vb_id), Some(image))
            }
            PairKind::SubstringOf => {
                match (
                    interner.value(va_id).as_str(),
                    interner.value(vb_id).as_str(),
                ) {
                    (Some(x), Some(y)) => Applicability::from_bool(!x.is_empty() && y.contains(x)),
                    _ => Applicability::NotApplicable,
                }
            }
            PairKind::InGroup => {
                in_group(interner.value(va_id), interner.value(vb_id), Some(image))
            }
            PairKind::NotAccessible => {
                not_accessible(interner.value(va_id), interner.value(vb_id), Some(image))
            }
            PairKind::Owns { owner } => {
                let user = match interner.value(vb_id).as_str() {
                    Some(u) => u,
                    None => return Applicability::NotApplicable,
                };
                // Prefer the assembled `.owner` column; a present cell
                // decides, an absent one falls through to the VFS — exactly
                // the row path's `get().filter(!absent)` behavior.
                if let Some(column) = owner {
                    if let Some(owner_id) = column.value_id(i) {
                        return Applicability::from_bool(interner.render_of(owner_id) == user);
                    }
                }
                let path = match interner.value(va_id).as_str() {
                    Some(p) => p,
                    None => return Applicability::NotApplicable,
                };
                match image.vfs().metadata(path) {
                    Some(meta) => Applicability::from_bool(meta.owner == user),
                    None => Applicability::NotApplicable,
                }
            }
            PairKind::LessNumeric => {
                match (
                    interner.value(va_id).as_number(),
                    interner.value(vb_id).as_number(),
                ) {
                    (Some(x), Some(y)) => Applicability::from_bool(x < y),
                    _ => Applicability::NotApplicable,
                }
            }
            PairKind::Unsupported => Applicability::NotApplicable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_model::SizeUnit;

    fn image() -> SystemImage {
        SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .user("nobody", 99, &["nobody"])
            .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
            .dir("/etc/httpd", "root", "root", 0o755)
            .file("/etc/httpd/modules/mod_mime.so", "root", "root", 0o755, "")
            .build()
    }

    fn row(image: &SystemImage) -> Row {
        let mut r = Row::new(image.id());
        r.set(
            AttrName::entry("datadir"),
            ConfigValue::path("/var/lib/mysql"),
        );
        r.set(
            AttrName::entry("datadir").augmented("owner"),
            ConfigValue::str("mysql"),
        );
        r.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        r.set(
            AttrName::entry("ServerRoot"),
            ConfigValue::path("/etc/httpd"),
        );
        r.set(
            AttrName::entry("LoadModule#0/arg2"),
            ConfigValue::path("modules/mod_mime.so"),
        );
        r.set(
            AttrName::entry("upload_max_filesize"),
            ConfigValue::size(2, SizeUnit::M),
        );
        r.set(
            AttrName::entry("post_max_size"),
            ConfigValue::size(8, SizeUnit::M),
        );
        r
    }

    #[test]
    fn owns_via_augmented_attribute() {
        let img = image();
        let r = row(&img);
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::Owns,
                &AttrName::entry("datadir"),
                &AttrName::entry("user"),
                view
            ),
            Applicability::Holds
        );
    }

    #[test]
    fn owns_violated_when_owner_differs() {
        let img = image();
        let mut r = row(&img);
        r.set(
            AttrName::entry("datadir").augmented("owner"),
            ConfigValue::str("root"),
        );
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::Owns,
                &AttrName::entry("datadir"),
                &AttrName::entry("user"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn absent_entry_is_not_applicable() {
        let img = image();
        let r = row(&img);
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::Owns,
                &AttrName::entry("missing"),
                &AttrName::entry("user"),
                view
            ),
            Applicability::NotApplicable
        );
    }

    #[test]
    fn concat_path_checks_vfs() {
        let img = image();
        let r = row(&img);
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::ConcatPath,
                &AttrName::entry("ServerRoot"),
                &AttrName::entry("LoadModule#0/arg2"),
                view
            ),
            Applicability::Holds
        );
        // break the fragment
        let mut r2 = row(&img);
        r2.set(
            AttrName::entry("LoadModule#0/arg2"),
            ConfigValue::path("modules/nope.so"),
        );
        let view2 = SystemView::new(&r2, &img);
        assert_eq!(
            evaluate(
                Relation::ConcatPath,
                &AttrName::entry("ServerRoot"),
                &AttrName::entry("LoadModule#0/arg2"),
                view2
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn size_ordering() {
        let img = image();
        let r = row(&img);
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::LessSize,
                &AttrName::entry("upload_max_filesize"),
                &AttrName::entry("post_max_size"),
                view
            ),
            Applicability::Holds
        );
        assert_eq!(
            evaluate(
                Relation::LessSize,
                &AttrName::entry("post_max_size"),
                &AttrName::entry("upload_max_filesize"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn in_group_membership() {
        let img = image();
        let mut r = row(&img);
        r.set(AttrName::entry("group"), ConfigValue::str("mysql"));
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::InGroup,
                &AttrName::entry("user"),
                &AttrName::entry("group"),
                view
            ),
            Applicability::Holds
        );
    }

    #[test]
    fn not_accessible_for_other_users() {
        let img = image();
        let mut r = row(&img);
        r.set(AttrName::entry("log_user"), ConfigValue::str("nobody"));
        let view = SystemView::new(&r, &img);
        // /var/lib/mysql is 0700 mysql:mysql — nobody cannot read it.
        assert_eq!(
            evaluate(
                Relation::NotAccessible,
                &AttrName::entry("datadir"),
                &AttrName::entry("log_user"),
                view
            ),
            Applicability::Holds
        );
        // but mysql can, so the relation is violated for mysql.
        assert_eq!(
            evaluate(
                Relation::NotAccessible,
                &AttrName::entry("datadir"),
                &AttrName::entry("user"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn subnet_matching() {
        let img = image();
        let mut r = row(&img);
        r.set(
            AttrName::entry("client"),
            ConfigValue::parse_ip("10.0.1.55").unwrap(),
        );
        r.set(AttrName::entry("allowed"), ConfigValue::str("10.0.1.0/24"));
        r.set(AttrName::entry("other"), ConfigValue::str("192.168.0.0/16"));
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::SubnetOf,
                &AttrName::entry("client"),
                &AttrName::entry("allowed"),
                view
            ),
            Applicability::Holds
        );
        assert_eq!(
            evaluate(
                Relation::SubnetOf,
                &AttrName::entry("client"),
                &AttrName::entry("other"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn bool_implication() {
        let img = image();
        let mut r = row(&img);
        r.set(
            AttrName::entry("FollowSymLinks"),
            ConfigValue::boolean(false),
        );
        r.set(
            AttrName::entry("DocumentRoot").augmented("hasSymLink"),
            ConfigValue::boolean(false),
        );
        let view = SystemView::new(&r, &img);
        // A false antecedent never exercises the implication — the system
        // is not applicable (association-rule semantics).
        assert_eq!(
            evaluate(
                Relation::ExtBoolImplies,
                &AttrName::entry("FollowSymLinks"),
                &AttrName::entry("DocumentRoot").augmented("hasSymLink"),
                view
            ),
            Applicability::NotApplicable
        );
        // A true antecedent requires the consequent.
        r.set(
            AttrName::entry("FollowSymLinks"),
            ConfigValue::boolean(true),
        );
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::ExtBoolImplies,
                &AttrName::entry("FollowSymLinks"),
                &AttrName::entry("DocumentRoot").augmented("hasSymLink"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn member_eq_over_occurrence_family() {
        let img = image();
        let mut r = row(&img);
        r.set(AttrName::entry("Listen#0"), ConfigValue::number(80.0));
        r.set(AttrName::entry("Listen#1"), ConfigValue::number(443.0));
        r.set(AttrName::entry("ServerPort"), ConfigValue::number(443.0));
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::MemberEq,
                &AttrName::entry("ServerPort"),
                &AttrName::entry("Listen#0"),
                view
            ),
            Applicability::Holds
        );
        r.set(AttrName::entry("ServerPort"), ConfigValue::number(8080.0));
        let view = SystemView::new(&r, &img);
        assert_eq!(
            evaluate(
                Relation::MemberEq,
                &AttrName::entry("ServerPort"),
                &AttrName::entry("Listen#0"),
                view
            ),
            Applicability::Violated
        );
    }

    #[test]
    fn strip_occurrence_variants() {
        assert_eq!(strip_occurrence("LoadModule#3"), "LoadModule");
        assert_eq!(strip_occurrence("LoadModule#3/arg2"), "LoadModule/arg2");
        assert_eq!(strip_occurrence("Plain"), "Plain");
    }

    /// Well-typed, applicable sample values for each relation (no augmented
    /// attributes, so `Owns` cannot take its row-only fallback).
    fn sample_values(relation: Relation) -> (ConfigValue, ConfigValue) {
        use crate::template::Relation as R;
        match relation {
            R::Equal | R::MemberEq => (ConfigValue::str("v"), ConfigValue::str("v")),
            R::ExtBoolImplies => (ConfigValue::boolean(true), ConfigValue::boolean(true)),
            R::SubnetOf => (
                ConfigValue::str("10.0.0.5"),
                ConfigValue::str("10.0.0.0/24"),
            ),
            R::ConcatPath => (
                ConfigValue::path("/etc/httpd"),
                ConfigValue::str("modules/mod_mime.so"),
            ),
            R::SubstringOf => (ConfigValue::str("ab"), ConfigValue::str("abc")),
            R::InGroup => (ConfigValue::str("mysql"), ConfigValue::str("mysql")),
            R::NotAccessible | R::Owns => (
                ConfigValue::path("/var/lib/mysql"),
                ConfigValue::str("mysql"),
            ),
            R::LessNum => (ConfigValue::number(1.0), ConfigValue::number(2.0)),
            R::LessSize => (
                ConfigValue::size(1, SizeUnit::M),
                ConfigValue::size(2, SizeUnit::M),
            ),
        }
    }

    /// Exhaustiveness pin: a relation's declared environment dependence must
    /// match its validator.  With both entries present and well-typed but no
    /// system image, env-dependent validators must abstain (NotApplicable)
    /// while row-level validators must decide (Holds/Violated).  If a new
    /// relation variant is added without updating `Relation::signature`,
    /// `sample_values` fails to compile first.
    #[test]
    fn signature_env_dependence_matches_validators() {
        for relation in Relation::ALL {
            let (va, vb) = sample_values(relation);
            let mut r = Row::new("pin");
            let a = AttrName::entry("alpha");
            let b = AttrName::entry("beta");
            r.set(a.clone(), va);
            r.set(b.clone(), vb);
            let outcome = evaluate(relation, &a, &b, SystemView::row_only(&r));
            if relation.signature().env_dependent {
                assert_eq!(
                    outcome,
                    Applicability::NotApplicable,
                    "{relation:?} declared env-dependent but decided without an image"
                );
            } else {
                assert_ne!(
                    outcome,
                    Applicability::NotApplicable,
                    "{relation:?} declared row-level but abstained on present values"
                );
            }
        }
    }
}
