//! Rule templates (§5.1, Table 6, Figures 4 and 6).
//!
//! A template is a relation pattern over *types*, not values: two typed
//! slots plus a relation.  The learner instantiates templates by filling the
//! slots with every eligible attribute pair, so a small set of templates
//! covers a wide range of concrete rules.
//!
//! Templates are written in a concise grammar mirroring the paper's:
//!
//! ```text
//! [A:FilePath] => [B:UserName]        # B owns A
//! [A:FilePath] + [B:PartialFilePath]  # A+B forms an existing path
//! [A:Size] < [B:Size]                 # A smaller than B
//! [A:UserName] in [B:GroupName]       # A belongs to B
//! [A:FilePath] != [B:UserName]        # A not accessible by B
//! ```
//!
//! As in the paper, "the operators carry different meanings for different
//! types" — the `(operator, slot types)` pair resolves to a [`Relation`].

use encore_model::SemType;
use std::fmt;

/// The relation kinds behind the 11 predefined templates of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Relation {
    /// `[A] == [B]` — equal values of the same type.
    Equal,
    /// `[A] =~ [B]` — some instance of the B entry family equals A.
    MemberEq,
    /// `[A] -> [B]` — boolean implication: A true ⇒ B true.
    ExtBoolImplies,
    /// `[A] < [B]` on IPAddress — A lies inside B's subnet.
    SubnetOf,
    /// `[A] + [B] =>` — concatenating A (FilePath) and B (PartialFilePath)
    /// yields a path that exists in the file system.
    ConcatPath,
    /// `[A] < [B]` on strings — A is a substring of B.
    SubstringOf,
    /// `[A] in [B]` — user A belongs to group B.
    InGroup,
    /// `[A] != [B]` — file path A is *not* accessible by user B.
    NotAccessible,
    /// `[A] => [B]` — user B owns file path A.
    Owns,
    /// `[A] < [B]` on numbers — A numerically less than B.
    LessNum,
    /// `[A] < [B]` on sizes — A smaller than B.
    LessSize,
}

/// The static type signature of a [`Relation`] — which slot-type pairs it
/// admits, whether it is commutative, and whether its validator needs the
/// system environment.
///
/// Signatures make templates *checkable*: an ill-typed template used to be
/// discovered only implicitly, by silently instantiating nothing after a
/// full pass over every attribute pair.  [`Template::validate`] rejects it
/// up front, and the `encore-check` analyzers turn violations into stable
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationSignature {
    /// The relation this signature describes.
    pub relation: Relation,
    /// Whether `rel(a, b)` and `rel(b, a)` are equivalent (only `Equal`).
    pub commutative: bool,
    /// Whether the validator consults the [`encore_sysimage::SystemImage`]
    /// (path existence, account membership, ownership, accessibility).
    pub env_dependent: bool,
    /// Whether a `[A:Str] op [B:Str]` spelling quantifies over *every* type
    /// with the pair constrained to matching types (`==` / `=~`, the
    /// paper's "an entry should equal another entry of the same type").
    pub same_type_generic: bool,
}

impl RelationSignature {
    /// Whether the relation admits slots typed `(a, b)`.
    pub fn admits(&self, a: SemType, b: SemType) -> bool {
        match self.relation {
            // Same-type equality over any type; the Str/Str spelling is the
            // generic quantifier (checked in `same_type_generic`).
            Relation::Equal | Relation::MemberEq => a == b,
            Relation::ExtBoolImplies => a == SemType::Boolean && b == SemType::Boolean,
            Relation::SubnetOf => a == SemType::IpAddress && b == SemType::IpAddress,
            Relation::ConcatPath => a == SemType::FilePath && b == SemType::PartialFilePath,
            Relation::SubstringOf => a == SemType::Str && b == SemType::Str,
            Relation::InGroup => a == SemType::UserName && b == SemType::GroupName,
            Relation::NotAccessible | Relation::Owns => {
                a == SemType::FilePath && b == SemType::UserName
            }
            // Plain numbers and ports compare; sizes have their own
            // template (comparing seconds against bytes is never a
            // correlation) — mirrors `infer::eligible`.
            Relation::LessNum => {
                matches!(a, SemType::Number | SemType::PortNumber)
                    && matches!(b, SemType::Number | SemType::PortNumber)
            }
            Relation::LessSize => a == SemType::Size && b == SemType::Size,
        }
    }

    /// Every `(a, b)` type pair the relation admits, in
    /// [`SemType::PRIORITY`] order.
    pub fn allowed_pairs(&self) -> Vec<(SemType, SemType)> {
        let mut out = Vec::new();
        for a in SemType::PRIORITY {
            for b in SemType::PRIORITY {
                if self.admits(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

impl Relation {
    /// Every relation variant, in Table 6 order.  Kept in sync with the
    /// enum by the exhaustiveness test below.
    pub const ALL: [Relation; 11] = [
        Relation::Equal,
        Relation::MemberEq,
        Relation::ExtBoolImplies,
        Relation::SubnetOf,
        Relation::ConcatPath,
        Relation::SubstringOf,
        Relation::InGroup,
        Relation::NotAccessible,
        Relation::Owns,
        Relation::LessNum,
        Relation::LessSize,
    ];

    /// Operator symbol used in the template grammar.
    pub fn symbol(self) -> &'static str {
        match self {
            Relation::Equal => "==",
            Relation::MemberEq => "=~",
            Relation::ExtBoolImplies => "->",
            Relation::SubnetOf => "<",
            Relation::ConcatPath => "+",
            Relation::SubstringOf => "<",
            Relation::InGroup => "in",
            Relation::NotAccessible => "!=",
            Relation::Owns => "=>",
            Relation::LessNum => "<",
            Relation::LessSize => "<",
        }
    }

    /// Human-readable description (matches Table 6).
    pub fn describe(self) -> &'static str {
        match self {
            Relation::Equal => "entry equals another entry of the same type",
            Relation::MemberEq => "one instance of an entry equals an instance of another entry",
            Relation::ExtBoolImplies => "boolean entry implies an extended boolean attribute",
            Relation::SubnetOf => "IP address is within the subnet of another entry",
            Relation::ConcatPath => "concatenation of path and partial path forms a file path",
            Relation::SubstringOf => "entry is a substring of another entry",
            Relation::InGroup => "user name belongs to the group name",
            Relation::NotAccessible => "file path is not accessible by the user in the entry",
            Relation::Owns => "user name entry is the owner of the file path entry",
            Relation::LessNum => "number in one entry is less than that of the other",
            Relation::LessSize => "size in one entry is smaller than that of the other",
        }
    }

    /// Parse the stable relation name used in rule files and reports
    /// (the `Debug`/`Display` rendering, e.g. `Owns`, `LessSize`).
    pub fn parse_name(s: &str) -> Option<Relation> {
        let canon = s.trim();
        Relation::ALL
            .into_iter()
            .find(|r| format!("{r:?}").eq_ignore_ascii_case(canon))
    }

    /// The static type signature of this relation.
    pub fn signature(self) -> RelationSignature {
        RelationSignature {
            relation: self,
            commutative: self == Relation::Equal,
            env_dependent: matches!(
                self,
                Relation::ConcatPath | Relation::InGroup | Relation::NotAccessible | Relation::Owns
            ),
            same_type_generic: matches!(self, Relation::Equal | Relation::MemberEq),
        }
    }

    /// Resolve `(operator, slot types)` to a relation — the paper's
    /// operator overloading (§5.3.2).
    pub fn resolve(op: &str, a: SemType, b: SemType) -> Option<Relation> {
        match op {
            "==" => Some(Relation::Equal),
            "=~" => Some(Relation::MemberEq),
            "->" => Some(Relation::ExtBoolImplies),
            "in" => Some(Relation::InGroup),
            "!=" => Some(Relation::NotAccessible),
            "=>" => Some(Relation::Owns),
            "+" => Some(Relation::ConcatPath),
            "<" => match (a, b) {
                (SemType::IpAddress, SemType::IpAddress) => Some(Relation::SubnetOf),
                (SemType::Size, SemType::Size) => Some(Relation::LessSize),
                _ if a.is_ordered() && b.is_ordered() => Some(Relation::LessNum),
                (SemType::Str, SemType::Str) => Some(Relation::SubstringOf),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// One typed template slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Slot {
    /// Slot label (`A`, `B`, ... — only used for display).
    pub label: char,
    /// The semantic type eligible attributes must carry.
    pub ty: SemType,
}

/// A template failed static type-checking against its relation signature.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateTypeError {
    /// The slot types are not admitted by the relation's signature.
    IllTyped {
        /// The offending template, rendered.
        template: String,
        /// The relation whose signature rejected the slots.
        relation: Relation,
        /// The offending slot types.
        slots: (SemType, SemType),
    },
    /// The per-template confidence override is outside `(0, 1]`.
    BadConfidence {
        /// The offending template, rendered.
        template: String,
        /// The out-of-range confidence.
        confidence: f64,
    },
}

impl fmt::Display for TemplateTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateTypeError::IllTyped {
                template,
                relation,
                slots,
            } => write!(
                f,
                "template `{template}` is ill-typed: {relation} does not relate {}/{} \
                 (allowed: {})",
                slots.0,
                slots.1,
                render_allowed(relation.signature())
            ),
            TemplateTypeError::BadConfidence {
                template,
                confidence,
            } => write!(
                f,
                "template `{template}` has confidence {confidence} outside (0, 1]"
            ),
        }
    }
}

impl std::error::Error for TemplateTypeError {}

/// Compact rendering of a signature's allowed pairs for error messages.
fn render_allowed(sig: RelationSignature) -> String {
    if sig.same_type_generic {
        return "T/T for any type T".to_string();
    }
    let pairs = sig.allowed_pairs();
    let mut shown: Vec<String> = pairs
        .iter()
        .take(4)
        .map(|(a, b)| format!("{a}/{b}"))
        .collect();
    if pairs.len() > 4 {
        shown.push("...".to_string());
    }
    shown.join(", ")
}

/// A rule template: two typed slots and a relation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Template {
    /// First slot (the paper's `A`).
    pub a: Slot,
    /// Second slot (the paper's `B`).
    pub b: Slot,
    /// The relation connecting them.
    pub relation: Relation,
    /// Optional per-template confidence override (Figure 6 allows
    /// `[A] < [B] -- 90%`); `None` uses the global threshold.
    pub min_confidence: Option<f64>,
}

impl Template {
    /// Create a template.
    pub fn new(a: SemType, relation: Relation, b: SemType) -> Template {
        Template {
            a: Slot { label: 'A', ty: a },
            b: Slot { label: 'B', ty: b },
            relation,
            min_confidence: None,
        }
    }

    /// Attach a per-template confidence threshold.
    pub fn with_min_confidence(mut self, c: f64) -> Template {
        self.min_confidence = Some(c);
        self
    }

    /// Statically type-check this template against its relation signature.
    ///
    /// `Template::new` stays infallible for API compatibility (and so the
    /// `encore-check` analyzers can construct known-bad templates to
    /// diagnose); [`Template::parse`] and the checking layer call this.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateTypeError`] when the slot types are not admitted
    /// by the relation or the confidence override is out of range.
    pub fn validate(&self) -> Result<(), TemplateTypeError> {
        if !self.relation.signature().admits(self.a.ty, self.b.ty) {
            return Err(TemplateTypeError::IllTyped {
                template: self.to_string(),
                relation: self.relation,
                slots: (self.a.ty, self.b.ty),
            });
        }
        if let Some(c) = self.min_confidence {
            if !(c > 0.0 && c <= 1.0) {
                return Err(TemplateTypeError::BadConfidence {
                    template: self.to_string(),
                    confidence: c,
                });
            }
        }
        Ok(())
    }

    /// The 11 predefined templates of Table 6.
    pub fn predefined() -> Vec<Template> {
        vec![
            // [A] == [B]: same-type equality (instantiated over Str).
            Template::new(SemType::Str, Relation::Equal, SemType::Str),
            // [A] =~ [B]: one instance equality (multi-occurrence entries).
            Template::new(SemType::Str, Relation::MemberEq, SemType::Str),
            // [A] -> [B]: extended boolean implication.
            Template::new(SemType::Boolean, Relation::ExtBoolImplies, SemType::Boolean),
            // [A] < [B]: IP subnet.
            Template::new(SemType::IpAddress, Relation::SubnetOf, SemType::IpAddress),
            // [A]+[B] =>: path concatenation exists.
            Template::new(
                SemType::FilePath,
                Relation::ConcatPath,
                SemType::PartialFilePath,
            ),
            // [A] < [B]: substring.
            Template::new(SemType::Str, Relation::SubstringOf, SemType::Str),
            // [A] in [B]: user in group.
            Template::new(SemType::UserName, Relation::InGroup, SemType::GroupName),
            // [A] != [B]: path not accessible by user.
            Template::new(
                SemType::FilePath,
                Relation::NotAccessible,
                SemType::UserName,
            ),
            // [A] => [B]: user owns path.
            Template::new(SemType::FilePath, Relation::Owns, SemType::UserName),
            // [A] < [B]: numeric ordering.
            Template::new(SemType::Number, Relation::LessNum, SemType::Number),
            // [A] < [B]: size ordering.
            Template::new(SemType::Size, Relation::LessSize, SemType::Size),
        ]
    }

    /// Parse the template grammar: `[A:Type] op [B:Type]` with an optional
    /// trailing `-- NN%` confidence, then type-check the result against the
    /// relation signature.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or type problem.  Use
    /// [`Template::parse_syntax`] to obtain the template without the type
    /// check (the `encore-check` linter does, so it can attach a stable
    /// diagnostic code instead of a hard error).
    pub fn parse(text: &str) -> Result<Template, String> {
        let t = Template::parse_syntax(text)?;
        t.validate().map_err(|e| e.to_string())?;
        Ok(t)
    }

    /// Parse the template grammar without the signature type check.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse_syntax(text: &str) -> Result<Template, String> {
        let (body, conf) = match text.split_once("--") {
            Some((b, c)) => {
                let pct = c.trim().trim_end_matches('%');
                let v: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad confidence `{}`", c.trim()))?;
                (b.trim(), Some(v / 100.0))
            }
            None => (text.trim(), None),
        };
        let parse_slot = |s: &str| -> Result<(char, SemType), String> {
            let inner = s
                .trim()
                .strip_prefix('[')
                .and_then(|x| x.strip_suffix(']'))
                .ok_or_else(|| format!("slot `{s}` must be bracketed"))?;
            let (label, ty) = inner
                .split_once(':')
                .ok_or_else(|| format!("slot `{inner}` must be `Label:Type`"))?;
            let label = label.trim().chars().next().ok_or("empty slot label")?;
            let ty =
                SemType::parse_name(ty).ok_or_else(|| format!("unknown type `{}`", ty.trim()))?;
            Ok((label, ty))
        };
        // Grammar: [A:T] OP [B:T] with an optional trailing `=>` marker for
        // the concatenation form `[A] + [B] =>`.
        let close = body.find(']').ok_or("missing `]`")?;
        let (slot_a, rest) = body.split_at(close + 1);
        let open = rest.find('[').ok_or("missing second slot")?;
        let (op, slot_b_and_tail) = rest.split_at(open);
        let close_b = slot_b_and_tail.rfind(']').ok_or("missing closing `]`")?;
        let (slot_b, tail) = slot_b_and_tail.split_at(close_b + 1);
        let tail = tail.trim();
        if !tail.is_empty() && tail != "=>" {
            return Err(format!("unexpected trailing `{tail}`"));
        }
        let (label_a, ty_a) = parse_slot(slot_a)?;
        let (label_b, ty_b) = parse_slot(slot_b)?;
        let op = op.trim();
        let relation = Relation::resolve(op, ty_a, ty_b)
            .ok_or_else(|| format!("operator `{op}` undefined for {ty_a}/{ty_b}"))?;
        let mut t = Template {
            a: Slot {
                label: label_a,
                ty: ty_a,
            },
            b: Slot {
                label: label_b,
                ty: ty_b,
            },
            relation,
            min_confidence: None,
        };
        if let Some(c) = conf {
            t = t.with_min_confidence(c);
        }
        Ok(t)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}] {} [{}:{}]",
            self.a.label,
            self.a.ty,
            self.relation.symbol(),
            self.b.label,
            self.b.ty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_count_matches_table_6() {
        assert_eq!(Template::predefined().len(), 11);
    }

    #[test]
    fn operator_overloading_by_type() {
        assert_eq!(
            Relation::resolve("<", SemType::Size, SemType::Size),
            Some(Relation::LessSize)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Number, SemType::Number),
            Some(Relation::LessNum)
        );
        assert_eq!(
            Relation::resolve("<", SemType::IpAddress, SemType::IpAddress),
            Some(Relation::SubnetOf)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Str, SemType::Str),
            Some(Relation::SubstringOf)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Boolean, SemType::Boolean),
            None
        );
    }

    #[test]
    fn parse_ownership_template() {
        let t = Template::parse("[A:FilePath] => [B:UserName]").unwrap();
        assert_eq!(t.relation, Relation::Owns);
        assert_eq!(t.a.ty, SemType::FilePath);
        assert_eq!(t.b.ty, SemType::UserName);
    }

    #[test]
    fn parse_with_confidence() {
        let t = Template::parse("[A:Size] < [B:Size] -- 90%").unwrap();
        assert_eq!(t.relation, Relation::LessSize);
        assert_eq!(t.min_confidence, Some(0.9));
    }

    #[test]
    fn parse_concat_template() {
        let t = Template::parse("[A:FilePath] + [B:PartialFilePath] =>").unwrap();
        assert_eq!(t.relation, Relation::ConcatPath);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Template::parse("[A:FilePath] ?? [B:UserName]").is_err());
        assert!(Template::parse("[A:NotAType] == [B:Str]").is_err());
        assert!(Template::parse("A == B").is_err());
        assert!(Template::parse("[A:Size] < [B:Size] -- lots").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for t in Template::predefined() {
            let shown = t.to_string();
            let back = Template::parse(&shown).expect(&shown);
            assert_eq!(back.relation, t.relation, "{shown}");
            assert_eq!(back.a.ty, t.a.ty);
            assert_eq!(back.b.ty, t.b.ty);
        }
    }

    #[test]
    fn all_lists_every_relation_once() {
        let mut seen = std::collections::HashSet::new();
        for r in Relation::ALL {
            assert!(seen.insert(r), "duplicate {r:?}");
        }
        // Exhaustiveness pin: resolving every operator over every type pair
        // must never produce a relation missing from ALL.
        for op in ["==", "=~", "->", "in", "!=", "=>", "+", "<"] {
            for a in SemType::PRIORITY {
                for b in SemType::PRIORITY {
                    if let Some(r) = Relation::resolve(op, a, b) {
                        assert!(seen.contains(&r), "{r:?} missing from Relation::ALL");
                    }
                }
            }
        }
    }

    #[test]
    fn relation_names_round_trip() {
        for r in Relation::ALL {
            assert_eq!(Relation::parse_name(&format!("{r:?}")), Some(r));
            assert_eq!(Relation::parse_name(&r.to_string()), Some(r));
        }
        assert_eq!(Relation::parse_name("NotARelation"), None);
    }

    #[test]
    fn signatures_agree_with_operator_resolution() {
        // Every admitted slot-type pair must resolve — through the paper's
        // operator overloading — back to the same relation, so the
        // signature table and `resolve` cannot drift apart.
        for r in Relation::ALL {
            let sig = r.signature();
            let pairs = sig.allowed_pairs();
            assert!(!pairs.is_empty(), "{r:?} admits no pairs");
            for (a, b) in pairs {
                assert_eq!(
                    Relation::resolve(r.symbol(), a, b),
                    Some(r),
                    "{r:?} admits {a}/{b} but `{}` does not resolve to it",
                    r.symbol()
                );
            }
        }
    }

    #[test]
    fn commutative_signatures_admit_symmetrically() {
        for r in Relation::ALL {
            let sig = r.signature();
            if sig.commutative {
                for (a, b) in sig.allowed_pairs() {
                    assert!(sig.admits(b, a), "{r:?} commutative but {b}/{a} rejected");
                }
            }
        }
    }

    #[test]
    fn predefined_templates_all_validate() {
        for t in Template::predefined() {
            t.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn ill_typed_templates_rejected_at_parse() {
        // `==` resolves for any types, but the signature demands same-type.
        let err = Template::parse("[A:Number] == [B:FilePath]").unwrap_err();
        assert!(err.contains("ill-typed"), "{err}");
        // `<` resolves Size/Number to LessNum, but the signature separates
        // sizes from plain numbers.
        assert!(Template::parse("[A:Size] < [B:Number]").is_err());
        // The syntax-only parser accepts both so linters can diagnose them.
        let t = Template::parse_syntax("[A:Number] == [B:FilePath]").unwrap();
        assert_eq!(t.relation, Relation::Equal);
        assert!(t.validate().is_err());
    }

    #[test]
    fn out_of_range_confidence_rejected() {
        let t = Template::new(SemType::Size, Relation::LessSize, SemType::Size)
            .with_min_confidence(1.5);
        assert!(matches!(
            t.validate(),
            Err(TemplateTypeError::BadConfidence { .. })
        ));
        assert!(Template::parse("[A:Size] < [B:Size] -- 150%").is_err());
    }
}
