//! Rule templates (§5.1, Table 6, Figures 4 and 6).
//!
//! A template is a relation pattern over *types*, not values: two typed
//! slots plus a relation.  The learner instantiates templates by filling the
//! slots with every eligible attribute pair, so a small set of templates
//! covers a wide range of concrete rules.
//!
//! Templates are written in a concise grammar mirroring the paper's:
//!
//! ```text
//! [A:FilePath] => [B:UserName]        # B owns A
//! [A:FilePath] + [B:PartialFilePath]  # A+B forms an existing path
//! [A:Size] < [B:Size]                 # A smaller than B
//! [A:UserName] in [B:GroupName]       # A belongs to B
//! [A:FilePath] != [B:UserName]        # A not accessible by B
//! ```
//!
//! As in the paper, "the operators carry different meanings for different
//! types" — the `(operator, slot types)` pair resolves to a [`Relation`].

use encore_model::SemType;
use std::fmt;

/// The relation kinds behind the 11 predefined templates of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Relation {
    /// `[A] == [B]` — equal values of the same type.
    Equal,
    /// `[A] =~ [B]` — some instance of the B entry family equals A.
    MemberEq,
    /// `[A] -> [B]` — boolean implication: A true ⇒ B true.
    ExtBoolImplies,
    /// `[A] < [B]` on IPAddress — A lies inside B's subnet.
    SubnetOf,
    /// `[A] + [B] =>` — concatenating A (FilePath) and B (PartialFilePath)
    /// yields a path that exists in the file system.
    ConcatPath,
    /// `[A] < [B]` on strings — A is a substring of B.
    SubstringOf,
    /// `[A] in [B]` — user A belongs to group B.
    InGroup,
    /// `[A] != [B]` — file path A is *not* accessible by user B.
    NotAccessible,
    /// `[A] => [B]` — user B owns file path A.
    Owns,
    /// `[A] < [B]` on numbers — A numerically less than B.
    LessNum,
    /// `[A] < [B]` on sizes — A smaller than B.
    LessSize,
}

impl Relation {
    /// Operator symbol used in the template grammar.
    pub fn symbol(self) -> &'static str {
        match self {
            Relation::Equal => "==",
            Relation::MemberEq => "=~",
            Relation::ExtBoolImplies => "->",
            Relation::SubnetOf => "<",
            Relation::ConcatPath => "+",
            Relation::SubstringOf => "<",
            Relation::InGroup => "in",
            Relation::NotAccessible => "!=",
            Relation::Owns => "=>",
            Relation::LessNum => "<",
            Relation::LessSize => "<",
        }
    }

    /// Human-readable description (matches Table 6).
    pub fn describe(self) -> &'static str {
        match self {
            Relation::Equal => "entry equals another entry of the same type",
            Relation::MemberEq => "one instance of an entry equals an instance of another entry",
            Relation::ExtBoolImplies => "boolean entry implies an extended boolean attribute",
            Relation::SubnetOf => "IP address is within the subnet of another entry",
            Relation::ConcatPath => "concatenation of path and partial path forms a file path",
            Relation::SubstringOf => "entry is a substring of another entry",
            Relation::InGroup => "user name belongs to the group name",
            Relation::NotAccessible => "file path is not accessible by the user in the entry",
            Relation::Owns => "user name entry is the owner of the file path entry",
            Relation::LessNum => "number in one entry is less than that of the other",
            Relation::LessSize => "size in one entry is smaller than that of the other",
        }
    }

    /// Resolve `(operator, slot types)` to a relation — the paper's
    /// operator overloading (§5.3.2).
    pub fn resolve(op: &str, a: SemType, b: SemType) -> Option<Relation> {
        match op {
            "==" => Some(Relation::Equal),
            "=~" => Some(Relation::MemberEq),
            "->" => Some(Relation::ExtBoolImplies),
            "in" => Some(Relation::InGroup),
            "!=" => Some(Relation::NotAccessible),
            "=>" => Some(Relation::Owns),
            "+" => Some(Relation::ConcatPath),
            "<" => match (a, b) {
                (SemType::IpAddress, SemType::IpAddress) => Some(Relation::SubnetOf),
                (SemType::Size, SemType::Size) => Some(Relation::LessSize),
                _ if a.is_ordered() && b.is_ordered() => Some(Relation::LessNum),
                (SemType::Str, SemType::Str) => Some(Relation::SubstringOf),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// One typed template slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Slot {
    /// Slot label (`A`, `B`, ... — only used for display).
    pub label: char,
    /// The semantic type eligible attributes must carry.
    pub ty: SemType,
}

/// A rule template: two typed slots and a relation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Template {
    /// First slot (the paper's `A`).
    pub a: Slot,
    /// Second slot (the paper's `B`).
    pub b: Slot,
    /// The relation connecting them.
    pub relation: Relation,
    /// Optional per-template confidence override (Figure 6 allows
    /// `[A] < [B] -- 90%`); `None` uses the global threshold.
    pub min_confidence: Option<f64>,
}

impl Template {
    /// Create a template.
    pub fn new(a: SemType, relation: Relation, b: SemType) -> Template {
        Template {
            a: Slot { label: 'A', ty: a },
            b: Slot { label: 'B', ty: b },
            relation,
            min_confidence: None,
        }
    }

    /// Attach a per-template confidence threshold.
    pub fn with_min_confidence(mut self, c: f64) -> Template {
        self.min_confidence = Some(c);
        self
    }

    /// The 11 predefined templates of Table 6.
    pub fn predefined() -> Vec<Template> {
        vec![
            // [A] == [B]: same-type equality (instantiated over Str).
            Template::new(SemType::Str, Relation::Equal, SemType::Str),
            // [A] =~ [B]: one instance equality (multi-occurrence entries).
            Template::new(SemType::Str, Relation::MemberEq, SemType::Str),
            // [A] -> [B]: extended boolean implication.
            Template::new(SemType::Boolean, Relation::ExtBoolImplies, SemType::Boolean),
            // [A] < [B]: IP subnet.
            Template::new(SemType::IpAddress, Relation::SubnetOf, SemType::IpAddress),
            // [A]+[B] =>: path concatenation exists.
            Template::new(
                SemType::FilePath,
                Relation::ConcatPath,
                SemType::PartialFilePath,
            ),
            // [A] < [B]: substring.
            Template::new(SemType::Str, Relation::SubstringOf, SemType::Str),
            // [A] in [B]: user in group.
            Template::new(SemType::UserName, Relation::InGroup, SemType::GroupName),
            // [A] != [B]: path not accessible by user.
            Template::new(
                SemType::FilePath,
                Relation::NotAccessible,
                SemType::UserName,
            ),
            // [A] => [B]: user owns path.
            Template::new(SemType::FilePath, Relation::Owns, SemType::UserName),
            // [A] < [B]: numeric ordering.
            Template::new(SemType::Number, Relation::LessNum, SemType::Number),
            // [A] < [B]: size ordering.
            Template::new(SemType::Size, Relation::LessSize, SemType::Size),
        ]
    }

    /// Parse the template grammar: `[A:Type] op [B:Type]` with an optional
    /// trailing `-- NN%` confidence.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(text: &str) -> Result<Template, String> {
        let (body, conf) = match text.split_once("--") {
            Some((b, c)) => {
                let pct = c.trim().trim_end_matches('%');
                let v: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad confidence `{}`", c.trim()))?;
                (b.trim(), Some(v / 100.0))
            }
            None => (text.trim(), None),
        };
        let parse_slot = |s: &str| -> Result<(char, SemType), String> {
            let inner = s
                .trim()
                .strip_prefix('[')
                .and_then(|x| x.strip_suffix(']'))
                .ok_or_else(|| format!("slot `{s}` must be bracketed"))?;
            let (label, ty) = inner
                .split_once(':')
                .ok_or_else(|| format!("slot `{inner}` must be `Label:Type`"))?;
            let label = label.trim().chars().next().ok_or("empty slot label")?;
            let ty =
                SemType::parse_name(ty).ok_or_else(|| format!("unknown type `{}`", ty.trim()))?;
            Ok((label, ty))
        };
        // Grammar: [A:T] OP [B:T] with an optional trailing `=>` marker for
        // the concatenation form `[A] + [B] =>`.
        let close = body.find(']').ok_or("missing `]`")?;
        let (slot_a, rest) = body.split_at(close + 1);
        let open = rest.find('[').ok_or("missing second slot")?;
        let (op, slot_b_and_tail) = rest.split_at(open);
        let close_b = slot_b_and_tail.rfind(']').ok_or("missing closing `]`")?;
        let (slot_b, tail) = slot_b_and_tail.split_at(close_b + 1);
        let tail = tail.trim();
        if !tail.is_empty() && tail != "=>" {
            return Err(format!("unexpected trailing `{tail}`"));
        }
        let (label_a, ty_a) = parse_slot(slot_a)?;
        let (label_b, ty_b) = parse_slot(slot_b)?;
        let op = op.trim();
        let relation = Relation::resolve(op, ty_a, ty_b)
            .ok_or_else(|| format!("operator `{op}` undefined for {ty_a}/{ty_b}"))?;
        let mut t = Template {
            a: Slot {
                label: label_a,
                ty: ty_a,
            },
            b: Slot {
                label: label_b,
                ty: ty_b,
            },
            relation,
            min_confidence: None,
        };
        if let Some(c) = conf {
            t = t.with_min_confidence(c);
        }
        Ok(t)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}] {} [{}:{}]",
            self.a.label,
            self.a.ty,
            self.relation.symbol(),
            self.b.label,
            self.b.ty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_count_matches_table_6() {
        assert_eq!(Template::predefined().len(), 11);
    }

    #[test]
    fn operator_overloading_by_type() {
        assert_eq!(
            Relation::resolve("<", SemType::Size, SemType::Size),
            Some(Relation::LessSize)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Number, SemType::Number),
            Some(Relation::LessNum)
        );
        assert_eq!(
            Relation::resolve("<", SemType::IpAddress, SemType::IpAddress),
            Some(Relation::SubnetOf)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Str, SemType::Str),
            Some(Relation::SubstringOf)
        );
        assert_eq!(
            Relation::resolve("<", SemType::Boolean, SemType::Boolean),
            None
        );
    }

    #[test]
    fn parse_ownership_template() {
        let t = Template::parse("[A:FilePath] => [B:UserName]").unwrap();
        assert_eq!(t.relation, Relation::Owns);
        assert_eq!(t.a.ty, SemType::FilePath);
        assert_eq!(t.b.ty, SemType::UserName);
    }

    #[test]
    fn parse_with_confidence() {
        let t = Template::parse("[A:Size] < [B:Size] -- 90%").unwrap();
        assert_eq!(t.relation, Relation::LessSize);
        assert_eq!(t.min_confidence, Some(0.9));
    }

    #[test]
    fn parse_concat_template() {
        let t = Template::parse("[A:FilePath] + [B:PartialFilePath] =>").unwrap();
        assert_eq!(t.relation, Relation::ConcatPath);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Template::parse("[A:FilePath] ?? [B:UserName]").is_err());
        assert!(Template::parse("[A:NotAType] == [B:Str]").is_err());
        assert!(Template::parse("A == B").is_err());
        assert!(Template::parse("[A:Size] < [B:Size] -- lots").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for t in Template::predefined() {
            let shown = t.to_string();
            let back = Template::parse(&shown).expect(&shown);
            assert_eq!(back.relation, t.relation, "{shown}");
            assert_eq!(back.a.ty, t.a.ty);
            assert_eq!(back.b.ty, t.b.ty);
        }
    }
}
