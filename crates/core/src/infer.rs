//! Template-guided rule inference (§5.1, Figure 5).
//!
//! For each template, the engine gathers the attributes whose type matches
//! each slot ("Find Eligible Attributes"), iterates over every slot
//! combination ("for each template: Compute Relation"), evaluates the
//! relation on every training system, and passes the resulting candidates
//! through the filters of §5.2 ("Rules").
//!
//! Type-based slot restriction is the scalability fix: instead of the
//! quadratic-in-all-attributes search that sinks FP-Growth (Table 3), each
//! template only touches the handful of attributes of the right types.
//! The instance computations share no state — "this process is highly
//! parallelizable" — so templates are evaluated on scoped worker threads
//! (crossbeam).

use crate::filter::{judge, FilterThresholds, RejectReason, Verdict};
use crate::relation::{evaluate, Applicability, SystemView};
use crate::rules::{Rule, RuleSet};
use crate::template::{Relation, Template};
use crate::train::TrainingSet;
use encore_model::{AttrName, SemType};
use std::collections::BTreeSet;

/// Statistics from an inference run — the raw numbers behind Tables 12/13.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Template instances whose relation was applicable somewhere.
    pub candidates: usize,
    /// Candidates surviving support+confidence but not entropy (counted
    /// only when the entropy filter is on).
    pub dropped_by_entropy: usize,
    /// Candidates dropped by the support filter.
    pub dropped_by_support: usize,
    /// Candidates dropped by the confidence filter.
    pub dropped_by_confidence: usize,
    /// Rules kept.
    pub kept: usize,
}

/// The rule-inference engine.
#[derive(Debug, Clone)]
pub struct RuleInference {
    templates: Vec<Template>,
}

impl RuleInference {
    /// Engine over a set of templates.
    pub fn new(templates: Vec<Template>) -> RuleInference {
        RuleInference { templates }
    }

    /// Engine over the 11 predefined templates.
    pub fn predefined() -> RuleInference {
        RuleInference::new(Template::predefined())
    }

    /// The templates in use.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Infer and filter rules from a training set.
    pub fn infer(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
    ) -> (RuleSet, InferenceStats) {
        let dataset = training.dataset();
        let attrs: Vec<AttrName> = dataset.attributes().into_iter().collect();

        // Evaluate templates in parallel; each worker returns its candidates.
        let chunks: Vec<Vec<Candidate>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .templates
                .iter()
                .map(|t| {
                    let attrs = &attrs;
                    let training = &training;
                    scope.spawn(move |_| instantiate_template(t, attrs, training))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("template worker panicked"))
                .collect()
        })
        .expect("crossbeam scope");

        let mut stats = InferenceStats::default();
        let mut rules = RuleSet::new();
        let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
        for cand in chunks.into_iter().flatten() {
            stats.candidates += 1;
            let key = (
                cand.rule.a.to_string(),
                format!("{:?}", cand.rule.relation),
                cand.rule.b.to_string(),
            );
            if !seen.insert(key) {
                stats.candidates -= 1; // duplicate instance across templates
                continue;
            }
            match judge(
                thresholds,
                &dataset,
                &cand.rule.a,
                &cand.rule.b,
                cand.rule.support,
                cand.rule.confidence,
                cand.template_min_confidence,
            ) {
                Verdict::Accept => {
                    stats.kept += 1;
                    rules.push(cand.rule);
                }
                Verdict::Reject(RejectReason::LowSupport) => stats.dropped_by_support += 1,
                Verdict::Reject(RejectReason::LowConfidence) => stats.dropped_by_confidence += 1,
                Verdict::Reject(RejectReason::LowEntropy) => stats.dropped_by_entropy += 1,
            }
        }
        (rules, stats)
    }

    /// Count, for every candidate surviving support+confidence, whether the
    /// entropy filter would drop it — the staged analysis behind Table 13.
    pub fn entropy_filter_effect(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
    ) -> EntropyEffect {
        let (with, _) = self.infer(training, thresholds);
        let (without, _) = self.infer(training, &(*thresholds).without_entropy());
        EntropyEffect {
            original: without.len(),
            after_entropy: with.len(),
        }
    }
}

/// Result of the staged entropy-filter analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyEffect {
    /// Rules admitted by support+confidence alone.
    pub original: usize,
    /// Rules remaining once the entropy filter also applies.
    pub after_entropy: usize,
}

impl EntropyEffect {
    /// How many rules the entropy filter removed.
    pub fn removed(&self) -> usize {
        self.original - self.after_entropy
    }
}

struct Candidate {
    rule: Rule,
    template_min_confidence: Option<f64>,
}

/// Attributes eligible for a slot type.
///
/// `Str` slots accept only genuinely string-typed attributes — allowing
/// every attribute in `Str` slots would reintroduce the quadratic blow-up
/// the type restriction exists to avoid.
fn eligible<'a>(
    attrs: &'a [AttrName],
    training: &TrainingSet,
    slot_ty: SemType,
) -> Vec<&'a AttrName> {
    attrs
        .iter()
        .filter(|a| {
            let ty = training.types().type_of(a);
            match slot_ty {
                // Plain numbers and ports compare; sizes have their own
                // template (comparing seconds against bytes is never a
                // correlation).
                SemType::Number => matches!(ty, SemType::Number | SemType::PortNumber),
                other => ty == other,
            }
        })
        .collect()
}

/// Whether a template is *same-type generic*: the paper's `==` and `=~`
/// templates read "an entry should equal another entry *of the same type*",
/// so a `[A:Str] == [B:Str]` spelling instantiates over every type, with the
/// pair constrained to matching types.
fn is_same_type_generic(template: &Template) -> bool {
    matches!(template.relation, Relation::Equal | Relation::MemberEq)
        && template.a.ty == SemType::Str
        && template.b.ty == SemType::Str
}

fn instantiate_template(
    template: &Template,
    attrs: &[AttrName],
    training: &TrainingSet,
) -> Vec<Candidate> {
    let generic = is_same_type_generic(template);
    let all: Vec<&AttrName> = attrs.iter().collect();
    let (eligible_a, eligible_b) = if generic {
        (all.clone(), all)
    } else {
        (
            eligible(attrs, training, template.a.ty),
            eligible(attrs, training, template.b.ty),
        )
    };
    let mut out = Vec::new();
    for &a in &eligible_a {
        for &b in &eligible_b {
            if a == b {
                continue;
            }
            // Rules must anchor on at least one original configuration
            // entry.  Augmented attributes of ownership-coupled paths form
            // large equivalence cliques (X.owner == Y.owner == ... for every
            // pair); the original-entry rules (X.owner == user, X => user)
            // already capture that structure without the quadratic echo.
            if !a.is_original() && !b.is_original() {
                continue;
            }
            // Ownership/accessibility rules bind the *user entry* itself
            // (the paper's `DataDir => user`); letting the user slot range
            // over augmented `.owner` mirrors re-derives each ownership
            // clique transitively.
            if matches!(
                template.relation,
                Relation::Owns | Relation::NotAccessible
            ) && !b.is_original()
            {
                continue;
            }
            if generic {
                let (ta, tb) = (training.types().type_of(a), training.types().type_of(b));
                // Same-type restriction, and equality over booleans/enums is
                // vacuous co-occurrence rather than correlation — skip it,
                // matching the spirit of the paper's type-based selection.
                if ta != tb || matches!(ta, SemType::Boolean | SemType::Enum) {
                    continue;
                }
                // Equality is symmetric: keep the canonical ordering only.
                if template.relation == Relation::Equal && a > b {
                    continue;
                }
                // `=~` quantifies over an entry *family* (occurrence-indexed
                // attributes like `LoadModule#n/arg1` or `Directory#n/section`);
                // a singleton B degenerates to `==`, so require a family.
                if template.relation == Relation::MemberEq && !b.base().contains('#') {
                    continue;
                }
            }
            // Owner relations between an entry and its own augmented
            // attribute are tautologies (datadir.owner always owns datadir);
            // skip same-base pairs for env-backed relations.
            if a.base() == b.base()
                && matches!(
                    template.relation,
                    Relation::Owns | Relation::Equal | Relation::MemberEq
                )
            {
                continue;
            }
            let mut holds = 0usize;
            let mut applicable = 0usize;
            for (row, image) in training.systems() {
                match evaluate(template.relation, a, b, SystemView::new(row, image)) {
                    Applicability::Holds => {
                        holds += 1;
                        applicable += 1;
                    }
                    Applicability::Violated => applicable += 1,
                    Applicability::NotApplicable => {}
                }
            }
            if applicable == 0 {
                continue;
            }
            let confidence = holds as f64 / applicable as f64;
            out.push(Candidate {
                rule: Rule::new(a.clone(), template.relation, b.clone(), applicable, confidence),
                template_min_confidence: template.min_confidence,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_model::AppKind;
    use encore_sysimage::SystemImage;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                // Vary datadir across images so entropy admits it.
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!("[mysqld]\nuser = mysql\ndatadir = {datadir}\n"),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn learns_ownership_rule() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        // `user` is constant across the fleet, so the entropy filter would
        // drop the rule — run without it, like the paper's Table 13 notes
        // for default-heavy template images.
        let (rules, stats) = engine.infer(&ts, &FilterThresholds::default().without_entropy());
        assert!(stats.kept > 0);
        assert!(
            rules
                .by_relation(Relation::Owns)
                .any(|r| r.a.to_string() == "datadir" && r.b.to_string() == "user"),
            "rules: {}",
            rules.render()
        );
    }

    #[test]
    fn entropy_filter_reduces_rule_count() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let effect = engine.entropy_filter_effect(&ts, &FilterThresholds::default());
        assert!(effect.original >= effect.after_entropy);
        assert!(effect.removed() > 0, "{effect:?}");
    }

    #[test]
    fn stats_attribute_drops() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let (_, stats) = engine.infer(&ts, &FilterThresholds::default());
        assert_eq!(
            stats.candidates,
            stats.kept
                + stats.dropped_by_support
                + stats.dropped_by_confidence
                + stats.dropped_by_entropy
        );
    }

    #[test]
    fn no_rule_relates_attribute_to_itself() {
        let images = fleet(8);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let (rules, _) = RuleInference::predefined()
            .infer(&ts, &FilterThresholds::default().without_entropy());
        assert!(rules.rules().iter().all(|r| r.a != r.b));
    }
}
