//! Template-guided rule inference (§5.1, Figure 5).
//!
//! For each template, the engine gathers the attributes whose type matches
//! each slot ("Find Eligible Attributes"), iterates over every slot
//! combination ("for each template: Compute Relation"), evaluates the
//! relation on every training system, and passes the resulting candidates
//! through the filters of §5.2 ("Rules").
//!
//! Type-based slot restriction is the scalability fix: instead of the
//! quadratic-in-all-attributes search that sinks FP-Growth (Table 3), each
//! template only touches the handful of attributes of the right types.
//! The instance computations share no state — "this process is highly
//! parallelizable" — so each template's eligible-A list is split into
//! `(template, a-chunk)` work units fed through the work-stealing pool in
//! [`crate::pool`]; chunk results are merged back in unit order, so the
//! learned [`RuleSet`] is byte-identical to a sequential run no matter how
//! many workers steal.  Per-attribute statistics (semantic types, value
//! entropies) are resolved once per run in a shared [`StatsCache`].
//!
//! Slot bindings are *indices* into the cache's sorted attribute list, and
//! the default evaluation path is *columnar*: each pair is tallied by a
//! `relation::PairEvaluator` scanning the interned value-id
//! columns of the [`StatsCache`]'s column store, with generic same-type
//! templates drawing their B partners from per-type attribute buckets
//! instead of filtering the full cross product.  The legacy row-major path
//! is kept behind [`InferOptions::without_columnar`] as the byte-identity
//! reference.

use crate::eligibility::{
    eligible_indices, is_same_type_generic, pair_considered, partner_indices,
};
use crate::filter::{judge, FilterThresholds, RejectReason, Verdict};
use crate::obs;
use crate::pool::{self, PoolError};
use crate::relation::{evaluate, Applicability, PairEvaluator, SystemView};
use crate::rules::{Rule, RuleSet};
use crate::stats::StatsCache;
use crate::template::Template;
use crate::train::TrainingSet;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::time::Instant;

/// Statistics from an inference run — the raw numbers behind Tables 12/13.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Template instances whose relation was applicable somewhere.
    pub candidates: usize,
    /// Candidates surviving support+confidence but not entropy (counted
    /// only when the entropy filter is on).
    pub dropped_by_entropy: usize,
    /// Candidates dropped by the support filter.
    pub dropped_by_support: usize,
    /// Candidates dropped by the confidence filter.
    pub dropped_by_confidence: usize,
    /// Rules kept.
    pub kept: usize,
}

/// A worker failed while instantiating templates.
///
/// Unlike the seed implementation — which `expect`ed its way through the
/// thread scope, so one malformed attribute aborted the whole
/// `EnCore::learn` — worker panics are caught per work unit and surfaced
/// through this recoverable error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// A worker panicked while processing the given work unit.
    WorkerPanicked {
        /// Index of the failing unit in the run's work list.
        unit: usize,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::WorkerPanicked { unit, message } => {
                write!(f, "inference worker panicked on unit {unit}: {message}")
            }
        }
    }
}

impl std::error::Error for InferError {}

impl From<PoolError> for InferError {
    fn from(e: PoolError) -> InferError {
        InferError::WorkerPanicked {
            unit: e.unit,
            message: e.message,
        }
    }
}

/// Tuning knobs for one inference run.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Worker threads for template instantiation; `None` uses
    /// [`std::thread::available_parallelism`].  `Some(1)` is the sequential
    /// reference the parallel path must reproduce byte-identically.
    pub workers: Option<usize>,
    /// Skip `(template, a-chunk)` work units that can instantiate nothing —
    /// decided via the [`StatsCache`] presence bitsets before pool
    /// dispatch.  Pruning is semantics-preserving (a dead unit contributes
    /// no candidates either way); disable it only to measure its effect or
    /// to cross-check determinism.
    pub prune_dead_units: bool,
    /// Evaluate pairs over the interned value-id columns (the default).
    /// `false` falls back to the row-major [`evaluate`] loop — the
    /// reference implementation the columnar path must reproduce
    /// byte-identically.
    pub columnar: bool,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            workers: None,
            prune_dead_units: true,
            columnar: true,
        }
    }
}

impl InferOptions {
    /// Options pinning the worker count.
    pub fn with_workers(workers: usize) -> InferOptions {
        InferOptions {
            workers: Some(workers),
            ..InferOptions::default()
        }
    }

    /// Disable dead-unit pruning (the unpruned reference the pruned path
    /// must reproduce byte-identically).
    pub fn without_pruning(mut self) -> InferOptions {
        self.prune_dead_units = false;
        self
    }

    /// Disable the columnar evaluator and tally every pair with the
    /// row-major reference loop.
    pub fn without_columnar(mut self) -> InferOptions {
        self.columnar = false;
        self
    }

    fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// Both judging outcomes of one single candidate-generation pass — the
/// Table 13 staged-filter analysis without inferring twice.
#[derive(Debug, Clone)]
pub struct DualInference {
    /// Rules and stats judged under the given thresholds with the entropy
    /// filter forced **on**.
    pub entropy_on: (RuleSet, InferenceStats),
    /// The same candidates judged with the entropy filter forced **off**
    /// (Table 13's "Original" column).
    pub entropy_off: (RuleSet, InferenceStats),
}

/// The rule-inference engine.
#[derive(Debug, Clone)]
pub struct RuleInference {
    templates: Vec<Template>,
}

impl RuleInference {
    /// Engine over a set of templates.
    pub fn new(templates: Vec<Template>) -> RuleInference {
        RuleInference { templates }
    }

    /// Engine over the 11 predefined templates.
    pub fn predefined() -> RuleInference {
        RuleInference::new(Template::predefined())
    }

    /// The templates in use.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Infer and filter rules from a training set.
    ///
    /// # Panics
    ///
    /// Panics if an inference worker panics; use [`RuleInference::try_infer`]
    /// to handle that recoverably.
    pub fn infer(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
    ) -> (RuleSet, InferenceStats) {
        self.try_infer(training, thresholds)
            .expect("inference worker panicked")
    }

    /// Infer and filter rules, surfacing worker panics as [`InferError`].
    ///
    /// # Errors
    ///
    /// Returns [`InferError::WorkerPanicked`] if any work unit panics.
    pub fn try_infer(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
    ) -> Result<(RuleSet, InferenceStats), InferError> {
        self.try_infer_with(training, thresholds, &InferOptions::default())
    }

    /// [`RuleInference::try_infer`] with explicit tuning options.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::WorkerPanicked`] if any work unit panics.
    pub fn try_infer_with(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
        options: &InferOptions,
    ) -> Result<(RuleSet, InferenceStats), InferError> {
        let cache = training.stats_cache();
        let candidates = self.collect_candidates(training, &cache, options)?;
        Ok(judge_candidates(&candidates, thresholds, &cache))
    }

    /// Judge one candidate pass under the given thresholds **and** their
    /// entropy-free variant — candidates are threshold-independent, so the
    /// Table 13 comparison needs only one instantiation sweep, not two.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::WorkerPanicked`] if any work unit panics.
    pub fn try_infer_dual(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
        options: &InferOptions,
    ) -> Result<DualInference, InferError> {
        let cache = training.stats_cache();
        let candidates = self.collect_candidates(training, &cache, options)?;
        let mut on = *thresholds;
        on.use_entropy = true;
        let off = on.without_entropy();
        Ok(DualInference {
            entropy_on: judge_candidates(&candidates, &on, &cache),
            entropy_off: judge_candidates(&candidates, &off, &cache),
        })
    }

    /// Count, for every candidate surviving support+confidence, whether the
    /// entropy filter would drop it — the staged analysis behind Table 13.
    /// Runs one inference pass and judges it under both filter settings.
    pub fn entropy_filter_effect(
        &self,
        training: &TrainingSet,
        thresholds: &FilterThresholds,
    ) -> EntropyEffect {
        let dual = self
            .try_infer_dual(training, thresholds, &InferOptions::default())
            .expect("inference worker panicked");
        EntropyEffect {
            original: dual.entropy_off.0.len(),
            after_entropy: dual.entropy_on.0.len(),
        }
    }

    /// Generate the (deduplicated, deterministically ordered) candidate
    /// list via the work-stealing pool.
    fn collect_candidates(
        &self,
        training: &TrainingSet,
        cache: &StatsCache,
        options: &InferOptions,
    ) -> Result<Vec<Candidate>, InferError> {
        if options.columnar {
            self.collect_candidates_via(training, cache, options, instantiate_unit_columnar)
        } else {
            self.collect_candidates_via(training, cache, options, instantiate_unit_rows)
        }
    }

    /// Worker seam: `run_unit` processes one `(template, a-chunk)` unit.
    /// Production passes [`instantiate_unit_columnar`] (or
    /// [`instantiate_unit_rows`] when the columnar path is disabled); tests
    /// substitute panicking closures to exercise error propagation through
    /// the real pipeline.
    fn collect_candidates_via<F>(
        &self,
        training: &TrainingSet,
        cache: &StatsCache,
        options: &InferOptions,
        run_unit: F,
    ) -> Result<Vec<Candidate>, InferError>
    where
        F: Fn(&WorkUnit<'_, '_>, &TrainingSet, &StatsCache) -> Vec<Candidate> + Sync,
    {
        let _span = obs::INFER_TIME.span();
        // Pipeline phases outside the per-unit loop get pseudo-rows in the
        // template table — `(plan)`, `(attribute)`, `(dedup)` — so the
        // table accounts for (almost) everything under `infer.time`, not
        // just instantiation (the ≥95% coverage invariant, DESIGN.md §16).
        let profiling = obs::profile::enabled();
        let plan_started = profiling.then(Instant::now);
        obs::INFER_TEMPLATES.add(self.templates.len() as u64);
        let works: Vec<TemplateWork<'_>> = self
            .templates
            .iter()
            .enumerate()
            .map(|(index, t)| TemplateWork::new(index, t, cache))
            .collect();
        let all_units: Vec<WorkUnit<'_, '_>> = works
            .iter()
            .flat_map(|work| {
                let len = work.eligible_a.len();
                (0..len.div_ceil(A_CHUNK)).map(move |chunk| WorkUnit {
                    work,
                    a_range: chunk * A_CHUNK..((chunk + 1) * A_CHUNK).min(len),
                })
            })
            .collect();
        obs::INFER_UNITS_TOTAL.add(all_units.len() as u64);
        let total_units = all_units.len();
        let units: Vec<WorkUnit<'_, '_>> = all_units
            .into_iter()
            .filter(|unit| !options.prune_dead_units || unit.is_live(cache))
            .collect();
        obs::INFER_UNITS_PRUNED.add((total_units - units.len()) as u64);
        if let Some(started) = plan_started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs::INFER_TEMPLATE_PROFILE.record("(plan)", nanos, &[("units", units.len() as u64)]);
        }
        let workers = options.resolved_workers();
        let chunks = pool::run_units(&units, workers, |unit| run_unit(unit, training, cache))?;
        let attribute_started = profiling.then(Instant::now);
        if obs::enabled() {
            // Attribute candidates to templates on the main thread, after
            // the pool returns, so the tallies are scheduling-independent.
            for (unit, chunk) in units.iter().zip(&chunks) {
                obs::INFER_CANDIDATES.add(chunk.len() as u64);
                for _ in chunk {
                    obs::INFER_CANDIDATES_BY_TEMPLATE.observe(unit.work.index as u64);
                }
            }
        }
        if let Some(started) = attribute_started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs::INFER_TEMPLATE_PROFILE.record("(attribute)", nanos, &[]);
        }
        let dedup_started = profiling.then(Instant::now);
        let deduped = dedup_candidates(chunks.into_iter().flatten());
        if let Some(started) = dedup_started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs::INFER_TEMPLATE_PROFILE.record(
                "(dedup)",
                nanos,
                &[("candidates", deduped.len() as u64)],
            );
        }
        Ok(deduped)
    }
}

/// Attributes per work unit: small enough that one quadratic template
/// shatters into many stealable units, large enough that scheduling noise
/// stays negligible next to the per-pair evaluation loop.
const A_CHUNK: usize = 8;

/// One template plus its eligible slot bindings — *indices* into the
/// cache's sorted attribute list — resolved once per run.
struct TemplateWork<'a> {
    /// Position in the run's template list (drives the per-template
    /// candidate histogram).
    index: usize,
    template: &'a Template,
    generic: bool,
    eligible_a: Vec<usize>,
    eligible_b: Vec<usize>,
    /// Union of the row-presence bitsets of every eligible-B attribute: a
    /// chunk of A attributes none of which is ever present alongside *any*
    /// eligible B cannot instantiate anything.
    b_presence: Vec<u64>,
}

impl<'a> TemplateWork<'a> {
    fn new(index: usize, template: &'a Template, cache: &StatsCache) -> TemplateWork<'a> {
        let generic = is_same_type_generic(template);
        let (eligible_a, eligible_b) = if generic {
            let all: Vec<usize> = (0..cache.attributes().len()).collect();
            (all.clone(), all)
        } else {
            (
                eligible_indices(cache, template.a.ty),
                eligible_indices(cache, template.b.ty),
            )
        };
        // The union stays over the *full* eligible-B set even for generic
        // templates (whose per-A partners narrow to a type bucket): liveness
        // only needs to be conservative, and keeping it bucket-independent
        // keeps pruning decisions identical to the pre-bucket enumeration.
        let store = cache.columns();
        let mut b_presence = vec![0u64; cache.num_rows().div_ceil(64)];
        for &bi in &eligible_b {
            for (acc, word) in b_presence.iter_mut().zip(store.column(bi).presence()) {
                *acc |= word;
            }
        }
        TemplateWork {
            index,
            template,
            generic,
            eligible_a,
            eligible_b,
            b_presence,
        }
    }
}

/// One stealable unit: a chunk of a template's eligible-A attributes.
struct WorkUnit<'a, 'w> {
    work: &'w TemplateWork<'a>,
    a_range: Range<usize>,
}

impl WorkUnit<'_, '_> {
    /// Whether any attribute in this unit's A-chunk ever co-occurs with any
    /// eligible B — a necessary condition for the unit to produce a
    /// candidate.  Dead units are dropped before pool dispatch; liveness is
    /// conservative (a live verdict may still instantiate nothing), so
    /// pruning never changes the learned rule set.
    fn is_live(&self, cache: &StatsCache) -> bool {
        let store = cache.columns();
        self.work.eligible_a[self.a_range.clone()]
            .iter()
            .any(|&ai| {
                store
                    .column(ai)
                    .presence()
                    .iter()
                    .zip(&self.work.b_presence)
                    .any(|(x, y)| x & y != 0)
            })
    }
}

/// Result of the staged entropy-filter analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyEffect {
    /// Rules admitted by support+confidence alone.
    pub original: usize,
    /// Rules remaining once the entropy filter also applies.
    pub after_entropy: usize,
}

impl EntropyEffect {
    /// How many rules the entropy filter removed.
    ///
    /// Saturates at zero: the two counts come from independently judged
    /// passes, and a caller-constructed (or future relaxed-filter) effect
    /// where `after_entropy > original` must not panic on underflow.
    pub fn removed(&self) -> usize {
        self.original.saturating_sub(self.after_entropy)
    }
}

#[derive(Debug)]
struct Candidate {
    rule: Rule,
    template_min_confidence: Option<f64>,
}

/// Drop duplicate template instances (the same `(a, relation, b)` can fall
/// out of several templates), keeping first-seen order.
fn dedup_candidates(candidates: impl IntoIterator<Item = Candidate>) -> Vec<Candidate> {
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for cand in candidates {
        let key = (
            cand.rule.a.to_string(),
            format!("{:?}", cand.rule.relation),
            cand.rule.b.to_string(),
        );
        if seen.insert(key) {
            out.push(cand);
        } else {
            dropped += 1;
        }
    }
    obs::INFER_CANDIDATES_DEDUPED.add(dropped);
    out
}

/// Run the §5.2 filters over a deduplicated candidate list.
fn judge_candidates(
    candidates: &[Candidate],
    thresholds: &FilterThresholds,
    cache: &StatsCache,
) -> (RuleSet, InferenceStats) {
    let _span = obs::FILTER_TIME.span();
    let mut stats = InferenceStats {
        candidates: candidates.len(),
        ..InferenceStats::default()
    };
    let mut rules = RuleSet::new();
    for cand in candidates {
        match judge(
            thresholds,
            cache,
            &cand.rule.a,
            &cand.rule.b,
            cand.rule.support,
            cand.rule.confidence,
            cand.template_min_confidence,
        ) {
            Verdict::Accept => {
                stats.kept += 1;
                rules.push(cand.rule.clone());
            }
            Verdict::Reject(RejectReason::LowSupport) => stats.dropped_by_support += 1,
            Verdict::Reject(RejectReason::LowConfidence) => stats.dropped_by_confidence += 1,
            Verdict::Reject(RejectReason::LowEntropy) => stats.dropped_by_entropy += 1,
        }
    }
    (rules, stats)
}

/// Flush one finished unit's self-time and work counts into the
/// per-template profile table.  `profiled` is the unit's start instant,
/// present only when the profiler was on at unit start; worker self-time
/// sums across the pool, so per-template totals cover the whole
/// instantiation loop (the ≥95%-of-`infer.time` invariant, DESIGN.md
/// §16).
fn finish_unit_profile(
    work: &TemplateWork<'_>,
    profiled: Option<Instant>,
    pairs_evaluated: u64,
    candidates: usize,
) {
    if let Some(started) = profiled {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        obs::INFER_TEMPLATE_PROFILE.record(
            &work.template.to_string(),
            nanos,
            &[
                ("pairs", pairs_evaluated),
                ("candidates", candidates as u64),
            ],
        );
    }
}

/// Row-major reference evaluator: tally each considered pair by walking
/// every training system through [`evaluate`].  Kept as the byte-identity
/// reference for [`instantiate_unit_columnar`].
fn instantiate_unit_rows(
    unit: &WorkUnit<'_, '_>,
    training: &TrainingSet,
    cache: &StatsCache,
) -> Vec<Candidate> {
    let work = unit.work;
    let template = work.template;
    let attrs = cache.attributes();
    // Self-time per unit, attributed to the unit's template when the
    // profiler is on (the decision is made here, once per unit, so the
    // per-pair loop below stays branch-free).
    let profiled = obs::profile::enabled().then(Instant::now);
    let mut out = Vec::new();
    // Tallied locally and flushed once per unit: one atomic add per unit
    // instead of one per pair across the worker pool.
    let mut pairs_evaluated = 0u64;
    for &ai in &work.eligible_a[unit.a_range.clone()] {
        let a = &attrs[ai];
        for &bi in partner_indices(cache, work.generic, &work.eligible_b, ai) {
            let b = &attrs[bi];
            // Structural filters (self-pairs, original-entry anchoring,
            // generic same-type restriction, symmetry canonicalization) —
            // shared with the eligibility analyzer in [`crate::eligibility`].
            if !pair_considered(template, work.generic, cache, a, b) {
                continue;
            }
            pairs_evaluated += 1;
            let mut holds = 0usize;
            let mut applicable = 0usize;
            for (row, image) in training.systems() {
                match evaluate(template.relation, a, b, SystemView::new(row, image)) {
                    Applicability::Holds => {
                        holds += 1;
                        applicable += 1;
                    }
                    Applicability::Violated => applicable += 1,
                    Applicability::NotApplicable => {}
                }
            }
            if applicable == 0 {
                continue;
            }
            let confidence = holds as f64 / applicable as f64;
            out.push(Candidate {
                rule: Rule::new(
                    a.clone(),
                    template.relation,
                    b.clone(),
                    applicable,
                    confidence,
                ),
                template_min_confidence: template.min_confidence,
            });
        }
    }
    obs::INFER_PAIRS_EVALUATED.add(pairs_evaluated);
    finish_unit_profile(work, profiled, pairs_evaluated, out.len());
    out
}

/// Columnar evaluator: the same pair enumeration as
/// [`instantiate_unit_rows`], but each pair is tallied by a
/// [`PairEvaluator`] over the interned value-id columns — presence gating
/// becomes a bitset intersection and `Equal`/`=~` become integer compares.
fn instantiate_unit_columnar(
    unit: &WorkUnit<'_, '_>,
    training: &TrainingSet,
    cache: &StatsCache,
) -> Vec<Candidate> {
    let work = unit.work;
    let template = work.template;
    let attrs = cache.attributes();
    let systems = training.systems();
    let profiled = obs::profile::enabled().then(Instant::now);
    let mut out = Vec::new();
    let mut pairs_evaluated = 0u64;
    for &ai in &work.eligible_a[unit.a_range.clone()] {
        let a = &attrs[ai];
        for &bi in partner_indices(cache, work.generic, &work.eligible_b, ai) {
            let b = &attrs[bi];
            if !pair_considered(template, work.generic, cache, a, b) {
                continue;
            }
            pairs_evaluated += 1;
            let (holds, applicable) =
                PairEvaluator::new(template.relation, cache, ai, bi).tally(systems);
            if applicable == 0 {
                continue;
            }
            let confidence = holds as f64 / applicable as f64;
            out.push(Candidate {
                rule: Rule::new(
                    a.clone(),
                    template.relation,
                    b.clone(),
                    applicable,
                    confidence,
                ),
                template_min_confidence: template.min_confidence,
            });
        }
    }
    obs::INFER_PAIRS_EVALUATED.add(pairs_evaluated);
    finish_unit_profile(work, profiled, pairs_evaluated, out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Relation;
    use encore_model::AppKind;
    use encore_sysimage::SystemImage;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                // Vary datadir across images so entropy admits it.
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!("[mysqld]\nuser = mysql\ndatadir = {datadir}\n"),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn learns_ownership_rule() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        // `user` is constant across the fleet, so the entropy filter would
        // drop the rule — run without it, like the paper's Table 13 notes
        // for default-heavy template images.
        let (rules, stats) = engine.infer(&ts, &FilterThresholds::default().without_entropy());
        assert!(stats.kept > 0);
        assert!(
            rules
                .by_relation(Relation::Owns)
                .any(|r| r.a.to_string() == "datadir" && r.b.to_string() == "user"),
            "rules: {}",
            rules.render()
        );
    }

    #[test]
    fn entropy_filter_reduces_rule_count() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let effect = engine.entropy_filter_effect(&ts, &FilterThresholds::default());
        assert!(effect.original >= effect.after_entropy);
        assert!(effect.removed() > 0, "{effect:?}");
    }

    #[test]
    fn stats_attribute_drops() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let (_, stats) = engine.infer(&ts, &FilterThresholds::default());
        assert_eq!(
            stats.candidates,
            stats.kept
                + stats.dropped_by_support
                + stats.dropped_by_confidence
                + stats.dropped_by_entropy
        );
    }

    #[test]
    fn no_rule_relates_attribute_to_itself() {
        let images = fleet(8);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let (rules, _) =
            RuleInference::predefined().infer(&ts, &FilterThresholds::default().without_entropy());
        assert!(rules.rules().iter().all(|r| r.a != r.b));
    }

    #[test]
    fn worker_counts_agree_with_sequential_reference() {
        let images = fleet(10);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let thresholds = FilterThresholds::default().without_entropy();
        let (reference, ref_stats) = engine
            .try_infer_with(&ts, &thresholds, &InferOptions::with_workers(1))
            .unwrap();
        for workers in [2, 4, 8] {
            let (rules, stats) = engine
                .try_infer_with(&ts, &thresholds, &InferOptions::with_workers(workers))
                .unwrap();
            assert_eq!(rules, reference, "workers={workers}");
            assert_eq!(rules.render(), reference.render(), "workers={workers}");
            assert_eq!(stats, ref_stats, "workers={workers}");
        }
    }

    #[test]
    fn dual_inference_matches_two_separate_runs() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let thresholds = FilterThresholds::default();
        let dual = engine
            .try_infer_dual(&ts, &thresholds, &InferOptions::default())
            .unwrap();
        let with = engine.infer(&ts, &thresholds);
        let without = engine.infer(&ts, &thresholds.without_entropy());
        assert_eq!(dual.entropy_on, with);
        assert_eq!(dual.entropy_off, without);
    }

    #[test]
    fn worker_panic_is_a_recoverable_error() {
        let images = fleet(6);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let cache = StatsCache::new(ts.dataset(), ts.types());
        let err = engine
            .collect_candidates_via(
                &ts,
                &cache,
                &InferOptions::with_workers(4),
                |_, _, _| -> Vec<Candidate> { panic!("malformed attribute") },
            )
            .expect_err("panicking workers must surface an error");
        let InferError::WorkerPanicked { message, .. } = err;
        assert!(message.contains("malformed attribute"));
        // The process (and this test) survived: the error is recoverable,
        // and a subsequent well-formed run still succeeds.
        assert!(engine.try_infer(&ts, &FilterThresholds::default()).is_ok());
    }

    #[test]
    fn dead_unit_pruning_is_invisible_in_output() {
        let images = fleet(10);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        let thresholds = FilterThresholds::default().without_entropy();
        let (unpruned, unpruned_stats) = engine
            .try_infer_with(
                &ts,
                &thresholds,
                &InferOptions::with_workers(1).without_pruning(),
            )
            .unwrap();
        for workers in [1, 2, 4] {
            let (pruned, stats) = engine
                .try_infer_with(&ts, &thresholds, &InferOptions::with_workers(workers))
                .unwrap();
            assert_eq!(pruned, unpruned, "workers={workers}");
            assert_eq!(pruned.render(), unpruned.render(), "workers={workers}");
            assert_eq!(stats, unpruned_stats, "workers={workers}");
        }
    }

    #[test]
    fn columnar_path_matches_row_reference() {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let engine = RuleInference::predefined();
        // Both filter settings, so entropy-sensitive f64s are compared too.
        for thresholds in [
            FilterThresholds::default(),
            FilterThresholds::default().without_entropy(),
        ] {
            let (rows, row_stats) = engine
                .try_infer_with(
                    &ts,
                    &thresholds,
                    &InferOptions::with_workers(1).without_columnar(),
                )
                .unwrap();
            for workers in [1, 2, 4] {
                let (cols, col_stats) = engine
                    .try_infer_with(&ts, &thresholds, &InferOptions::with_workers(workers))
                    .unwrap();
                assert_eq!(cols, rows, "workers={workers}");
                assert_eq!(cols.render(), rows.render(), "workers={workers}");
                assert_eq!(col_stats, row_stats, "workers={workers}");
            }
        }
    }

    #[test]
    fn entropy_effect_removed_saturates_instead_of_panicking() {
        // Regression: `removed()` used unchecked subtraction and panicked on
        // underflow for caller-constructed effects.
        let effect = EntropyEffect {
            original: 3,
            after_entropy: 10,
        };
        assert_eq!(effect.removed(), 0);
        let normal = EntropyEffect {
            original: 10,
            after_entropy: 3,
        };
        assert_eq!(normal.removed(), 7);
    }
}
