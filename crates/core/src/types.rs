//! The attribute type map: merged per-entry types across the training set.
//!
//! Type inference runs per system; types can disagree across systems (a
//! path exists on one image and not another).  The trainer merges them by
//! majority vote, preferring non-trivial types on ties — the stored "type
//! information inferred from the training set" that both the rule learner
//! and the anomaly detector consume (§4.2, §6).

use encore_model::{AttrName, Augmentation, SemType};
use std::collections::BTreeMap;

/// Semantic type of every attribute seen in training.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeMap {
    types: BTreeMap<AttrName, SemType>,
}

/// The fixed types of Table 5a's augmented attributes, keyed by suffix.
pub fn augmented_suffix_type(suffix: &str) -> SemType {
    match suffix {
        "owner" => SemType::UserName,
        "group" | "isGroup" => SemType::GroupName,
        "type" => SemType::Enum,
        "permission" => SemType::Permission,
        "contents" => SemType::Str,
        "hasDir" | "hasSymLink" | "secDenied" | "Local" | "IPv6" | "AnyAddr" | "isRootGroup"
        | "isAdmin" => SemType::Boolean,
        _ => SemType::Str,
    }
}

/// Types of the system-wide attributes of Table 5b, keyed by name.
pub fn system_attr_type(name: &str) -> SemType {
    match name {
        "Sys.IPAddress" => SemType::IpAddress,
        "CPU.Threads" | "CPU.Freq" | "MemSize" | "HDD.AvailSpace" => SemType::Number,
        _ => SemType::Str,
    }
}

impl TypeMap {
    /// An empty map.
    pub fn new() -> TypeMap {
        TypeMap::default()
    }

    /// Merge per-system inferred types for the *original* entries by
    /// majority vote (ties broken toward the more specific type, i.e. the
    /// earlier entry in [`SemType::PRIORITY`]).
    pub fn merge_votes(votes: &BTreeMap<AttrName, Vec<SemType>>) -> TypeMap {
        let mut types = BTreeMap::new();
        for (attr, tys) in votes {
            let mut counts: BTreeMap<SemType, usize> = BTreeMap::new();
            for t in tys {
                *counts.entry(*t).or_insert(0) += 1;
            }
            let winner = counts
                .iter()
                .max_by_key(|(ty, count)| {
                    let specificity = SemType::PRIORITY.len()
                        - SemType::PRIORITY
                            .iter()
                            .position(|p| p == *ty)
                            .unwrap_or(SemType::PRIORITY.len());
                    (**count, specificity)
                })
                .map(|(ty, _)| *ty)
                .unwrap_or(SemType::Str);
            types.insert(attr.clone(), winner);
        }
        TypeMap { types }
    }

    /// Set the type of an attribute explicitly.
    pub fn set(&mut self, attr: AttrName, ty: SemType) {
        self.types.insert(attr, ty);
    }

    /// The type of an attribute.
    ///
    /// Original entries answer from the merged votes; augmented attributes
    /// answer from the fixed Table 5a/5b assignments, so the map never needs
    /// to store them.
    pub fn type_of(&self, attr: &AttrName) -> SemType {
        if let Some(t) = self.types.get(attr) {
            return *t;
        }
        match attr.augmentation() {
            Augmentation::EnvProperty => augmented_suffix_type(attr.suffix().unwrap_or_default()),
            Augmentation::SystemWide => system_attr_type(attr.base()),
            Augmentation::Original => SemType::Str,
        }
    }

    /// Iterate the explicitly stored (original-entry) types.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &SemType)> {
        self.types.iter()
    }

    /// Render the stored types, one `attr\ttype` line each, with attributes
    /// in the unambiguous tagged encoding ([`AttrName::render_tagged`]) so
    /// dotted entry names survive a round-trip.  Used by detector
    /// snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (attr, ty) in &self.types {
            out.push_str(&attr.render_tagged());
            out.push('\t');
            out.push_str(ty.name());
            out.push('\n');
        }
        out
    }

    /// Parse lines rendered by [`TypeMap::render`].  Blank lines and `#`
    /// comments are skipped.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and description of the first
    /// malformed line.
    pub fn parse(text: &str) -> Result<TypeMap, String> {
        let mut map = TypeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let (attr, ty) = line
                .split_once('\t')
                .ok_or_else(|| format!("line {}: expected `attr\\ttype`", i + 1))?;
            let attr = AttrName::parse_tagged(attr).map_err(|e| format!("line {}: {e}", i + 1))?;
            let ty = SemType::parse_name(ty.trim())
                .ok_or_else(|| format!("line {}: unknown type `{ty}`", i + 1))?;
            map.set(attr, ty);
        }
        Ok(map)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_wins() {
        let mut votes = BTreeMap::new();
        votes.insert(
            AttrName::entry("datadir"),
            vec![SemType::FilePath, SemType::FilePath, SemType::Str],
        );
        let map = TypeMap::merge_votes(&votes);
        assert_eq!(map.type_of(&AttrName::entry("datadir")), SemType::FilePath);
    }

    #[test]
    fn tie_prefers_specific_type() {
        let mut votes = BTreeMap::new();
        votes.insert(AttrName::entry("x"), vec![SemType::FilePath, SemType::Str]);
        let map = TypeMap::merge_votes(&votes);
        assert_eq!(map.type_of(&AttrName::entry("x")), SemType::FilePath);
    }

    #[test]
    fn augmented_types_are_fixed() {
        let map = TypeMap::new();
        let datadir = AttrName::entry("datadir");
        assert_eq!(map.type_of(&datadir.augmented("owner")), SemType::UserName);
        assert_eq!(
            map.type_of(&datadir.augmented("hasSymLink")),
            SemType::Boolean
        );
        assert_eq!(
            map.type_of(&datadir.augmented("permission")),
            SemType::Permission
        );
        assert_eq!(
            map.type_of(&AttrName::system("Sys.IPAddress")),
            SemType::IpAddress
        );
        assert_eq!(map.type_of(&AttrName::system("MemSize")), SemType::Number);
    }

    #[test]
    fn render_parse_round_trips_dotted_entries() {
        let mut map = TypeMap::new();
        map.set(AttrName::entry("datadir"), SemType::FilePath);
        map.set(AttrName::entry("session.use_cookies"), SemType::Boolean);
        map.set(AttrName::entry("user"), SemType::UserName);
        let back = TypeMap::parse(&map.render()).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.render(), map.render());
        assert!(TypeMap::parse("no-tab-here").is_err());
        assert!(TypeMap::parse("O:x\tNotAType").is_err());
    }

    #[test]
    fn unknown_original_defaults_to_str() {
        let map = TypeMap::new();
        assert_eq!(map.type_of(&AttrName::entry("nonesuch")), SemType::Str);
    }
}
