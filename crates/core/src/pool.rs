//! A small work-stealing worker pool for embarrassingly parallel units.
//!
//! The paper notes of template instantiation that the instance computations
//! "share no state — this process is highly parallelizable" (§5.1).  The
//! pool runs a slice of work units on `workers` scoped threads which pull
//! the next unprocessed unit from a shared atomic cursor, so a handful of
//! expensive units (one quadratic generic-equality template, say) cannot
//! strand the other workers idle the way one-thread-per-template
//! parallelism did.
//!
//! Results are returned **in unit order** regardless of which worker ran
//! which unit, so callers get output byte-identical to a sequential pass.
//! A panicking unit is caught and surfaced as a [`PoolError`] instead of
//! poisoning the process.

use crate::obs::{Counter, Gauge, Timer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The instruments a pool run reports into.
///
/// The pool is shared by the `infer` phase (template instantiation) and the
/// `detect` phase (fleet checking); each caller hands the pool its own
/// phase's statics so the two workloads stay separate in the
/// [`crate::obs::pipeline_report`] roll-up.
#[derive(Debug, Clone, Copy)]
pub struct PoolMetrics {
    /// Units handed to the pool (counter: scheduling-independent work).
    pub units_run: &'static Counter,
    /// Worker threads of the last run (gauge: scheduling-dependent).
    pub workers: &'static Gauge,
    /// Units run by the busiest worker of the last run.
    pub busiest_worker_units: &'static Gauge,
    /// Units run by the idlest worker of the last run.
    pub idlest_worker_units: &'static Gauge,
    /// Units that landed on workers other than worker 0 in the last run.
    pub stolen_units: &'static Gauge,
    /// Per-worker busy time inside the pool loop.
    pub worker_busy: &'static Timer,
}

/// A worker panicked while processing a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the failing unit.
    pub unit: usize,
    /// The panic payload, rendered.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked on unit {}: {}", self.unit, self.message)
    }
}

impl std::error::Error for PoolError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over every unit on up to `workers` threads, reporting into the
/// `infer` phase's pool instruments (the historical default).
///
/// # Errors
///
/// Returns the first (lowest-index) [`PoolError`] if any unit panics; the
/// remaining units still run to completion.
pub fn run_units<U, O, F>(units: &[U], workers: usize, f: F) -> Result<Vec<O>, PoolError>
where
    U: Sync,
    O: Send,
    F: Fn(&U) -> O + Sync,
{
    run_units_observed(units, workers, &crate::obs::INFER_POOL_METRICS, f)
}

/// Run `f` over every unit on up to `workers` threads, returning the
/// results in unit order and reporting into the given instruments.
///
/// # Errors
///
/// Returns the first (lowest-index) [`PoolError`] if any unit panics; the
/// remaining units still run to completion.
pub fn run_units_observed<U, O, F>(
    units: &[U],
    workers: usize,
    metrics: &PoolMetrics,
    f: F,
) -> Result<Vec<O>, PoolError>
where
    U: Sync,
    O: Send,
    F: Fn(&U) -> O + Sync,
{
    let workers = workers.clamp(1, units.len().max(1));
    metrics.units_run.add(units.len() as u64);
    metrics.workers.set(workers as u64);
    let run_one = |index: usize| -> (usize, Result<O, String>) {
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&units[index]))).map_err(panic_message);
        (index, outcome)
    };

    let mut tagged: Vec<(usize, Result<O, String>)> = if workers <= 1 {
        metrics.busiest_worker_units.set(units.len() as u64);
        metrics.idlest_worker_units.set(units.len() as u64);
        metrics.stolen_units.set(0);
        let _busy = metrics.worker_busy.span();
        (0..units.len()).map(run_one).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<O, String>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _busy = metrics.worker_busy.span();
                        let mut local = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= units.len() {
                                break;
                            }
                            local.push(run_one(index));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // Unit panics are caught inside run_one; a worker thread
                    // can only panic through harness bugs, which we surface
                    // as an empty contribution judged below by the
                    // completeness check.
                    h.join().unwrap_or_default()
                })
                .collect()
        });
        if crate::obs::enabled() {
            let loads: Vec<u64> = per_worker.iter().map(|w| w.len() as u64).collect();
            metrics
                .busiest_worker_units
                .set(loads.iter().copied().max().unwrap_or(0));
            metrics
                .idlest_worker_units
                .set(loads.iter().copied().min().unwrap_or(0));
            // Units that landed anywhere but worker 0 — what the stealing
            // actually spread.  Scheduling-dependent, hence a gauge.
            metrics.stolen_units.set(loads.iter().skip(1).sum::<u64>());
        }
        per_worker.into_iter().flatten().collect()
    };

    tagged.sort_by_key(|(index, _)| *index);
    if tagged.len() != units.len() {
        return Err(PoolError {
            unit: tagged.len(),
            message: "worker thread died without reporting".to_string(),
        });
    }
    let mut out = Vec::with_capacity(units.len());
    for (index, result) in tagged {
        match result {
            Ok(v) => out.push(v),
            Err(message) => {
                return Err(PoolError {
                    unit: index,
                    message,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_unit_order_across_worker_counts() {
        let units: Vec<usize> = (0..103).collect();
        let reference: Vec<usize> = units.iter().map(|u| u * 3).collect();
        for workers in [1, 2, 4, 8, 16] {
            let got = run_units(&units, workers, |u| u * 3).expect("no panics");
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn empty_units_is_fine() {
        let got: Vec<usize> = run_units(&[] as &[usize], 4, |u| *u).expect("empty");
        assert!(got.is_empty());
    }

    #[test]
    fn panics_become_errors_with_unit_index() {
        let units: Vec<usize> = (0..20).collect();
        for workers in [1, 4] {
            let err = run_units(&units, workers, |&u| {
                if u == 7 {
                    panic!("unit seven is cursed");
                }
                u
            })
            .expect_err("must fail");
            assert_eq!(err.unit, 7, "workers={workers}");
            assert!(err.message.contains("cursed"), "{err}");
        }
    }

    #[test]
    fn first_failing_unit_wins() {
        let units: Vec<usize> = (0..50).collect();
        let err = run_units(&units, 8, |&u| {
            if u % 13 == 12 {
                panic!("boom {u}");
            }
            u
        })
        .expect_err("must fail");
        assert_eq!(err.unit, 12);
    }
}
