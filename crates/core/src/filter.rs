//! Rule filtering (§5.2): support, confidence, and the entropy filter.
//!
//! Three metrics prune false rules from the template search:
//!
//! * **support** — in how many systems the candidate was applicable,
//! * **confidence** — the fraction of applicable systems where it held,
//! * **entropy** — Shannon entropy of each involved attribute's value
//!   distribution; attributes that "seldomly change" carry no signal and
//!   rules over them are likely noise.
//!
//! The filter reports *why* each candidate was dropped so Table 13's
//! staged-filter analysis can be regenerated.

use crate::stats::StatsCache;
use encore_mining::metrics::{entropy, DEFAULT_ENTROPY_THRESHOLD};
use encore_model::{AttrName, Dataset};

/// Thresholds for rule admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterThresholds {
    /// Minimum fraction of training systems where the rule is applicable
    /// (the paper uses 10% of the image count, §7.3).
    pub min_support_fraction: f64,
    /// Minimum confidence (the paper uses 90%).
    pub min_confidence: f64,
    /// Entropy threshold `Ht` each involved attribute must exceed
    /// (the paper uses 0.325 — a 90/10 two-value split).
    pub entropy_threshold: f64,
    /// Whether the entropy filter is applied (disabled for the "Original"
    /// column of Table 13).
    pub use_entropy: bool,
}

impl Default for FilterThresholds {
    fn default() -> Self {
        FilterThresholds {
            min_support_fraction: 0.10,
            min_confidence: 0.90,
            entropy_threshold: DEFAULT_ENTROPY_THRESHOLD,
            use_entropy: true,
        }
    }
}

impl FilterThresholds {
    /// The paper's §7.3 thresholds.
    pub fn paper() -> FilterThresholds {
        FilterThresholds::default()
    }

    /// Same thresholds but with the entropy filter off (Table 13's
    /// "Original" rule counts).
    pub fn without_entropy(mut self) -> FilterThresholds {
        self.use_entropy = false;
        self
    }

    /// Sanity-check the thresholds — a support fraction or confidence
    /// outside `[0, 1]`, or a negative/non-finite entropy threshold, silently
    /// admits everything or nothing.  `encore-lint` surfaces violations as
    /// diagnostics before a run is wasted on them.
    ///
    /// # Errors
    ///
    /// Returns one message per out-of-range field.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if !(0.0..=1.0).contains(&self.min_support_fraction) {
            problems.push(format!(
                "min_support_fraction {} outside [0, 1]",
                self.min_support_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.min_confidence) {
            problems.push(format!(
                "min_confidence {} outside [0, 1]",
                self.min_confidence
            ));
        }
        if !self.entropy_threshold.is_finite() || self.entropy_threshold < 0.0 {
            problems.push(format!(
                "entropy_threshold {} is not a finite non-negative value",
                self.entropy_threshold
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// Why a candidate rule was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Applicable in too few systems.
    LowSupport,
    /// Held in too few of the applicable systems.
    LowConfidence,
    /// An involved attribute's value distribution is below `Ht`.
    LowEntropy,
}

/// Verdict for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep the rule.
    Accept,
    /// Drop it, for this reason.
    Reject(RejectReason),
}

/// Entropy of an attribute's value distribution in a dataset.
///
/// Reference (uncached) computation; the inference path goes through
/// [`StatsCache::entropy`], which memoizes this per attribute per run.
pub fn attribute_entropy(dataset: &Dataset, attr: &AttrName) -> f64 {
    entropy(dataset.value_histogram(attr).into_values())
}

/// Judge one candidate rule against the statistics of one training run.
///
/// `support` and `confidence` come from the inference pass;
/// `template_min_confidence` optionally overrides the global confidence
/// threshold (Figure 6's `-- 90%` syntax).  Entropies are read through the
/// [`StatsCache`] so candidates sharing an attribute don't recompute its
/// value histogram.
pub fn judge(
    thresholds: &FilterThresholds,
    stats: &StatsCache,
    a: &AttrName,
    b: &AttrName,
    support: usize,
    confidence: f64,
    template_min_confidence: Option<f64>,
) -> Verdict {
    let min_support = (thresholds.min_support_fraction * stats.num_rows() as f64).ceil() as usize;
    if support < min_support.max(1) {
        crate::obs::FILTER_REJECTED_SUPPORT.incr();
        return Verdict::Reject(RejectReason::LowSupport);
    }
    let min_conf = template_min_confidence.unwrap_or(thresholds.min_confidence);
    if confidence < min_conf {
        crate::obs::FILTER_REJECTED_CONFIDENCE.incr();
        return Verdict::Reject(RejectReason::LowConfidence);
    }
    if thresholds.use_entropy {
        // "For a rule to be included, all the involved attributes need to be
        // included", i.e. each must have H > Ht (§5.2).
        for attr in [a, b] {
            if stats.entropy(attr) <= thresholds.entropy_threshold {
                crate::obs::FILTER_REJECTED_ENTROPY.incr();
                return Verdict::Reject(RejectReason::LowEntropy);
            }
        }
    }
    crate::obs::FILTER_ACCEPTED.incr();
    Verdict::Accept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeMap;
    use encore_model::{ConfigValue, Row};

    /// Dataset where `varied` takes many values and `fixed` only one.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..10 {
            let mut r = Row::new(format!("s{i}"));
            r.set(AttrName::entry("varied"), ConfigValue::str(format!("v{i}")));
            r.set(AttrName::entry("fixed"), ConfigValue::str("10"));
            r.set(
                AttrName::entry("half"),
                ConfigValue::str(if i < 5 { "x" } else { "y" }),
            );
            ds.push_row(r);
        }
        ds
    }

    fn cache() -> StatsCache {
        StatsCache::new(dataset(), &TypeMap::new())
    }

    #[test]
    fn entropy_filter_drops_stable_attributes() {
        let stats = cache();
        let t = FilterThresholds::default();
        let v = judge(
            &t,
            &stats,
            &AttrName::entry("fixed"),
            &AttrName::entry("varied"),
            10,
            1.0,
            None,
        );
        assert_eq!(v, Verdict::Reject(RejectReason::LowEntropy));
        let v = judge(
            &t,
            &stats,
            &AttrName::entry("half"),
            &AttrName::entry("varied"),
            10,
            1.0,
            None,
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn disabling_entropy_admits_stable_attributes() {
        let stats = cache();
        let t = FilterThresholds::default().without_entropy();
        let v = judge(
            &t,
            &stats,
            &AttrName::entry("fixed"),
            &AttrName::entry("varied"),
            10,
            1.0,
            None,
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn support_and_confidence_thresholds() {
        let stats = cache();
        let t = FilterThresholds::default().without_entropy();
        assert_eq!(
            judge(
                &t,
                &stats,
                &AttrName::entry("a"),
                &AttrName::entry("b"),
                0,
                1.0,
                None
            ),
            Verdict::Reject(RejectReason::LowSupport)
        );
        assert_eq!(
            judge(
                &t,
                &stats,
                &AttrName::entry("a"),
                &AttrName::entry("b"),
                10,
                0.5,
                None
            ),
            Verdict::Reject(RejectReason::LowConfidence)
        );
    }

    #[test]
    fn template_confidence_overrides_global() {
        let stats = cache();
        let t = FilterThresholds::default().without_entropy();
        // Global is 0.90; a lax template admits 0.75.
        assert_eq!(
            judge(
                &t,
                &stats,
                &AttrName::entry("a"),
                &AttrName::entry("b"),
                10,
                0.75,
                Some(0.7)
            ),
            Verdict::Accept
        );
    }

    #[test]
    fn threshold_validation_flags_out_of_range_fields() {
        assert!(FilterThresholds::default().validate().is_ok());
        let bad = FilterThresholds {
            min_support_fraction: 1.5,
            min_confidence: -0.1,
            entropy_threshold: f64::NAN,
            use_entropy: true,
        };
        let problems = bad.validate().unwrap_err();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn paper_entropy_boundary() {
        let ds = {
            let mut ds = Dataset::new();
            for i in 0..100 {
                let mut r = Row::new(format!("s{i}"));
                // 92/8 split: entropy ≈ 0.279 < Ht = 0.325 → rejected.
                // (An exact 90/10 split sits marginally above Ht ≈ 0.32508
                // and would squeak through, per the paper's definition.)
                r.set(
                    AttrName::entry("split"),
                    ConfigValue::str(if i < 92 { "a" } else { "b" }),
                );
                r.set(AttrName::entry("varied"), ConfigValue::str(format!("v{i}")));
                ds.push_row(r);
            }
            ds
        };
        let stats = StatsCache::new(ds, &TypeMap::new());
        let t = FilterThresholds::default();
        let v = judge(
            &t,
            &stats,
            &AttrName::entry("split"),
            &AttrName::entry("varied"),
            100,
            1.0,
            None,
        );
        assert_eq!(v, Verdict::Reject(RejectReason::LowEntropy));
    }
}
