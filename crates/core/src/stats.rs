//! Shared read-only statistics for one inference run.
//!
//! Rule inference consults two per-attribute statistics over and over:
//!
//! * the **semantic type** of each attribute, when gathering eligible slot
//!   bindings — previously re-derived through [`TypeMap::type_of`] for every
//!   template;
//! * the **Shannon entropy** of each attribute's value distribution, when
//!   the entropy filter judges a candidate — previously recomputed from a
//!   fresh value histogram for every candidate, O(candidates × rows) of
//!   redundant work since many candidates share attributes.
//!
//! [`StatsCache`] resolves every type once up front and memoizes entropies
//! on first use.  The cache is immutable after construction apart from the
//! entropy memo (guarded by a mutex), so it can be shared read-only across
//! the inference worker pool.

use crate::types::TypeMap;
use encore_mining::metrics::entropy;
use encore_model::{AttrName, Dataset, SemType};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Per-run cache of attribute statistics: resolved types and memoized
/// entropies over one training dataset.
#[derive(Debug)]
pub struct StatsCache {
    dataset: Dataset,
    attributes: Vec<AttrName>,
    types: BTreeMap<AttrName, SemType>,
    type_map: TypeMap,
    entropies: Mutex<BTreeMap<AttrName, f64>>,
}

impl StatsCache {
    /// Build a cache over a dataset, resolving the type of every attribute
    /// once through `types`.
    pub fn new(dataset: Dataset, types: &TypeMap) -> StatsCache {
        let attributes: Vec<AttrName> = dataset.attributes().into_iter().collect();
        let resolved = attributes
            .iter()
            .map(|a| (a.clone(), types.type_of(a)))
            .collect();
        StatsCache {
            dataset,
            attributes,
            types: resolved,
            type_map: types.clone(),
            entropies: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of training systems.
    pub fn num_rows(&self) -> usize {
        self.dataset.num_rows()
    }

    /// Every attribute appearing in the dataset, in stable (sorted) order.
    pub fn attributes(&self) -> &[AttrName] {
        &self.attributes
    }

    /// The resolved semantic type of an attribute (falling back to the
    /// source [`TypeMap`] for attributes outside the dataset).
    pub fn type_of(&self, attr: &AttrName) -> SemType {
        match self.types.get(attr) {
            Some(t) => *t,
            None => self.type_map.type_of(attr),
        }
    }

    /// Shannon entropy of the attribute's value distribution, computed at
    /// most once per attribute per run.
    pub fn entropy(&self, attr: &AttrName) -> f64 {
        let mut memo = self.entropies.lock().expect("entropy memo poisoned");
        if let Some(&h) = memo.get(attr) {
            return h;
        }
        let h = entropy(self.dataset.value_histogram(attr).into_values());
        memo.insert(attr.clone(), h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::attribute_entropy;
    use encore_model::{ConfigValue, Row};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..12 {
            let mut r = Row::new(format!("s{i}"));
            r.set(AttrName::entry("varied"), ConfigValue::str(format!("v{i}")));
            r.set(AttrName::entry("fixed"), ConfigValue::str("same"));
            r.set(
                AttrName::entry("thirds"),
                ConfigValue::str(format!("t{}", i % 3)),
            );
            ds.push_row(r);
        }
        ds
    }

    #[test]
    fn entropy_matches_uncached_computation() {
        let ds = dataset();
        let cache = StatsCache::new(ds.clone(), &TypeMap::new());
        for name in ["varied", "fixed", "thirds", "absent"] {
            let attr = AttrName::entry(name);
            let direct = attribute_entropy(&ds, &attr);
            // Query twice: the second answer comes from the memo.
            assert_eq!(cache.entropy(&attr), direct, "{name}");
            assert_eq!(cache.entropy(&attr), direct, "{name} (memoized)");
        }
    }

    #[test]
    fn types_resolved_once_match_type_map() {
        let ds = dataset();
        let mut tm = TypeMap::new();
        tm.set(AttrName::entry("varied"), SemType::FilePath);
        let cache = StatsCache::new(ds, &tm);
        assert_eq!(cache.type_of(&AttrName::entry("varied")), SemType::FilePath);
        // Unstored attributes fall back to the TypeMap's own fallback rules.
        assert_eq!(
            cache.type_of(&AttrName::entry("fixed").augmented("owner")),
            tm.type_of(&AttrName::entry("fixed").augmented("owner"))
        );
    }

    #[test]
    fn attributes_are_sorted_and_complete() {
        let cache = StatsCache::new(dataset(), &TypeMap::new());
        let names: Vec<String> = cache.attributes().iter().map(|a| a.to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 3);
    }
}
