//! Shared read-only statistics for one inference run.
//!
//! Rule inference consults three per-attribute statistics over and over:
//!
//! * the **semantic type** of each attribute, when gathering eligible slot
//!   bindings — previously re-derived through [`TypeMap::type_of`] for every
//!   template;
//! * the **Shannon entropy** of each attribute's value distribution, when
//!   the entropy filter judges a candidate — previously recomputed from a
//!   fresh value histogram for every candidate, O(candidates × rows) of
//!   redundant work since many candidates share attributes;
//! * the **row-presence bitset** of each attribute, which lets the
//!   eligibility analysis decide in O(rows/64) words whether two attributes
//!   ever co-occur — the precondition for any candidate rule between them.
//!
//! [`StatsCache`] resolves types and presence masks once up front and
//! memoizes entropies on first use.  The entropy memo is sharded 16 ways by
//! attribute hash so that concurrent readers (eligibility precomputation,
//! any future in-worker judging) do not contend on a single lock; everything
//! else is immutable after construction, so the cache can be shared
//! read-only across the inference worker pool.

use crate::types::TypeMap;
use encore_mining::metrics::entropy;
use encore_model::{AttrName, ColumnStore, Dataset, SemType};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of entropy-memo shards.  A small power of two: enough to make
/// same-shard collisions rare across a worker pool, cheap enough to build
/// per run.
const ENTROPY_SHARDS: usize = 16;

/// Per-run cache of attribute statistics: resolved types, the columnar
/// interned view of the dataset (value-id columns + presence bitsets),
/// per-type attribute buckets, and memoized entropies over one training
/// dataset.
#[derive(Debug)]
pub struct StatsCache {
    dataset: Dataset,
    attributes: Vec<AttrName>,
    types: BTreeMap<AttrName, SemType>,
    /// Resolved type of `attributes[i]` — the flat mirror of `types` the
    /// per-pair loops index instead of chasing map nodes.
    types_by_index: Vec<SemType>,
    /// Attribute indices (into `attributes`) grouped by resolved semantic
    /// type, each bucket ascending — the eligibility bitsets inverted into
    /// the enumeration structure, so slot bindings come from a bucket
    /// lookup instead of a filter over every attribute.
    buckets: BTreeMap<SemType, Vec<usize>>,
    /// `strip_occurrence(attributes[i].base())`, precomputed for the `=~`
    /// family joins.
    stripped_bases: Vec<String>,
    columns: ColumnStore,
    type_map: TypeMap,
    entropies: [Mutex<BTreeMap<AttrName, f64>>; ENTROPY_SHARDS],
}

fn shard_of(attr: &AttrName) -> usize {
    let mut h = DefaultHasher::new();
    attr.hash(&mut h);
    (h.finish() as usize) % ENTROPY_SHARDS
}

impl StatsCache {
    /// Build a cache over a dataset, resolving the type and presence mask of
    /// every attribute once through `types` and the dataset rows.
    pub fn new(dataset: Dataset, types: &TypeMap) -> StatsCache {
        let _span = crate::obs::STATS_BUILD_TIME.span();
        let attributes: Vec<AttrName> = dataset.attributes().into_iter().collect();
        crate::obs::STATS_ATTRIBUTES.add(attributes.len() as u64);
        let types_by_index: Vec<SemType> = attributes.iter().map(|a| types.type_of(a)).collect();
        let resolved = attributes
            .iter()
            .cloned()
            .zip(types_by_index.iter().copied())
            .collect();
        let mut buckets: BTreeMap<SemType, Vec<usize>> = BTreeMap::new();
        for (i, &ty) in types_by_index.iter().enumerate() {
            buckets.entry(ty).or_default().push(i);
        }
        let stripped_bases = attributes
            .iter()
            .map(|a| crate::relation::strip_occurrence(a.base()))
            .collect();
        let columns = encore_assemble::column_store(&dataset);
        debug_assert_eq!(columns.num_columns(), attributes.len());
        StatsCache {
            dataset,
            attributes,
            types: resolved,
            types_by_index,
            buckets,
            stripped_bases,
            columns,
            type_map: types.clone(),
            entropies: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of training systems.
    pub fn num_rows(&self) -> usize {
        self.dataset.num_rows()
    }

    /// Every attribute appearing in the dataset, in stable (sorted) order.
    pub fn attributes(&self) -> &[AttrName] {
        &self.attributes
    }

    /// Whether the dataset contains the attribute at all.
    pub fn has_attribute(&self, attr: &AttrName) -> bool {
        self.types.contains_key(attr)
    }

    /// The resolved semantic type of an attribute (falling back to the
    /// source [`TypeMap`] for attributes outside the dataset).
    pub fn type_of(&self, attr: &AttrName) -> SemType {
        match self.types.get(attr) {
            Some(t) => *t,
            None => self.type_map.type_of(attr),
        }
    }

    /// The columnar interned view of the dataset: one value-id column per
    /// attribute (same sorted order as [`StatsCache::attributes`]) plus
    /// per-attribute presence bitsets.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// The index of an attribute in [`StatsCache::attributes`] (equally:
    /// its column index), if the dataset contains it.
    pub fn attr_index(&self, attr: &AttrName) -> Option<usize> {
        self.columns.interner().attr_id(attr).map(|id| id.index())
    }

    /// The resolved semantic type of the attribute at sorted index `index`.
    pub(crate) fn type_at(&self, index: usize) -> SemType {
        self.types_by_index[index]
    }

    /// The ascending attribute indices whose resolved type is exactly `ty`
    /// — empty when no attribute has that type.
    pub(crate) fn type_bucket(&self, ty: SemType) -> &[usize] {
        self.buckets.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `strip_occurrence` of the base name of the attribute at `index`,
    /// precomputed for `=~` family joins.
    pub(crate) fn stripped_base(&self, index: usize) -> &str {
        &self.stripped_bases[index]
    }

    /// The row-presence bitset of an attribute: bit `i` set iff row `i` has
    /// a present value.  `None` for attributes outside the dataset.
    pub fn presence_mask(&self, attr: &AttrName) -> Option<&[u64]> {
        self.attr_index(attr)
            .map(|i| self.columns.column(i).presence())
    }

    /// Whether two attributes are both present in at least one row — a
    /// necessary condition for *any* relation between them to be applicable
    /// anywhere, and therefore for any candidate rule to exist.
    pub fn co_occurs(&self, a: &AttrName, b: &AttrName) -> bool {
        match (self.presence_mask(a), self.presence_mask(b)) {
            (Some(ma), Some(mb)) => ma.iter().zip(mb).any(|(x, y)| x & y != 0),
            _ => false,
        }
    }

    /// Shannon entropy of the attribute's value distribution, computed at
    /// most once per attribute per run.  The memo is sharded by attribute
    /// hash, so concurrent lookups of different attributes rarely share a
    /// lock.
    pub fn entropy(&self, attr: &AttrName) -> f64 {
        let shard = shard_of(attr);
        let mut memo = self.entropies[shard].lock().expect("entropy memo poisoned");
        if let Some(&h) = memo.get(attr) {
            crate::obs::STATS_ENTROPY_HITS.observe(shard as u64);
            return h;
        }
        crate::obs::STATS_ENTROPY_MISSES.observe(shard as u64);
        // Histograms come from the interned columns: the render strings and
        // their counts are identical to `Dataset::value_histogram`, and both
        // maps iterate in sorted-render order, so the f64 summation order —
        // and therefore the entropy, bit for bit — is unchanged.
        let h = match self.attr_index(attr) {
            Some(i) => entropy(self.columns.value_histogram(i).into_values()),
            None => entropy(self.dataset.value_histogram(attr).into_values()),
        };
        memo.insert(attr.clone(), h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::attribute_entropy;
    use encore_model::{ConfigValue, Row};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..12 {
            let mut r = Row::new(format!("s{i}"));
            r.set(AttrName::entry("varied"), ConfigValue::str(format!("v{i}")));
            r.set(AttrName::entry("fixed"), ConfigValue::str("same"));
            r.set(
                AttrName::entry("thirds"),
                ConfigValue::str(format!("t{}", i % 3)),
            );
            if i < 6 {
                r.set(AttrName::entry("early"), ConfigValue::str("e"));
            } else {
                r.set(AttrName::entry("late"), ConfigValue::str("l"));
            }
            ds.push_row(r);
        }
        ds
    }

    #[test]
    fn entropy_matches_uncached_computation() {
        let ds = dataset();
        let cache = StatsCache::new(ds.clone(), &TypeMap::new());
        for name in ["varied", "fixed", "thirds", "absent"] {
            let attr = AttrName::entry(name);
            let direct = attribute_entropy(&ds, &attr);
            // Query twice: the second answer comes from the memo.
            assert_eq!(cache.entropy(&attr), direct, "{name}");
            assert_eq!(cache.entropy(&attr), direct, "{name} (memoized)");
        }
    }

    #[test]
    fn sharded_memo_is_consistent_under_concurrent_readers() {
        let ds = dataset();
        let cache = StatsCache::new(ds.clone(), &TypeMap::new());
        let names = ["varied", "fixed", "thirds", "early", "late"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for name in names {
                        let attr = AttrName::entry(name);
                        assert_eq!(cache.entropy(&attr), attribute_entropy(&ds, &attr));
                    }
                });
            }
        });
    }

    #[test]
    fn types_resolved_once_match_type_map() {
        let ds = dataset();
        let mut tm = TypeMap::new();
        tm.set(AttrName::entry("varied"), SemType::FilePath);
        let cache = StatsCache::new(ds, &tm);
        assert_eq!(cache.type_of(&AttrName::entry("varied")), SemType::FilePath);
        // Unstored attributes fall back to the TypeMap's own fallback rules.
        assert_eq!(
            cache.type_of(&AttrName::entry("fixed").augmented("owner")),
            tm.type_of(&AttrName::entry("fixed").augmented("owner"))
        );
    }

    #[test]
    fn attributes_are_sorted_and_complete() {
        let cache = StatsCache::new(dataset(), &TypeMap::new());
        let names: Vec<String> = cache.attributes().iter().map(|a| a.to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn type_buckets_partition_sorted_attributes() {
        let mut tm = TypeMap::new();
        tm.set(AttrName::entry("varied"), SemType::FilePath);
        let cache = StatsCache::new(dataset(), &tm);
        let mut seen = vec![false; cache.attributes().len()];
        for ty in SemType::PRIORITY {
            let bucket = cache.type_bucket(ty);
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "{ty}: not ascending"
            );
            for &i in bucket {
                assert_eq!(cache.type_at(i), ty);
                assert_eq!(cache.type_of(&cache.attributes()[i]), ty);
                assert!(!seen[i], "attribute {i} in two buckets");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every attribute lands in a bucket");
    }

    #[test]
    fn columnar_presence_matches_dataset_masks() {
        let ds = dataset();
        let cache = StatsCache::new(ds.clone(), &TypeMap::new());
        for attr in cache.attributes() {
            assert_eq!(
                cache.presence_mask(attr),
                Some(ds.presence_mask(attr).as_slice()),
                "{attr}"
            );
        }
        assert_eq!(cache.presence_mask(&AttrName::entry("absent")), None);
    }

    #[test]
    fn co_occurrence_follows_presence() {
        let cache = StatsCache::new(dataset(), &TypeMap::new());
        let (varied, early, late) = (
            AttrName::entry("varied"),
            AttrName::entry("early"),
            AttrName::entry("late"),
        );
        assert!(cache.co_occurs(&varied, &early));
        assert!(cache.co_occurs(&varied, &late));
        // `early` fills rows 0..6, `late` rows 6..12 — never together.
        assert!(!cache.co_occurs(&early, &late));
        assert!(!cache.co_occurs(&varied, &AttrName::entry("absent")));
        assert!(cache.has_attribute(&varied));
        assert!(!cache.has_attribute(&AttrName::entry("absent")));
        assert_eq!(cache.presence_mask(&varied).map(<[u64]>::len), Some(1));
    }
}
