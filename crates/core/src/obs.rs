//! Pipeline observability: the core crate's instruments plus the
//! whole-pipeline roll-up.
//!
//! Metric statics for the four phases this crate owns — `infer`, `stats`,
//! `filter`, `detect` — live here, referenced from the corresponding
//! modules; [`pipeline_report`] stitches them together with the upstream
//! crates' snapshots (`collect` from `encore-sysimage`, `assemble` from
//! `encore-parser` + `encore-assemble`) into one [`PipelineReport`].  The
//! report always carries all six phase sections, zero-valued when a phase
//! did not run, so consumers can key on phase names unconditionally.
//!
//! Determinism discipline (see DESIGN.md §9): [`Counter`]s and
//! [`Histogram`]s count *work*, which is identical across worker counts;
//! anything scheduling-dependent — worker counts, per-worker load, wall
//! time — is a [`Gauge`] or [`Timer`].  `tests/determinism.rs` enforces
//! the split.

pub use encore_obs::delta::{DeltaPolicy, Gate, ReportDelta, Violation};
pub use encore_obs::profile::ProfileTable;
pub use encore_obs::{
    delta, disable, enable, enable_from_env, enabled, event, expose, json, profile, trace, Counter,
    Gauge, Histogram, HistogramSnapshot, PhaseReport, PipelineReport, Timer, TimerSnapshot,
};

use encore_obs::INDEX_BOUNDS;

// ---- infer: template instantiation over the work-stealing pool ----

/// Templates handed to an inference run.
pub static INFER_TEMPLATES: Counter = Counter::new("infer.templates.instantiated");
/// `(template, a-chunk)` work units before pruning.
pub static INFER_UNITS_TOTAL: Counter = Counter::new("infer.units.total");
/// Units dropped by the eligibility-bitset liveness check.
pub static INFER_UNITS_PRUNED: Counter = Counter::new("infer.units.pruned");
/// Slot pairs passing the structural `pair_considered` filters.
pub static INFER_PAIRS_EVALUATED: Counter = Counter::new("infer.pairs.evaluated");
/// Candidate rules emitted by instantiation (before dedup).
pub static INFER_CANDIDATES: Counter = Counter::new("infer.candidates.emitted");
/// Duplicate candidates dropped by first-seen dedup.
pub static INFER_CANDIDATES_DEDUPED: Counter = Counter::new("infer.candidates.deduped");
/// Candidates per template index (templates beyond 15 land in overflow).
pub static INFER_CANDIDATES_BY_TEMPLATE: Histogram =
    Histogram::new("infer.candidates.by_template", &INDEX_BOUNDS);
/// Units the pool actually ran (total across workers).
pub static POOL_UNITS_RUN: Counter = Counter::new("infer.pool.units_run");
/// Worker threads of the last pool run (scheduling-dependent: gauge).
pub static POOL_WORKERS: Gauge = Gauge::new("infer.pool.workers");
/// Units run by the busiest worker of the last run.
pub static POOL_BUSIEST_WORKER_UNITS: Gauge = Gauge::new("infer.pool.busiest_worker_units");
/// Units run by the idlest worker of the last run.
pub static POOL_IDLEST_WORKER_UNITS: Gauge = Gauge::new("infer.pool.idlest_worker_units");
/// Units that landed on workers other than worker 0 in the last run — how
/// much work the stealing actually spread.
pub static POOL_STOLEN_UNITS: Gauge = Gauge::new("infer.pool.stolen_units");
/// Per-worker busy time inside the pool loop.
pub static POOL_WORKER_BUSY: Timer = Timer::new("infer.pool.worker_busy");
/// Wall time of whole inference passes (candidate generation).
pub static INFER_TIME: Timer = Timer::new("infer.time");
/// Per-template cost attribution: self-time, pairs evaluated, and
/// candidates emitted per template (keys are the template display form).
/// Populated only while [`profile::enabled`]; the rows must account for
/// ≥95% of `infer.time` (DESIGN.md §16).
pub static INFER_TEMPLATE_PROFILE: ProfileTable = ProfileTable::new("infer.templates");

/// The pool instrument bundle for the `infer` phase (the pool's historical
/// default caller).
pub static INFER_POOL_METRICS: crate::pool::PoolMetrics = crate::pool::PoolMetrics {
    units_run: &POOL_UNITS_RUN,
    workers: &POOL_WORKERS,
    busiest_worker_units: &POOL_BUSIEST_WORKER_UNITS,
    idlest_worker_units: &POOL_IDLEST_WORKER_UNITS,
    stolen_units: &POOL_STOLEN_UNITS,
    worker_busy: &POOL_WORKER_BUSY,
};

// ---- stats: the sharded entropy memo ----

/// Attributes resolved into a stats cache.
pub static STATS_ATTRIBUTES: Counter = Counter::new("stats.cache.attributes");
/// Entropy-memo hits, bucketed by shard index.
pub static STATS_ENTROPY_HITS: Histogram = Histogram::new("stats.entropy.memo_hits", &INDEX_BOUNDS);
/// Entropy-memo misses (fresh computations), bucketed by shard index.
pub static STATS_ENTROPY_MISSES: Histogram =
    Histogram::new("stats.entropy.memo_misses", &INDEX_BOUNDS);
/// Wall time building stats caches.
pub static STATS_BUILD_TIME: Timer = Timer::new("stats.cache.build");

// ---- filter: §5.2 rule admission ----

/// Candidates accepted into the rule set.
pub static FILTER_ACCEPTED: Counter = Counter::new("filter.accepted");
/// Candidates rejected for low support.
pub static FILTER_REJECTED_SUPPORT: Counter = Counter::new("filter.rejected.support");
/// Candidates rejected for low confidence.
pub static FILTER_REJECTED_CONFIDENCE: Counter = Counter::new("filter.rejected.confidence");
/// Candidates rejected for low entropy.
pub static FILTER_REJECTED_ENTROPY: Counter = Counter::new("filter.rejected.entropy");
/// Wall time judging candidate lists.
pub static FILTER_TIME: Timer = Timer::new("filter.time");

// ---- detect: the four warning classes of §6 ----

/// Systems checked by the anomaly detector.
pub static DETECT_SYSTEMS_CHECKED: Counter = Counter::new("detect.systems.checked");
/// Unknown-entry warnings emitted.
pub static DETECT_UNKNOWN_ENTRY: Counter = Counter::new("detect.warnings.unknown_entry");
/// Correlation-violation warnings emitted.
pub static DETECT_CORRELATION: Counter = Counter::new("detect.warnings.correlation");
/// Type-violation warnings emitted.
pub static DETECT_TYPE: Counter = Counter::new("detect.warnings.type");
/// Suspicious-value warnings emitted.
pub static DETECT_SUSPICIOUS: Counter = Counter::new("detect.warnings.suspicious_value");
/// Wall time inside detector checks.  Systems/sec for a batch is
/// `detect.systems.checked / detect.time` in the rolled-up report.
pub static DETECT_TIME: Timer = Timer::new("detect.time");
/// Correlation rules actually evaluated after the attribute-presence index
/// pruned the candidate list.
pub static DETECT_INDEX_RULES_EVALUATED: Counter = Counter::new("detect.index.rules_evaluated");
/// Correlation rules the index skipped (some slot attribute absent from the
/// target row — a full scan would have evaluated them to `NotApplicable`).
pub static DETECT_INDEX_RULES_SKIPPED: Counter = Counter::new("detect.index.rules_skipped");
/// Warnings per checked system (counts work: scheduling-independent).
pub static DETECT_WARNINGS_PER_SYSTEM: Histogram =
    Histogram::new("detect.warnings.per_system", &INDEX_BOUNDS);
/// Target systems handed to `check_fleet` batches.
pub static DETECT_FLEET_SYSTEMS: Counter = Counter::new("detect.fleet.systems");
/// `check_fleet` batches run.
pub static DETECT_FLEET_BATCHES: Counter = Counter::new("detect.fleet.batches");
/// Fleet-batch units handed to the detect pool.
pub static DETECT_POOL_UNITS_RUN: Counter = Counter::new("detect.pool.units_run");
/// Worker threads of the last fleet batch (scheduling-dependent: gauge).
pub static DETECT_POOL_WORKERS: Gauge = Gauge::new("detect.pool.workers");
/// Systems checked by the busiest worker of the last fleet batch.
pub static DETECT_POOL_BUSIEST_WORKER_UNITS: Gauge = Gauge::new("detect.pool.busiest_worker_units");
/// Systems checked by the idlest worker of the last fleet batch.
pub static DETECT_POOL_IDLEST_WORKER_UNITS: Gauge = Gauge::new("detect.pool.idlest_worker_units");
/// Systems that landed on workers other than worker 0 in the last batch.
pub static DETECT_POOL_STOLEN_UNITS: Gauge = Gauge::new("detect.pool.stolen_units");
/// Per-worker busy time inside fleet batches.
pub static DETECT_POOL_WORKER_BUSY: Timer = Timer::new("detect.pool.worker_busy");
/// Per-A-slot-bucket cost attribution in the [`DetectorIndex`]: rule
/// evaluation self-time, rules checked, and violations per bucket (keys
/// are the A-slot attribute display form).  Populated only while
/// [`profile::enabled`].
///
/// [`DetectorIndex`]: crate::detect::AnomalyDetector
pub static DETECT_BUCKET_PROFILE: ProfileTable = ProfileTable::new("detect.buckets");

// ---- detect.watch: the long-running serve loop (`encore::watch`) ----

/// Watch cycles run (each poll of the watched directory is one cycle).
pub static DETECT_WATCH_CYCLES: Counter = Counter::new("detect.watch.cycles");
/// Targets that appeared in the watched directory.
pub static DETECT_WATCH_TARGETS_ADDED: Counter = Counter::new("detect.watch.targets_added");
/// Targets whose mtime/size signature changed between cycles.
pub static DETECT_WATCH_TARGETS_CHANGED: Counter = Counter::new("detect.watch.targets_changed");
/// Targets that disappeared from the watched directory.
pub static DETECT_WATCH_TARGETS_REMOVED: Counter = Counter::new("detect.watch.targets_removed");
/// Targets actually re-checked (changed/added, or all on a detector
/// reload) — the watch loop's work metric.
pub static DETECT_WATCH_TARGETS_RECHECKED: Counter = Counter::new("detect.watch.targets_rechecked");
/// Detector snapshot hot-reloads performed.
pub static DETECT_WATCH_DETECTOR_RELOADS: Counter = Counter::new("detect.watch.detector_reloads");
/// Targets currently tracked by the watcher (a point-in-time size: gauge).
pub static DETECT_WATCH_TARGETS_TRACKED: Gauge = Gauge::new("detect.watch.targets_tracked");

// ---- daemon: cumulative lifetime instruments for the scrape surface ----
//
// Unlike the per-cycle `detect.watch.*` counters above (which feed the
// JSONL trace through the cycle delta), these are never reset while the
// daemon runs, so a Prometheus scraper sees monotone counters.  They live
// in their own `daemon` phase section that is part of [`scrape_report`]
// but deliberately NOT part of [`pipeline_report`], keeping the JSONL
// trace byte-identical to the pre-exposition format.

/// Watch cycles completed over the daemon's lifetime.
pub static WATCH_CYCLES: Counter = Counter::new("watch.cycles");
/// Targets re-checked over the daemon's lifetime.
pub static WATCH_TARGETS_CHECKED: Counter = Counter::new("watch.targets_checked");
/// Warnings emitted by re-checks over the daemon's lifetime.
pub static WATCH_WARNINGS: Counter = Counter::new("watch.warnings");
/// Successful detector snapshot hot-reloads over the daemon's lifetime.
pub static WATCH_SNAPSHOT_RELOADS: Counter = Counter::new("watch.snapshot_reloads");
/// Unix timestamp (seconds) of the last completed cycle.
pub static WATCH_LAST_CYCLE_UNIX: Gauge = Gauge::new("watch.last_cycle_unix_seconds");
/// Cycle wall-time bounds, milliseconds: sub-ms polls up to minute-long
/// full re-checks.
static WATCH_CYCLE_BOUNDS: [u64; 15] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000, 60_000,
];
/// Per-cycle wall time, milliseconds.
pub static WATCH_CYCLE_DURATION: Histogram =
    Histogram::new("watch.cycle_duration_ms", &WATCH_CYCLE_BOUNDS);

/// The pool instrument bundle for `detect`-phase fleet batches.
pub static DETECT_POOL_METRICS: crate::pool::PoolMetrics = crate::pool::PoolMetrics {
    units_run: &DETECT_POOL_UNITS_RUN,
    workers: &DETECT_POOL_WORKERS,
    busiest_worker_units: &DETECT_POOL_BUSIEST_WORKER_UNITS,
    idlest_worker_units: &DETECT_POOL_IDLEST_WORKER_UNITS,
    stolen_units: &DETECT_POOL_STOLEN_UNITS,
    worker_busy: &DETECT_POOL_WORKER_BUSY,
};

/// Snapshot of the `infer` phase.
fn infer_phase() -> PhaseReport {
    PhaseReport::new("infer")
        .counter(&INFER_TEMPLATES)
        .counter(&INFER_UNITS_TOTAL)
        .counter(&INFER_UNITS_PRUNED)
        .counter(&INFER_PAIRS_EVALUATED)
        .counter(&INFER_CANDIDATES)
        .counter(&INFER_CANDIDATES_DEDUPED)
        .counter(&POOL_UNITS_RUN)
        .gauge(&POOL_WORKERS)
        .gauge(&POOL_BUSIEST_WORKER_UNITS)
        .gauge(&POOL_IDLEST_WORKER_UNITS)
        .gauge(&POOL_STOLEN_UNITS)
        .timer(&POOL_WORKER_BUSY)
        .timer(&INFER_TIME)
        .histogram(&INFER_CANDIDATES_BY_TEMPLATE)
}

/// Snapshot of the `stats` phase.
fn stats_phase() -> PhaseReport {
    PhaseReport::new("stats")
        .counter(&STATS_ATTRIBUTES)
        .timer(&STATS_BUILD_TIME)
        .histogram(&STATS_ENTROPY_HITS)
        .histogram(&STATS_ENTROPY_MISSES)
}

/// Snapshot of the `filter` phase.
fn filter_phase() -> PhaseReport {
    PhaseReport::new("filter")
        .counter(&FILTER_ACCEPTED)
        .counter(&FILTER_REJECTED_SUPPORT)
        .counter(&FILTER_REJECTED_CONFIDENCE)
        .counter(&FILTER_REJECTED_ENTROPY)
        .timer(&FILTER_TIME)
}

/// Snapshot of the `detect` phase.
fn detect_phase() -> PhaseReport {
    PhaseReport::new("detect")
        .counter(&DETECT_SYSTEMS_CHECKED)
        .counter(&DETECT_UNKNOWN_ENTRY)
        .counter(&DETECT_CORRELATION)
        .counter(&DETECT_TYPE)
        .counter(&DETECT_SUSPICIOUS)
        .counter(&DETECT_INDEX_RULES_EVALUATED)
        .counter(&DETECT_INDEX_RULES_SKIPPED)
        .counter(&DETECT_FLEET_SYSTEMS)
        .counter(&DETECT_FLEET_BATCHES)
        .counter(&DETECT_POOL_UNITS_RUN)
        .counter(&DETECT_WATCH_CYCLES)
        .counter(&DETECT_WATCH_TARGETS_ADDED)
        .counter(&DETECT_WATCH_TARGETS_CHANGED)
        .counter(&DETECT_WATCH_TARGETS_REMOVED)
        .counter(&DETECT_WATCH_TARGETS_RECHECKED)
        .counter(&DETECT_WATCH_DETECTOR_RELOADS)
        .gauge(&DETECT_WATCH_TARGETS_TRACKED)
        .gauge(&DETECT_POOL_WORKERS)
        .gauge(&DETECT_POOL_BUSIEST_WORKER_UNITS)
        .gauge(&DETECT_POOL_IDLEST_WORKER_UNITS)
        .gauge(&DETECT_POOL_STOLEN_UNITS)
        .timer(&DETECT_POOL_WORKER_BUSY)
        .timer(&DETECT_TIME)
        .histogram(&DETECT_WARNINGS_PER_SYSTEM)
}

/// Snapshot of the daemon-lifetime instruments (scrape surface only; not
/// part of [`pipeline_report`]).
pub fn daemon_phase() -> PhaseReport {
    PhaseReport::new("daemon")
        .counter(&WATCH_CYCLES)
        .counter(&WATCH_TARGETS_CHECKED)
        .counter(&WATCH_WARNINGS)
        .counter(&WATCH_SNAPSHOT_RELOADS)
        .gauge(&WATCH_LAST_CYCLE_UNIX)
        .histogram(&WATCH_CYCLE_DURATION)
}

/// Roll up the whole pipeline: all six phase sections, in pipeline order,
/// present even when zero-valued.
pub fn pipeline_report() -> PipelineReport {
    PipelineReport {
        phases: vec![
            encore_sysimage::obs::phase_report(),
            encore_parser::obs::phase_report().merge(encore_assemble::obs::phase_report()),
            infer_phase(),
            stats_phase(),
            filter_phase(),
            detect_phase(),
        ],
    }
}

/// The scrape view: the six pipeline phases plus the `daemon` section.
/// This is what `/metrics` renders; the JSONL trace keeps using
/// [`pipeline_report`], so its shape is unchanged by the daemon section.
pub fn scrape_report() -> PipelineReport {
    let mut report = pipeline_report();
    report.phases.push(daemon_phase());
    report
}

/// Bucket bounds for every histogram this crate family exposes, by sink
/// metric name.  Reports carry counts but not bounds; exposition and
/// cycle deltas need them back (see
/// [`PipelineReport::delta_since`] and [`expose::render`]).
pub fn histogram_bounds(name: &str) -> Option<&'static [u64]> {
    match name {
        "infer.candidates.by_template" => Some(INFER_CANDIDATES_BY_TEMPLATE.bounds()),
        "stats.entropy.memo_hits" => Some(STATS_ENTROPY_HITS.bounds()),
        "stats.entropy.memo_misses" => Some(STATS_ENTROPY_MISSES.bounds()),
        "detect.warnings.per_system" => Some(DETECT_WARNINGS_PER_SYSTEM.bounds()),
        "watch.cycle_duration_ms" => Some(WATCH_CYCLE_DURATION.bounds()),
        _ => None,
    }
}

/// Render the scrape view in the Prometheus text exposition format.
pub fn render_prometheus() -> String {
    expose::render(&scrape_report(), &histogram_bounds)
}

/// The profiler's report sections: the per-template table referenced
/// against the `infer.time` wall timer (the ≥95% coverage invariant),
/// plus the detector-index bucket table.
fn profile_sections() -> [profile::Section<'static>; 2] {
    [
        profile::Section {
            table: &INFER_TEMPLATE_PROFILE,
            reference: Some(("infer.time", INFER_TIME.total_nanos())),
        },
        profile::Section {
            table: &DETECT_BUCKET_PROFILE,
            reference: None,
        },
    ]
}

/// Render the top-`k` cost table as human-readable text.
pub fn render_profile_text(k: usize) -> String {
    profile::render_text(&profile_sections(), k)
}

/// Render the full cost tables (every row, coverage included) as JSON.
pub fn render_profile_json() -> String {
    profile::render_json(&profile_sections())
}

/// Reset every pipeline instrument across all crates (the sink flag is
/// left as-is).
pub fn reset() {
    encore_sysimage::obs::reset();
    encore_parser::obs::reset();
    encore_assemble::obs::reset();
    for counter in [
        &INFER_TEMPLATES,
        &INFER_UNITS_TOTAL,
        &INFER_UNITS_PRUNED,
        &INFER_PAIRS_EVALUATED,
        &INFER_CANDIDATES,
        &INFER_CANDIDATES_DEDUPED,
        &POOL_UNITS_RUN,
        &STATS_ATTRIBUTES,
        &FILTER_ACCEPTED,
        &FILTER_REJECTED_SUPPORT,
        &FILTER_REJECTED_CONFIDENCE,
        &FILTER_REJECTED_ENTROPY,
        &DETECT_SYSTEMS_CHECKED,
        &DETECT_UNKNOWN_ENTRY,
        &DETECT_CORRELATION,
        &DETECT_TYPE,
        &DETECT_SUSPICIOUS,
        &DETECT_INDEX_RULES_EVALUATED,
        &DETECT_INDEX_RULES_SKIPPED,
        &DETECT_FLEET_SYSTEMS,
        &DETECT_FLEET_BATCHES,
        &DETECT_POOL_UNITS_RUN,
        &DETECT_WATCH_CYCLES,
        &DETECT_WATCH_TARGETS_ADDED,
        &DETECT_WATCH_TARGETS_CHANGED,
        &DETECT_WATCH_TARGETS_REMOVED,
        &DETECT_WATCH_TARGETS_RECHECKED,
        &DETECT_WATCH_DETECTOR_RELOADS,
    ] {
        counter.reset();
    }
    for gauge in [
        &POOL_WORKERS,
        &POOL_BUSIEST_WORKER_UNITS,
        &POOL_IDLEST_WORKER_UNITS,
        &POOL_STOLEN_UNITS,
        &DETECT_POOL_WORKERS,
        &DETECT_POOL_BUSIEST_WORKER_UNITS,
        &DETECT_POOL_IDLEST_WORKER_UNITS,
        &DETECT_POOL_STOLEN_UNITS,
        &DETECT_WATCH_TARGETS_TRACKED,
    ] {
        gauge.reset();
    }
    for timer in [
        &POOL_WORKER_BUSY,
        &INFER_TIME,
        &STATS_BUILD_TIME,
        &FILTER_TIME,
        &DETECT_TIME,
        &DETECT_POOL_WORKER_BUSY,
    ] {
        timer.reset();
    }
    INFER_CANDIDATES_BY_TEMPLATE.reset();
    STATS_ENTROPY_HITS.reset();
    STATS_ENTROPY_MISSES.reset();
    DETECT_WARNINGS_PER_SYSTEM.reset();
    INFER_TEMPLATE_PROFILE.reset();
    DETECT_BUCKET_PROFILE.reset();
    reset_daemon();
}

/// Reset only the pipeline's point-in-time gauges, leaving every
/// cumulative instrument (counters, timers, histograms) intact.
///
/// The watch loop calls this at the start of each cycle: gauges describe
/// "the last run" (pool worker spread, tracked-target count) and must not
/// leak from a busy cycle into a quiet one, while the cumulative
/// instruments stay monotone for the scrape endpoint and are turned into
/// per-cycle JSONL by [`PipelineReport::delta_since`].  The `daemon`
/// gauge ([`WATCH_LAST_CYCLE_UNIX`]) is deliberately excluded — it is
/// daemon-lifetime state, not per-cycle state.
pub fn reset_gauges() {
    for gauge in [
        &POOL_WORKERS,
        &POOL_BUSIEST_WORKER_UNITS,
        &POOL_IDLEST_WORKER_UNITS,
        &POOL_STOLEN_UNITS,
        &DETECT_POOL_WORKERS,
        &DETECT_POOL_BUSIEST_WORKER_UNITS,
        &DETECT_POOL_IDLEST_WORKER_UNITS,
        &DETECT_POOL_STOLEN_UNITS,
        &DETECT_WATCH_TARGETS_TRACKED,
    ] {
        gauge.reset();
    }
}

/// Reset the daemon-lifetime instruments (a fresh daemon, typically only
/// meaningful in tests — a live daemon never resets these).
pub fn reset_daemon() {
    WATCH_CYCLES.reset();
    WATCH_TARGETS_CHECKED.reset();
    WATCH_WARNINGS.reset();
    WATCH_SNAPSHOT_RELOADS.reset();
    WATCH_LAST_CYCLE_UNIX.reset();
    WATCH_CYCLE_DURATION.reset();
}

/// Capture the pipeline report and zero every instrument in one step.
///
/// Snapshotting and resetting together matters: a plain [`reset`]
/// between runs keeps *nothing*, but a run that snapshots late (or skips
/// re-setting a gauge) would otherwise leak prior-run gauge values.  The
/// pairing is atomic with respect to the caller's own thread; instruments
/// recorded concurrently by *other* threads between the two steps can be
/// lost, so callers must quiesce pipeline work first.
///
/// The watch loop used to call this every cycle; it now keeps the sink
/// cumulative (so `/metrics` scrapes stay monotone) and derives per-cycle
/// reports with [`PipelineReport::delta_since`] plus a [`reset_gauges`]
/// at cycle start.  This remains for one-shot callers that want a clean
/// slate between runs.
pub fn snapshot_and_reset() -> PipelineReport {
    let report = pipeline_report();
    reset();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_always_carries_all_six_phases() {
        let report = pipeline_report();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["collect", "assemble", "infer", "stats", "filter", "detect"]
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = pipeline_report();
        let parsed = PipelineReport::parse_json(&report.render_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn scrape_report_appends_daemon_phase_without_touching_pipeline() {
        let scrape = scrape_report();
        let names: Vec<&str> = scrape.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["collect", "assemble", "infer", "stats", "filter", "detect", "daemon"]
        );
        assert!(pipeline_report().phase("daemon").is_none());
    }

    #[test]
    fn histogram_bounds_covers_every_exposed_histogram() {
        for phase in &scrape_report().phases {
            for (name, snap) in &phase.histograms {
                let bounds = histogram_bounds(name)
                    .unwrap_or_else(|| panic!("no bounds registered for histogram `{name}`"));
                assert_eq!(
                    bounds.len() + 1,
                    snap.counts.len(),
                    "bounds mismatch for `{name}`"
                );
            }
        }
    }

    #[test]
    fn prometheus_rendering_passes_the_grammar_validator() {
        let text = render_prometheus();
        expose::validate(&text).expect("exposition validates");
        assert!(text.contains("# TYPE encore_watch_cycles_total counter\n"));
        assert!(text.contains("# TYPE encore_watch_cycle_duration_ms histogram\n"));
        assert!(text.contains("encore_watch_cycle_duration_ms_bucket{le=\"60000\"}"));
    }
}
