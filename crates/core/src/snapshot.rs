//! Persistable detector snapshots: train once, detect many.
//!
//! The paper separates learning from checking so "the learned rules can be
//! reused to check different systems" (§3).  A [`DetectorSnapshot`] extends
//! that separation to the whole detector: it bundles the learned
//! [`RuleSet`], the merged [`TypeMap`], and the [`TrainingStats`] (known
//! entries, per-attribute value histograms, corpus size) in one versioned
//! text artifact, so an [`crate::AnomalyDetector`] can be reconstructed on
//! a fleet-serving host that never sees the training corpus.
//!
//! The format follows the same line-oriented philosophy as
//! [`RuleSet::render`]: human-inspectable, one fact per line, `#` comments
//! and blank lines ignored.  Attribute names use the unambiguous tagged
//! encoding ([`AttrName::render_tagged`]) and values are backslash-escaped,
//! so `render` → `parse` is lossless — a reloaded detector produces
//! byte-identical reports.
//!
//! ```text
//! encore-detector-snapshot v1
//! [meta]
//! systems=40
//! [rules]
//! O:datadir\tOwns\tO:user\t38\t0.97
//! [types]
//! O:datadir\tFilePath
//! [entries]
//! datadir
//! [values]
//! O:datadir\t3\t/var/lib/mysql
//! ```

use crate::detect::TrainingStats;
use crate::rules::{Rule, RuleSet};
use crate::types::TypeMap;
use encore_model::{AttrName, SemType};
use std::collections::{BTreeMap, BTreeSet};

/// The bundled learned state of an anomaly detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSnapshot {
    rules: RuleSet,
    types: TypeMap,
    stats: TrainingStats,
}

/// The snapshot format version this build renders and accepts.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "encore-detector-snapshot";

/// Escape a free-form string for a tab-separated snapshot field.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("dangling `\\` at end of field".to_string()),
        }
    }
    Ok(out)
}

impl DetectorSnapshot {
    /// Bundle the three learned artifacts.
    pub fn new(rules: RuleSet, types: TypeMap, stats: TrainingStats) -> DetectorSnapshot {
        DetectorSnapshot {
            rules,
            types,
            stats,
        }
    }

    /// The learned rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The merged type map.
    pub fn types(&self) -> &TypeMap {
        &self.types
    }

    /// The training statistics.
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// Decompose into `(rules, types, stats)` for detector construction.
    pub fn into_parts(self) -> (RuleSet, TypeMap, TrainingStats) {
        (self.rules, self.types, self.stats)
    }

    /// Render the versioned text artifact (the inverse of
    /// [`DetectorSnapshot::parse`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{MAGIC} v{FORMAT_VERSION}\n"));
        out.push_str("[meta]\n");
        out.push_str(&format!("systems={}\n", self.stats.systems()));
        out.push_str("[rules]\n");
        for rule in &self.rules {
            out.push_str(&rule.render_tagged());
            out.push('\n');
        }
        out.push_str("[types]\n");
        out.push_str(&self.types.render());
        out.push_str("[entries]\n");
        for entry in self.stats.known_entries() {
            out.push_str(&escape(entry));
            out.push('\n');
        }
        out.push_str("[values]\n");
        for (attr, hist) in self.stats.values() {
            let tag = attr.render_tagged();
            for (value, count) in hist {
                out.push_str(&format!("{tag}\t{count}\t{}\n", escape(value)));
            }
        }
        out
    }

    /// Read just the format version from a snapshot header, without parsing
    /// the body.
    ///
    /// Tools that want to *report* an unsupported version (the linter's
    /// `EC070`) rather than fail opaquely can peek first: a version newer
    /// than [`FORMAT_VERSION`] is a diagnosable fact about the artifact, not
    /// a parse error.
    ///
    /// # Errors
    ///
    /// Returns a description of a missing or malformed `encore-detector-snapshot vN`
    /// header.
    pub fn peek_version(text: &str) -> Result<u32, String> {
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix(MAGIC)
                .ok_or_else(|| format!("line {}: expected `{MAGIC} vN` header", i + 1))?;
            return rest
                .trim()
                .strip_prefix('v')
                .and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| format!("line {}: malformed version `{rest}`", i + 1));
        }
        Err(format!("missing `{MAGIC} vN` header"))
    }

    /// Parse a rendered snapshot.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and a description of the first
    /// malformed line, or a description of a missing/unsupported header.
    pub fn parse(text: &str) -> Result<DetectorSnapshot, String> {
        let mut lines = text.lines().enumerate();
        let version = loop {
            let (i, line) = lines
                .next()
                .ok_or_else(|| format!("missing `{MAGIC} vN` header"))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix(MAGIC)
                .ok_or_else(|| format!("line {}: expected `{MAGIC} vN` header", i + 1))?;
            break rest
                .trim()
                .strip_prefix('v')
                .and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| format!("line {}: malformed version `{rest}`", i + 1))?;
        };
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (this build reads v{FORMAT_VERSION})"
            ));
        }

        let mut section: Option<String> = None;
        let mut systems: Option<usize> = None;
        let mut rules = RuleSet::new();
        let mut types = TypeMap::new();
        let mut entries: BTreeSet<String> = BTreeSet::new();
        let mut values: BTreeMap<AttrName, BTreeMap<String, usize>> = BTreeMap::new();

        for (i, raw) in lines {
            let at = |e: String| format!("line {}: {e}", i + 1);
            let line = raw.trim_end_matches(['\r']);
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            if let Some(name) = line.trim().strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| at("unclosed section header".to_string()))?;
                match name {
                    "meta" | "rules" | "types" | "entries" | "values" => {
                        section = Some(name.to_string());
                    }
                    other => return Err(at(format!("unknown section `[{other}]`"))),
                }
                continue;
            }
            match section.as_deref() {
                None => return Err(at("content before the first section header".to_string())),
                Some("meta") => {
                    let (key, value) = line
                        .split_once('=')
                        .ok_or_else(|| at("expected `key=value`".to_string()))?;
                    // Unknown meta keys are ignored for forward
                    // compatibility within the same format version.
                    if key.trim() == "systems" {
                        systems = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|e| at(format!("bad systems count: {e}")))?,
                        );
                    }
                }
                Some("rules") => rules.push(Rule::parse_tagged(line).map_err(at)?),
                Some("types") => {
                    let (attr, ty) = line
                        .split_once('\t')
                        .ok_or_else(|| at("expected `attr\\ttype`".to_string()))?;
                    let attr = AttrName::parse_tagged(attr).map_err(|e| at(e.to_string()))?;
                    let ty = SemType::parse_name(ty.trim())
                        .ok_or_else(|| at(format!("unknown type `{ty}`")))?;
                    types.set(attr, ty);
                }
                Some("entries") => {
                    entries.insert(unescape(line).map_err(at)?);
                }
                Some("values") => {
                    let mut fields = line.splitn(3, '\t');
                    let attr = fields
                        .next()
                        .ok_or_else(|| at("missing attribute field".to_string()))?;
                    let count = fields
                        .next()
                        .ok_or_else(|| at("missing count field".to_string()))?;
                    let value = fields
                        .next()
                        .ok_or_else(|| at("missing value field".to_string()))?;
                    let attr = AttrName::parse_tagged(attr).map_err(|e| at(e.to_string()))?;
                    let count: usize = count
                        .parse()
                        .map_err(|e| at(format!("bad value count: {e}")))?;
                    values
                        .entry(attr)
                        .or_default()
                        .insert(unescape(value).map_err(at)?, count);
                }
                Some(_) => unreachable!("section names are validated above"),
            }
        }

        let systems = systems.ok_or("missing `systems=` in [meta]")?;
        Ok(DetectorSnapshot {
            rules,
            types,
            stats: TrainingStats::from_parts(systems, entries, values),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Relation;

    fn sample() -> DetectorSnapshot {
        let mut rules = RuleSet::new();
        rules.push(Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            38,
            0.971_428_571_428_571_4,
        ));
        rules.push(Rule::new(
            // A dotted original entry: the display form is ambiguous, the
            // tagged snapshot encoding is not.
            AttrName::entry("session.use_cookies"),
            Relation::Equal,
            AttrName::entry("session.use_only_cookies"),
            21,
            0.9,
        ));
        let mut types = TypeMap::new();
        types.set(AttrName::entry("datadir"), SemType::FilePath);
        types.set(AttrName::entry("session.use_cookies"), SemType::Boolean);
        let mut entries = BTreeSet::new();
        entries.insert("datadir".to_string());
        entries.insert("session.use_cookies".to_string());
        let mut values = BTreeMap::new();
        let mut hist = BTreeMap::new();
        hist.insert("/var/lib/mysql".to_string(), 37usize);
        hist.insert("/var/lib\twith\ttabs".to_string(), 1usize);
        hist.insert("multi\nline".to_string(), 2usize);
        values.insert(AttrName::entry("datadir"), hist);
        let mut owner_hist = BTreeMap::new();
        owner_hist.insert("mysql".to_string(), 40usize);
        values.insert(AttrName::entry("datadir").augmented("owner"), owner_hist);
        DetectorSnapshot::new(rules, types, TrainingStats::from_parts(40, entries, values))
    }

    #[test]
    fn render_parse_round_trips_exactly() {
        let snapshot = sample();
        let text = snapshot.render();
        let back = DetectorSnapshot::parse(&text).expect("parses");
        assert_eq!(back, snapshot);
        // Idempotent: parse→render reproduces the bytes.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_tolerates_comments_and_blank_lines() {
        let text = sample().render();
        let commented = format!("# a detector\n\n{}\n# trailing\n", text);
        assert_eq!(DetectorSnapshot::parse(&commented).unwrap(), sample());
    }

    #[test]
    fn parse_rejects_bad_headers_and_sections() {
        assert!(DetectorSnapshot::parse("").is_err());
        assert!(DetectorSnapshot::parse("not-a-snapshot v1\n").is_err());
        assert!(
            DetectorSnapshot::parse("encore-detector-snapshot v999\n[meta]\nsystems=1\n")
                .unwrap_err()
                .contains("unsupported")
        );
        assert!(DetectorSnapshot::parse("encore-detector-snapshot v1\n[nonsense]\n").is_err());
        assert!(DetectorSnapshot::parse("encore-detector-snapshot v1\nstray line\n").is_err());
        // systems= is mandatory.
        assert!(DetectorSnapshot::parse("encore-detector-snapshot v1\n[meta]\n").is_err());
    }

    #[test]
    fn peek_version_reads_the_header_only() {
        assert_eq!(DetectorSnapshot::peek_version(&sample().render()), Ok(1));
        assert_eq!(
            DetectorSnapshot::peek_version("# comment\n\nencore-detector-snapshot v999\n[meta]\n"),
            Ok(999)
        );
        assert!(DetectorSnapshot::peek_version("").is_err());
        assert!(DetectorSnapshot::peek_version("not-a-snapshot v1\n").is_err());
        assert!(DetectorSnapshot::peek_version("encore-detector-snapshot vX\n").is_err());
    }

    #[test]
    fn escape_round_trips_control_and_backslash() {
        for s in ["plain", "a\tb", "a\nb", "back\\slash", "\\t literal", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
        assert!(unescape("bad\\x").is_err());
        assert!(unescape("dangling\\").is_err());
    }
}
