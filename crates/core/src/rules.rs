//! Concrete rules and rule sets.
//!
//! A [`Rule`] is a template instance with the slots bound to concrete
//! attributes, plus the statistics gathered during inference.  Rules render
//! to (and parse from) a line format so that, as in the paper, "the inferred
//! rules are written to a file with detailed description of the attributes
//! involved and the relation type" (§5).

use crate::relation::{evaluate, Applicability, SystemView};
use crate::template::Relation;
use encore_model::AttrName;
use std::fmt;

/// One concrete correlation rule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rule {
    /// First bound attribute (the template's `A` slot).
    pub a: AttrName,
    /// Second bound attribute (the template's `B` slot).
    pub b: AttrName,
    /// The relation.
    pub relation: Relation,
    /// Number of training systems where the rule was applicable.
    pub support: usize,
    /// Fraction of applicable systems where the relation held.
    pub confidence: f64,
}

impl Rule {
    /// Construct a rule with its statistics.
    pub fn new(
        a: AttrName,
        relation: Relation,
        b: AttrName,
        support: usize,
        confidence: f64,
    ) -> Rule {
        Rule {
            a,
            b,
            relation,
            support,
            confidence,
        }
    }

    /// Evaluate the rule on one target system.
    pub fn evaluate(&self, view: SystemView<'_>) -> Applicability {
        evaluate(self.relation, &self.a, &self.b, view)
    }

    /// One-line render: `datadir => user [Owns] sup=187 conf=0.99`.
    ///
    /// Confidence is rendered with the shortest representation that parses
    /// back to the identical `f64` (`{:?}`), so render→parse is lossless —
    /// a requirement once rule sets round-trip through detector snapshots
    /// on disk.  [`Rule::parse`] still accepts the historical fixed-width
    /// `conf=0.990` form.
    pub fn render(&self) -> String {
        format!(
            "{} {} {} [{}] sup={} conf={:?}",
            self.a,
            self.relation.symbol(),
            self.b,
            self.relation,
            self.support,
            self.confidence
        )
    }

    /// Render the unambiguous tab-separated form used by detector
    /// snapshots: `<a-tagged>\t<Relation>\t<b-tagged>\t<sup>\t<conf>`.
    ///
    /// The readable [`Rule::render`] form prints attributes with their
    /// display names, which cannot distinguish an original dotted entry
    /// (php's `session.use_cookies`) from an augmented property; the tagged
    /// form can, so snapshots reload every rule exactly.
    pub fn render_tagged(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:?}",
            self.a.render_tagged(),
            self.relation,
            self.b.render_tagged(),
            self.support,
            self.confidence
        )
    }

    /// Parse the tagged form produced by [`Rule::render_tagged`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem with the line.
    pub fn parse_tagged(line: &str) -> Result<Rule, String> {
        let mut fields = line.split('\t');
        let mut next = |what: &str| fields.next().ok_or_else(|| format!("missing {what} field"));
        let a = AttrName::parse_tagged(next("attribute A")?).map_err(|e| e.to_string())?;
        let relation_name = next("relation")?;
        let relation = Relation::parse_name(relation_name)
            .ok_or_else(|| format!("unknown relation `{relation_name}`"))?;
        let b = AttrName::parse_tagged(next("attribute B")?).map_err(|e| e.to_string())?;
        let support = next("support")?
            .parse::<usize>()
            .map_err(|e| format!("bad support: {e}"))?;
        let confidence = next("confidence")?
            .parse::<f64>()
            .map_err(|e| format!("bad confidence: {e}"))?;
        if fields.next().is_some() {
            return Err("trailing fields after confidence".to_string());
        }
        Ok(Rule {
            a,
            b,
            relation,
            support,
            confidence,
        })
    }

    /// Parse one rendered rule line (the inverse of [`Rule::render`]).
    ///
    /// The operator symbol is ambiguous (`<` serves three relations), so
    /// parsing is anchored on the bracketed relation name.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem with the line.
    pub fn parse(line: &str) -> Result<Rule, String> {
        let line = line.trim();
        let open = line.find('[').ok_or("missing `[Relation]` marker")?;
        let close = line[open..]
            .find(']')
            .map(|i| open + i)
            .ok_or("unclosed `[Relation]` marker")?;
        let relation = Relation::parse_name(&line[open + 1..close])
            .ok_or_else(|| format!("unknown relation `{}`", &line[open + 1..close]))?;
        let head = line[..open].trim();
        let symbol = relation.symbol();
        let (a_text, b_text) = head
            .split_once(&format!(" {symbol} "))
            .ok_or_else(|| format!("expected `A {symbol} B` before the relation marker"))?;
        let a = AttrName::parse(a_text).map_err(|e| e.to_string())?;
        let b = AttrName::parse(b_text).map_err(|e| e.to_string())?;
        let mut support = None;
        let mut confidence = None;
        for token in line[close + 1..].split_whitespace() {
            if let Some(v) = token.strip_prefix("sup=") {
                support = Some(v.parse::<usize>().map_err(|e| format!("bad sup: {e}"))?);
            } else if let Some(v) = token.strip_prefix("conf=") {
                confidence = Some(v.parse::<f64>().map_err(|e| format!("bad conf: {e}"))?);
            }
        }
        Ok(Rule {
            a,
            b,
            relation,
            support: support.ok_or("missing `sup=`")?,
            confidence: confidence.ok_or("missing `conf=`")?,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of learned rules.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in learned order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules using a given relation.
    pub fn by_relation(&self, relation: Relation) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.relation == relation)
    }

    /// Render the whole set, one rule per line (the paper's rule file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Parse a rendered rule file (the inverse of [`RuleSet::render`]).
    /// Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and description of the first
    /// malformed line.
    pub fn parse(text: &str) -> Result<RuleSet, String> {
        let mut rules = RuleSet::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rule = Rule::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            rules.push(rule);
        }
        Ok(rules)
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        RuleSet {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for RuleSet {
    fn extend<T: IntoIterator<Item = Rule>>(&mut self, iter: T) {
        self.rules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RuleSet {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> Rule {
        Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            187,
            0.99,
        )
    }

    #[test]
    fn render_mentions_everything() {
        let s = rule().render();
        assert!(s.contains("datadir"));
        assert!(s.contains("user"));
        assert!(s.contains("Owns"));
        assert!(s.contains("sup=187"));
    }

    #[test]
    fn parse_round_trips_render() {
        let rules: Vec<Rule> = vec![
            rule(),
            Rule::new(
                AttrName::entry("upload_max_filesize"),
                Relation::LessSize,
                AttrName::entry("post_max_size"),
                42,
                0.955,
            ),
            Rule::new(
                AttrName::entry("datadir").augmented("owner"),
                Relation::Equal,
                AttrName::entry("user"),
                10,
                1.0,
            ),
            // Confidence values with no short decimal form must survive
            // exactly: 0.8999 vs 0.900 flips a 0.90 threshold.
            Rule::new(
                AttrName::entry("max_connections"),
                Relation::LessNum,
                AttrName::entry("table_open_cache"),
                187,
                0.899_900_000_000_1,
            ),
        ];
        for r in &rules {
            let back = Rule::parse(&r.render()).unwrap_or_else(|e| panic!("{e}: {}", r.render()));
            assert_eq!(&back, r, "render→parse must be exact: {}", r.render());
        }
        let set: RuleSet = rules.into_iter().collect();
        let reparsed = RuleSet::parse(&format!("# learned rules\n\n{}", set.render())).unwrap();
        assert_eq!(reparsed, set);
    }

    #[test]
    fn parse_accepts_fixed_width_confidence() {
        // The historical `{:.3}` rendering must still load.
        let r = Rule::parse("datadir => user [Owns] sup=187 conf=0.990").unwrap();
        assert_eq!(r.confidence, 0.99);
        assert_eq!(r.support, 187);
    }

    #[test]
    fn tagged_form_round_trips_exactly() {
        let rules = [
            rule(),
            // A dotted original entry: ambiguous in the display form,
            // exact in the tagged form.
            Rule::new(
                AttrName::entry("session.use_cookies"),
                Relation::Equal,
                AttrName::entry("session.use_only_cookies"),
                21,
                0.912_345_678_9,
            ),
            Rule::new(
                AttrName::entry("datadir").augmented("owner"),
                Relation::Equal,
                AttrName::entry("user"),
                10,
                1.0,
            ),
        ];
        for r in &rules {
            let back = Rule::parse_tagged(&r.render_tagged())
                .unwrap_or_else(|e| panic!("{e}: {}", r.render_tagged()));
            assert_eq!(&back, r, "{}", r.render_tagged());
        }
        assert!(Rule::parse_tagged("O:a\tOwns\tO:b\t1").is_err());
        assert!(Rule::parse_tagged("O:a\tNotARel\tO:b\t1\t1.0").is_err());
        assert!(Rule::parse_tagged("O:a\tOwns\tO:b\t1\t1.0\textra").is_err());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Rule::parse("datadir => user").is_err());
        assert!(Rule::parse("datadir => user [NotARel] sup=1 conf=1.0").is_err());
        assert!(Rule::parse("datadir => user [Owns] conf=1.0").is_err());
        assert!(RuleSet::parse("datadir => user [Owns] sup=x conf=1.0").is_err());
    }

    #[test]
    fn ruleset_collects_and_filters() {
        let set: RuleSet = vec![
            rule(),
            Rule::new(
                AttrName::entry("a"),
                Relation::LessSize,
                AttrName::entry("b"),
                10,
                1.0,
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.by_relation(Relation::Owns).count(), 1);
        assert_eq!(set.render().lines().count(), 2);
    }
}
