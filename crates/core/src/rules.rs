//! Concrete rules and rule sets.
//!
//! A [`Rule`] is a template instance with the slots bound to concrete
//! attributes, plus the statistics gathered during inference.  Rules render
//! to (and parse from) a line format so that, as in the paper, "the inferred
//! rules are written to a file with detailed description of the attributes
//! involved and the relation type" (§5).

use crate::relation::{evaluate, Applicability, SystemView};
use crate::template::Relation;
use encore_model::AttrName;
use std::fmt;

/// One concrete correlation rule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rule {
    /// First bound attribute (the template's `A` slot).
    pub a: AttrName,
    /// Second bound attribute (the template's `B` slot).
    pub b: AttrName,
    /// The relation.
    pub relation: Relation,
    /// Number of training systems where the rule was applicable.
    pub support: usize,
    /// Fraction of applicable systems where the relation held.
    pub confidence: f64,
}

impl Rule {
    /// Construct a rule with its statistics.
    pub fn new(
        a: AttrName,
        relation: Relation,
        b: AttrName,
        support: usize,
        confidence: f64,
    ) -> Rule {
        Rule {
            a,
            b,
            relation,
            support,
            confidence,
        }
    }

    /// Evaluate the rule on one target system.
    pub fn evaluate(&self, view: SystemView<'_>) -> Applicability {
        evaluate(self.relation, &self.a, &self.b, view)
    }

    /// One-line render: `datadir => user [Owns] sup=187 conf=0.99`.
    pub fn render(&self) -> String {
        format!(
            "{} {} {} [{}] sup={} conf={:.3}",
            self.a,
            self.relation.symbol(),
            self.b,
            self.relation,
            self.support,
            self.confidence
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of learned rules.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in learned order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules using a given relation.
    pub fn by_relation(&self, relation: Relation) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.relation == relation)
    }

    /// Render the whole set, one rule per line (the paper's rule file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        RuleSet {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for RuleSet {
    fn extend<T: IntoIterator<Item = Rule>>(&mut self, iter: T) {
        self.rules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RuleSet {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> Rule {
        Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            187,
            0.99,
        )
    }

    #[test]
    fn render_mentions_everything() {
        let s = rule().render();
        assert!(s.contains("datadir"));
        assert!(s.contains("user"));
        assert!(s.contains("Owns"));
        assert!(s.contains("sup=187"));
    }

    #[test]
    fn ruleset_collects_and_filters() {
        let set: RuleSet = vec![
            rule(),
            Rule::new(
                AttrName::entry("a"),
                Relation::LessSize,
                AttrName::entry("b"),
                10,
                1.0,
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.by_relation(Relation::Owns).count(), 1);
        assert_eq!(set.render().lines().count(), 2);
    }
}
