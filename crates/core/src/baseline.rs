//! The comparison detectors of Table 8.
//!
//! * [`Baseline`] — the state-of-the-art value-comparison approach
//!   (PeerPressure-style, citation 41): each configuration entry is an isolated
//!   string; a value deviating from everything seen in training is flagged.
//!   No environment data, no types, no correlations.
//! * [`BaselineEnv`] — the baseline enhanced with EnCore's type-based
//!   environment integration: value comparison runs over the augmented
//!   attribute set, and type violations are checked — but no correlation
//!   rules are learned ("Baseline+Env" in the paper).

use crate::detect::{Report, Warning, WarningKind};
use crate::train::TrainingSet;
use crate::types::TypeMap;
use encore_assemble::{AssembleError, Assembler};
use encore_model::{AppKind, AttrName, Row};
use encore_sysimage::SystemImage;
use std::collections::{BTreeMap, BTreeSet};

/// Shared value-comparison machinery.
#[derive(Debug, Clone, Default)]
struct ValueStats {
    values: BTreeMap<AttrName, BTreeSet<String>>,
}

impl ValueStats {
    fn from_rows<'a>(rows: impl Iterator<Item = &'a Row>) -> ValueStats {
        let mut stats = ValueStats::default();
        for row in rows {
            for (attr, value) in row.iter() {
                if !value.is_absent() {
                    stats
                        .values
                        .entry(attr.clone())
                        .or_default()
                        .insert(value.render());
                }
            }
        }
        stats
    }

    fn compare(&self, row: &Row, report: &mut Vec<Warning>) {
        for (attr, value) in row.iter() {
            if value.is_absent() {
                continue;
            }
            // PeerPressure-style comparison scores a value against the
            // peers' distribution *of the same entry*.  An entry name never
            // seen in training has no peer distribution, so it is silently
            // skipped — misspelled names are invisible to value comparison
            // (entry-name checking is an EnCore check, §6).
            match self.values.get(attr) {
                Some(seen) if !seen.contains(&value.render()) => {
                    report.push(Warning::new_suspicious(
                        attr.clone(),
                        value.render(),
                        seen.len(),
                    ));
                }
                _ => {}
            }
        }
    }
}

impl Warning {
    fn new_suspicious(attr: AttrName, value: String, cardinality: usize) -> Warning {
        Warning::internal(
            WarningKind::SuspiciousValue,
            attr,
            format!("value `{value}` never seen in training"),
            40.0 / cardinality.max(1) as f64,
        )
    }
}

/// PeerPressure-style pure value comparison (no environment, no types, no
/// correlations).
#[derive(Debug)]
pub struct Baseline {
    stats: ValueStats,
    assembler: Assembler,
}

impl Baseline {
    /// Train on raw (non-augmented) configuration values only.
    pub fn train(app: AppKind, images: &[SystemImage]) -> Result<Baseline, AssembleError> {
        let assembler = Assembler::new().without_augmentation();
        let training = TrainingSet::assemble_with(&assembler, app, images)?;
        Ok(Baseline {
            stats: ValueStats::from_rows(training.systems().iter().map(|(r, _)| r)),
            assembler,
        })
    }

    /// Check a target image by value comparison alone.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures.
    pub fn check_image(&self, app: AppKind, image: &SystemImage) -> Result<Report, AssembleError> {
        let row = self.assembler.assemble_image(app, image)?;
        let mut warnings = Vec::new();
        self.stats.compare(&row, &mut warnings);
        Ok(Report::from_warnings(warnings))
    }
}

/// Baseline plus type-based environment integration (but no correlation
/// rules) — "Baseline+Env" in Table 8.
#[derive(Debug)]
pub struct BaselineEnv {
    stats: ValueStats,
    types: TypeMap,
    assembler: Assembler,
}

impl BaselineEnv {
    /// Train on environment-augmented values with type inference.
    pub fn train(app: AppKind, images: &[SystemImage]) -> Result<BaselineEnv, AssembleError> {
        let assembler = Assembler::new();
        let training = TrainingSet::assemble_with(&assembler, app, images)?;
        Ok(BaselineEnv {
            stats: ValueStats::from_rows(training.systems().iter().map(|(r, _)| r)),
            types: training.types().clone(),
            assembler,
        })
    }

    /// Check a target image: value comparison over augmented attributes plus
    /// type violations.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures.
    pub fn check_image(&self, app: AppKind, image: &SystemImage) -> Result<Report, AssembleError> {
        let row = self.assembler.assemble_image(app, image)?;
        let mut warnings = Vec::new();
        self.stats.compare(&row, &mut warnings);
        // Type violations, as in the full detector.
        let inference = self.assembler.inference();
        for (attr, value) in row.iter() {
            if !attr.is_original() || value.is_absent() {
                continue;
            }
            let expected = self.types.type_of(attr);
            if expected.is_trivial() {
                continue;
            }
            let rendered = value.render();
            let inferred = inference.infer(&rendered, image);
            if inferred != expected {
                warnings.push(Warning::internal(
                    WarningKind::TypeViolation,
                    attr.clone(),
                    format!("value `{rendered}` is {inferred}, trained type is {expected}"),
                    95.0,
                ));
            }
        }
        Ok(Report::from_warnings(warnings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!("[mysqld]\nuser = mysql\ndatadir = {datadir}\n"),
                    )
                    .build()
            })
            .collect()
    }

    /// The Figure 1(a)-style failure: a path entry pointing at a regular
    /// file.  Value comparison alone cannot see it (paths vary in training);
    /// the type-aware baseline can.
    #[test]
    fn env_baseline_sees_type_errors_plain_baseline_does_not() {
        let images = fleet(10);
        let target = SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .file("/var/lib/data", "mysql", "mysql", 0o644, "not a dir")
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/data\n",
            )
            .build();

        let plain = Baseline::train(AppKind::Mysql, &images).unwrap();
        let report = plain.check_image(AppKind::Mysql, &target).unwrap();
        // Plain baseline flags datadir only as a suspicious value (it is a
        // new string) — it cannot know the value is a *file*; with many
        // distinct training paths its ICF rank is low.
        assert!(report
            .warnings()
            .iter()
            .all(|w| w.kind() != WarningKind::TypeViolation));

        let env = BaselineEnv::train(AppKind::Mysql, &images).unwrap();
        let report = env.check_image(AppKind::Mysql, &target).unwrap();
        // §6: "the detection of the error in Figure 1(a) is directly
        // attributed to the extended attribute extension_dir.type — all the
        // values in the training set have type directory, but the value in
        // the target system has type regular file."  The augmented
        // `datadir.type = file` shows up as a never-seen value.
        let sv = report
            .warnings()
            .iter()
            .find(|w| {
                w.kind() == WarningKind::SuspiciousValue && w.attr().to_string() == "datadir.type"
            })
            .expect("suspicious datadir.type");
        assert!(sv.detail().contains("file"));
    }

    #[test]
    fn neither_baseline_checks_correlations() {
        let images = fleet(10);
        // Wrong owner: correlation-only failure (values all in distribution,
        // except augmented owner attr which BaselineEnv can flag as value).
        let target = SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .user("backup", 34, &["backup"])
            .dir("/var/lib/mysql0", "backup", "backup", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\n",
            )
            .build();
        let plain = Baseline::train(AppKind::Mysql, &images).unwrap();
        let report = plain.check_image(AppKind::Mysql, &target).unwrap();
        assert!(report.is_empty(), "{report:?}");
        // BaselineEnv sees `datadir.owner = backup` as an unseen value.
        let env = BaselineEnv::train(AppKind::Mysql, &images).unwrap();
        let report = env.check_image(AppKind::Mysql, &target).unwrap();
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.kind() == WarningKind::SuspiciousValue));
    }

    #[test]
    fn misspelled_entries_invisible_to_value_comparison() {
        let images = fleet(6);
        let target = SystemImage::builder("t")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql0", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\ndattadir = /x\n",
            )
            .build();
        // `dattadir` has no peer distribution, so value comparison skips it
        // — misspelling detection is an EnCore-only check (§6).
        for report in [
            Baseline::train(AppKind::Mysql, &images)
                .unwrap()
                .check_image(AppKind::Mysql, &target)
                .unwrap(),
            BaselineEnv::train(AppKind::Mysql, &images)
                .unwrap()
                .check_image(AppKind::Mysql, &target)
                .unwrap(),
        ] {
            assert!(
                report
                    .warnings()
                    .iter()
                    .all(|w| w.kind() != WarningKind::UnknownEntry),
                "{report:?}"
            );
            assert!(!report.detects("dattadir"));
        }
    }
}
