//! Template eligibility analysis over a corpus.
//!
//! EnCore's search is *type-directed* (Finding 3, §5.1): a template slot
//! only accepts attributes of a matching [`SemType`].  This module is the
//! single source of truth for what "eligible" means — which attributes fit
//! each slot, and which `(a, b)` pairs a template would actually evaluate —
//! shared by the inference engine ([`crate::infer`]) and the `encore-check`
//! corpus analyzer, so the two can never drift.
//!
//! On top of the type restriction, the [`StatsCache`] presence bitsets give
//! a cheap *liveness* test: a pair whose attributes never co-occur in any
//! training row can never be applicable, so work spent evaluating it is
//! dead.  [`analyze_templates`] reports per-template liveness (the
//! `encore-lint` dead-template diagnostics), and the inference engine uses
//! the same masks to skip dead `(template, a-chunk)` units before they
//! reach the worker pool.

use crate::stats::StatsCache;
use crate::template::{Relation, Template};
use encore_model::{AttrName, SemType};

/// Sorted attribute indices eligible for a slot type, served from the
/// per-type buckets the [`StatsCache`] inverts out of its resolved types —
/// a bucket lookup instead of a type test over every attribute.
///
/// `Str` slots accept only genuinely string-typed attributes — allowing
/// every attribute in `Str` slots would reintroduce the quadratic blow-up
/// the type restriction exists to avoid.
pub(crate) fn eligible_indices(cache: &StatsCache, slot_ty: SemType) -> Vec<usize> {
    match slot_ty {
        // Plain numbers and ports compare; sizes have their own template
        // (comparing seconds against bytes is never a correlation).  The
        // merge keeps indices ascending, so the binding order matches the
        // sorted-attribute filter this replaced.
        SemType::Number => {
            let (nums, ports) = (
                cache.type_bucket(SemType::Number),
                cache.type_bucket(SemType::PortNumber),
            );
            let mut merged = Vec::with_capacity(nums.len() + ports.len());
            let (mut i, mut j) = (0, 0);
            while i < nums.len() || j < ports.len() {
                match (nums.get(i), ports.get(j)) {
                    (Some(&n), Some(&p)) if n < p => {
                        merged.push(n);
                        i += 1;
                    }
                    (Some(_), Some(&p)) => {
                        merged.push(p);
                        j += 1;
                    }
                    (Some(&n), None) => {
                        merged.push(n);
                        i += 1;
                    }
                    (None, Some(&p)) => {
                        merged.push(p);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop guard"),
                }
            }
            merged
        }
        other => cache.type_bucket(other).to_vec(),
    }
}

/// The b-side attribute indices the instantiation loop enumerates for the
/// a-side attribute at `a_index` — shared by [`crate::infer`] and
/// [`analyze_templates`] so the two enumerations can never drift.
///
/// For a same-type generic template this is the type-bucket join: only b's
/// of `a`'s own type, since [`pair_considered`] rejects every cross-type
/// pair anyway.  The bucket is an ascending sub-sequence of the full
/// eligible-B list, so the surviving pair order (and every pair count) is
/// identical to filtering the cross product.  [`pair_considered`] remains
/// the authority on each enumerated pair.
pub(crate) fn partner_indices<'c>(
    cache: &'c StatsCache,
    generic: bool,
    eligible_b: &'c [usize],
    a_index: usize,
) -> &'c [usize] {
    if generic {
        cache.type_bucket(cache.type_at(a_index))
    } else {
        eligible_b
    }
}

/// Whether a template is *same-type generic*: the paper's `==` and `=~`
/// templates read "an entry should equal another entry *of the same type*",
/// so a `[A:Str] == [B:Str]` spelling instantiates over every type, with the
/// pair constrained to matching types.
pub(crate) fn is_same_type_generic(template: &Template) -> bool {
    template.relation.signature().same_type_generic
        && template.a.ty == SemType::Str
        && template.b.ty == SemType::Str
}

/// Whether the instantiation loop would evaluate the pair `(a, b)` for this
/// template at all — the structural filters applied before any row is
/// touched.  Shared by [`crate::infer`] and the eligibility analysis.
pub(crate) fn pair_considered(
    template: &Template,
    generic: bool,
    cache: &StatsCache,
    a: &AttrName,
    b: &AttrName,
) -> bool {
    if a == b {
        return false;
    }
    // Rules must anchor on at least one original configuration entry.
    // Augmented attributes of ownership-coupled paths form large
    // equivalence cliques (X.owner == Y.owner == ... for every pair); the
    // original-entry rules (X.owner == user, X => user) already capture
    // that structure without the quadratic echo.
    if !a.is_original() && !b.is_original() {
        return false;
    }
    // Ownership/accessibility rules bind the *user entry* itself (the
    // paper's `DataDir => user`); letting the user slot range over
    // augmented `.owner` mirrors re-derives each ownership clique
    // transitively.
    if matches!(template.relation, Relation::Owns | Relation::NotAccessible) && !b.is_original() {
        return false;
    }
    if generic {
        let (ta, tb) = (cache.type_of(a), cache.type_of(b));
        // Same-type restriction, and equality over booleans/enums is
        // vacuous co-occurrence rather than correlation — skip it,
        // matching the spirit of the paper's type-based selection.
        if ta != tb || matches!(ta, SemType::Boolean | SemType::Enum) {
            return false;
        }
        // Equality is symmetric: keep the canonical ordering only.
        if template.relation == Relation::Equal && a > b {
            return false;
        }
        // `=~` quantifies over an entry *family* (occurrence-indexed
        // attributes like `LoadModule#n/arg1` or `Directory#n/section`);
        // a singleton B degenerates to `==`, so require a family.
        if template.relation == Relation::MemberEq && !b.base().contains('#') {
            return false;
        }
    }
    // Owner relations between an entry and its own augmented attribute are
    // tautologies (datadir.owner always owns datadir); skip same-base pairs
    // for env-backed relations.
    if a.base() == b.base()
        && matches!(
            template.relation,
            Relation::Owns | Relation::Equal | Relation::MemberEq
        )
    {
        return false;
    }
    true
}

/// Per-template eligibility under one corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct EligibilityReport {
    /// The analyzed template.
    pub template: Template,
    /// Attributes eligible for slot A.
    pub eligible_a: usize,
    /// Attributes eligible for slot B.
    pub eligible_b: usize,
    /// Pairs surviving the structural filters (types, anchoring, symmetry).
    pub considered_pairs: usize,
    /// Considered pairs whose attributes co-occur in at least one row —
    /// the pairs that can possibly produce a candidate rule.
    pub live_pairs: usize,
}

impl EligibilityReport {
    /// A *dead* template instantiates nothing under this corpus: the full
    /// O(pairs × rows) pass is wasted work and the template deserves a
    /// diagnostic.
    pub fn is_dead(&self) -> bool {
        self.live_pairs == 0
    }
}

/// Analyze each template's eligibility under the corpus captured by
/// `cache`.  The pair accounting matches the inference engine exactly —
/// both sides call the same slot and pair predicates.
pub fn analyze_templates(templates: &[Template], cache: &StatsCache) -> Vec<EligibilityReport> {
    templates
        .iter()
        .map(|template| {
            let attrs = cache.attributes();
            let generic = is_same_type_generic(template);
            let (eligible_a, eligible_b): (Vec<usize>, Vec<usize>) = if generic {
                ((0..attrs.len()).collect(), (0..attrs.len()).collect())
            } else {
                (
                    eligible_indices(cache, template.a.ty),
                    eligible_indices(cache, template.b.ty),
                )
            };
            let mut considered = 0usize;
            let mut live = 0usize;
            for &ai in &eligible_a {
                let a = &attrs[ai];
                for &bi in partner_indices(cache, generic, &eligible_b, ai) {
                    let b = &attrs[bi];
                    if !pair_considered(template, generic, cache, a, b) {
                        continue;
                    }
                    considered += 1;
                    if cache.co_occurs(a, b) {
                        live += 1;
                    }
                }
            }
            EligibilityReport {
                template: template.clone(),
                eligible_a: eligible_a.len(),
                eligible_b: eligible_b.len(),
                considered_pairs: considered,
                live_pairs: live,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TrainingSet;
    use encore_model::AppKind;
    use encore_sysimage::SystemImage;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!("[mysqld]\nuser = mysql\ndatadir = {datadir}\n"),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn ownership_template_is_live_on_mysql_fleet() {
        let ts = TrainingSet::assemble(AppKind::Mysql, &fleet(8)).unwrap();
        let cache = ts.stats_cache();
        let templates = vec![Template::new(
            SemType::FilePath,
            Relation::Owns,
            SemType::UserName,
        )];
        let reports = analyze_templates(&templates, &cache);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].is_dead(), "{:?}", reports[0]);
        assert!(reports[0].live_pairs > 0);
        assert!(reports[0].live_pairs <= reports[0].considered_pairs);
    }

    #[test]
    fn type_starved_template_is_dead() {
        let ts = TrainingSet::assemble(AppKind::Mysql, &fleet(8)).unwrap();
        let cache = ts.stats_cache();
        // The MySQL corpus has no URL-typed attributes.
        let templates = vec![Template::new(SemType::Url, Relation::Equal, SemType::Url)];
        let reports = analyze_templates(&templates, &cache);
        assert!(reports[0].is_dead(), "{:?}", reports[0]);
        assert_eq!(reports[0].eligible_a, 0);
    }

    #[test]
    fn bucket_eligibility_matches_filter_reference() {
        let ts = TrainingSet::assemble(AppKind::Mysql, &fleet(8)).unwrap();
        let cache = ts.stats_cache();
        for ty in SemType::PRIORITY {
            let via_buckets = eligible_indices(&cache, ty);
            let reference: Vec<usize> = cache
                .attributes()
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    let t = cache.type_of(a);
                    match ty {
                        SemType::Number => matches!(t, SemType::Number | SemType::PortNumber),
                        other => t == other,
                    }
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(via_buckets, reference, "{ty}");
        }
    }

    #[test]
    fn type_bucket_join_matches_filtered_cross_product() {
        // For generic templates the bucket join must enumerate exactly the
        // pairs surviving `pair_considered` over the full cross product, in
        // the same order — the invariant that keeps the evaluated-pair
        // stream (and `infer.pairs.evaluated`) byte-identical.
        let ts = TrainingSet::assemble(AppKind::Mysql, &fleet(8)).unwrap();
        let cache = ts.stats_cache();
        let attrs = cache.attributes();
        let all: Vec<usize> = (0..attrs.len()).collect();
        for template in Template::predefined() {
            if !is_same_type_generic(&template) {
                continue;
            }
            for &ai in &all {
                let survives = |&&bi: &&usize| {
                    pair_considered(&template, true, &cache, &attrs[ai], &attrs[bi])
                };
                let joined: Vec<usize> = partner_indices(&cache, true, &all, ai)
                    .iter()
                    .filter(survives)
                    .copied()
                    .collect();
                let crossed: Vec<usize> = all.iter().filter(survives).copied().collect();
                assert_eq!(joined, crossed, "template {template:?} a={}", attrs[ai]);
            }
        }
    }

    #[test]
    fn pair_filters_reject_self_and_augmented_pairs() {
        let ts = TrainingSet::assemble(AppKind::Mysql, &fleet(4)).unwrap();
        let cache = ts.stats_cache();
        let t = Template::new(SemType::FilePath, Relation::Owns, SemType::UserName);
        let a = AttrName::entry("datadir");
        assert!(!pair_considered(&t, false, &cache, &a, &a));
        // Owns must bind an original user entry, not an augmented mirror.
        let aug = AttrName::entry("pid_file").augmented("owner");
        assert!(!pair_considered(&t, false, &cache, &a, &aug));
        assert!(pair_considered(
            &t,
            false,
            &cache,
            &a,
            &AttrName::entry("user")
        ));
    }
}
