//! EnCore — environment- and correlation-aware misconfiguration detection.
//!
//! This crate is the paper's primary contribution (§3, Figure 2): given a
//! training set of configured systems whose data has been assembled and
//! environment-enriched by `encore-assemble`, it
//!
//! 1. learns *concrete correlation rules* from *rule templates* — typed
//!    relation patterns such as "a UserName entry owns a FilePath entry"
//!    ([`template`], [`infer`]),
//! 2. filters candidate rules by support, confidence, and value entropy
//!    ([`filter`]),
//! 3. checks target systems for anomalies along four axes: unknown entry
//!    names, correlation-rule violations, data-type violations, and
//!    suspicious values ([`detect`]),
//! 4. provides the comparison detectors of Table 8: a PeerPressure-style
//!    value-comparison [`baseline::Baseline`] and the environment-enhanced
//!    [`baseline::BaselineEnv`] ([`baseline`]).
//!
//! Customization (§5.3) is supported at every level: user templates, custom
//! relations with programmatic validators, and customization files
//! ([`customize`]).
//!
//! # Examples
//!
//! Training on a small hand-built fleet and checking a broken system:
//!
//! ```
//! use encore::prelude::*;
//! use encore_model::AppKind;
//! use encore_sysimage::SystemImage;
//!
//! fn image(id: &str, owner: &str) -> SystemImage {
//!     SystemImage::builder(id)
//!         .user("mysql", 27, &["mysql"])
//!         .user("backup", 34, &["backup"])
//!         .dir("/var/lib/mysql", owner, owner, 0o700)
//!         .file("/etc/mysql/my.cnf", "root", "root", 0o644,
//!               "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\n")
//!         .build()
//! }
//!
//! let fleet: Vec<SystemImage> =
//!     (0..12).map(|i| image(&format!("img-{i}"), "mysql")).collect();
//! let training = TrainingSet::assemble(AppKind::Mysql, &fleet)?;
//! // This tiny fleet is all-defaults, so every value distribution is
//! // below the entropy threshold (the paper notes the same about pristine
//! // template images, §7.3) — learn without the entropy filter.
//! let options = LearnOptions {
//!     thresholds: FilterThresholds::default().without_entropy(),
//!     ..LearnOptions::default()
//! };
//! let engine = EnCore::learn(&training, &options);
//! let target = image("broken", "backup"); // datadir owned by wrong user
//! let report = engine.check_image(AppKind::Mysql, &target)?;
//! assert!(report
//!     .warnings()
//!     .iter()
//!     .any(|w| w.kind() == WarningKind::CorrelationViolation));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cross;
pub mod customize;
pub mod detect;
pub mod eligibility;
pub mod filter;
pub mod infer;
pub mod obs;
pub mod pool;
pub mod relation;
pub mod rules;
pub mod snapshot;
pub mod stats;
pub mod template;
pub mod train;
pub mod types;
pub mod watch;

pub use detect::{AnomalyDetector, FleetOptions, Report, TrainingStats, Warning, WarningKind};
pub use eligibility::{analyze_templates, EligibilityReport};
pub use filter::FilterThresholds;
pub use infer::{InferError, InferOptions, InferenceStats, RuleInference};
pub use rules::{Rule, RuleSet};
pub use snapshot::DetectorSnapshot;
pub use stats::StatsCache;
pub use template::{Relation, RelationSignature, Slot, Template, TemplateTypeError};
pub use train::TrainingSet;
pub use types::TypeMap;
pub use watch::{CycleOutcome, FileSig, StopFlag, WatchOptions, Watcher};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::baseline::{Baseline, BaselineEnv};
    pub use crate::detect::{AnomalyDetector, FleetOptions, Report, Warning, WarningKind};
    pub use crate::filter::FilterThresholds;
    pub use crate::rules::{Rule, RuleSet};
    pub use crate::snapshot::DetectorSnapshot;
    pub use crate::template::{Relation, Template};
    pub use crate::train::TrainingSet;
    pub use crate::watch::{CycleOutcome, FileSig, StopFlag, WatchOptions, Watcher};
    pub use crate::{EnCore, LearnOptions};
}

use encore_model::AppKind;
use encore_sysimage::SystemImage;

/// Options controlling rule learning.
#[derive(Debug, Clone)]
pub struct LearnOptions {
    /// Templates to instantiate; defaults to the 11 predefined templates of
    /// Table 6.
    pub templates: Vec<Template>,
    /// Rule filters; defaults to the paper's §7.3 thresholds (confidence
    /// 90%, support 10% of the training images, entropy 0.325).
    pub thresholds: FilterThresholds,
    /// Inference worker threads; `None` uses all available parallelism.
    /// The learned rules are identical for every worker count.
    pub workers: Option<usize>,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            templates: Template::predefined(),
            thresholds: FilterThresholds::default(),
            workers: None,
        }
    }
}

/// The assembled EnCore engine: learned rules + training statistics.
///
/// Produced by [`EnCore::learn`]; "since the checking and the learning are
/// cleanly separated, the learned rules can be reused to check different
/// systems" (§3).
#[derive(Debug)]
pub struct EnCore {
    detector: AnomalyDetector,
    stats: InferenceStats,
}

impl EnCore {
    /// Learn configuration rules from a training set.
    ///
    /// # Panics
    ///
    /// Panics if an inference worker panics; [`EnCore::try_learn`] surfaces
    /// that recoverably instead.
    pub fn learn(training: &TrainingSet, options: &LearnOptions) -> EnCore {
        EnCore::try_learn(training, options).expect("inference worker panicked")
    }

    /// Learn configuration rules, surfacing inference-worker panics as a
    /// recoverable [`InferError`].
    ///
    /// # Errors
    ///
    /// Returns [`InferError::WorkerPanicked`] if a template-instantiation
    /// work unit panics.
    pub fn try_learn(training: &TrainingSet, options: &LearnOptions) -> Result<EnCore, InferError> {
        let inference = RuleInference::new(options.templates.clone());
        let infer_options = InferOptions {
            workers: options.workers,
            ..InferOptions::default()
        };
        let (rules, stats) =
            inference.try_infer_with(training, &options.thresholds, &infer_options)?;
        Ok(EnCore {
            detector: AnomalyDetector::new(training, rules),
            stats,
        })
    }

    /// The learned rule set.
    pub fn rules(&self) -> &RuleSet {
        self.detector.rules()
    }

    /// Statistics from the inference run (candidates seen, rules kept,
    /// filter attributions — the data behind Tables 12 and 13).
    pub fn stats(&self) -> &InferenceStats {
        &self.stats
    }

    /// The underlying detector.
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// Consume the engine, keeping only the detector (serving hosts don't
    /// need the inference statistics).
    pub fn into_detector(self) -> AnomalyDetector {
        self.detector
    }

    /// Capture the learned state as a persistable [`DetectorSnapshot`]
    /// ("train once, detect many": the snapshot reconstructs an
    /// [`AnomalyDetector`] without the training corpus).
    pub fn snapshot(&self) -> DetectorSnapshot {
        self.detector.snapshot()
    }

    /// Check a target image: assemble it, then run all four anomaly checks.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures (missing or unparseable configuration).
    pub fn check_image(
        &self,
        app: AppKind,
        image: &SystemImage,
    ) -> Result<Report, encore_assemble::AssembleError> {
        self.detector.check_image(app, image)
    }

    /// Check a whole target fleet in one batch (see
    /// [`AnomalyDetector::check_fleet`]).
    ///
    /// # Panics
    ///
    /// Panics if a detection worker panics;
    /// [`AnomalyDetector::try_check_fleet`] surfaces that recoverably.
    pub fn check_fleet(
        &self,
        app: AppKind,
        images: &[SystemImage],
        options: &FleetOptions,
    ) -> Vec<Result<Report, encore_assemble::AssembleError>> {
        self.detector.check_fleet(app, images, options)
    }
}
