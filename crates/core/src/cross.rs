//! Cross-component misconfiguration detection — the paper's first future
//! work item (§9): "the idea of integrating environment information can be
//! naturally extended to deal with cross-component misconfigurations: the
//! configuration of other components can be seen as one kind of
//! environment factors."
//!
//! A [`CrossAssembler`] assembles *several* applications living on one
//! image into a single attribute row, prefixing each entry with its
//! component (`php:user`, `apache:User`).  The existing template machinery
//! then learns cross-component rules — e.g. that the PHP runtime user
//! equals the Apache `User`, or that PHP's `doc_root` matches Apache's
//! `DocumentRoot` — and the ordinary detector checks them.
//!
//! # Examples
//!
//! ```no_run
//! use encore::cross::CrossAssembler;
//! use encore::prelude::*;
//! use encore_model::AppKind;
//! # let images: Vec<encore_sysimage::SystemImage> = vec![];
//!
//! let cross = CrossAssembler::new(vec![AppKind::Apache, AppKind::Php]);
//! let training = cross.assemble_training_set(&images)?;
//! let engine = EnCore::learn(&training, &LearnOptions::default());
//! # Ok::<(), encore_assemble::AssembleError>(())
//! ```

use crate::train::TrainingSet;
use crate::types::TypeMap;
use encore_assemble::{AssembleError, Assembler};
use encore_model::{AppKind, AttrName, Augmentation, Row, SemType};
use encore_sysimage::SystemImage;
use std::collections::BTreeMap;

/// Prefix an attribute with its component name (`php:user`).
/// System-wide attributes (`Sys.*`, `OS.*`, hardware) describe the shared
/// host and keep their names.
pub fn prefixed(app: AppKind, attr: &AttrName) -> AttrName {
    match attr.augmentation() {
        Augmentation::SystemWide => attr.clone(),
        Augmentation::Original => AttrName::entry(format!("{}:{}", app.name(), attr.base())),
        Augmentation::EnvProperty => AttrName::entry(format!("{}:{}", app.name(), attr.base()))
            .augmented(attr.suffix().unwrap_or_default()),
    }
}

/// Assembles multiple components of one image into a single row.
#[derive(Debug)]
pub struct CrossAssembler {
    apps: Vec<AppKind>,
    assembler: Assembler,
}

impl CrossAssembler {
    /// Cross-assembler over the given components.
    pub fn new(apps: Vec<AppKind>) -> CrossAssembler {
        CrossAssembler {
            apps,
            assembler: Assembler::new(),
        }
    }

    /// The components being assembled.
    pub fn apps(&self) -> &[AppKind] {
        &self.apps
    }

    /// Assemble every component of one image into a merged, prefixed row,
    /// also returning the per-entry types under their prefixed names.
    ///
    /// # Errors
    ///
    /// Fails if any component's configuration is missing or unparseable —
    /// a cross-component check needs all its components.
    pub fn assemble_image(
        &self,
        image: &SystemImage,
    ) -> Result<(Row, BTreeMap<AttrName, SemType>), AssembleError> {
        let mut merged = Row::new(image.id());
        let mut types = BTreeMap::new();
        for &app in &self.apps {
            let assembled = self.assembler.assemble_system(app, image)?;
            for (attr, value) in assembled.row.iter() {
                merged.set(prefixed(app, attr), value.clone());
            }
            for (attr, ty) in &assembled.types {
                types.insert(prefixed(app, attr), *ty);
            }
        }
        Ok((merged, types))
    }

    /// Assemble a cross-component training set.  Images missing any
    /// component are skipped.
    ///
    /// # Errors
    ///
    /// Returns the first per-image error only when *no* image assembles.
    pub fn assemble_training_set(
        &self,
        images: &[SystemImage],
    ) -> Result<TrainingSet, AssembleError> {
        let mut systems = Vec::new();
        let mut votes: BTreeMap<AttrName, Vec<SemType>> = BTreeMap::new();
        let mut first_err = None;
        for image in images {
            match self.assemble_image(image) {
                Ok((row, types)) => {
                    for (attr, ty) in types {
                        votes.entry(attr).or_default().push(ty);
                    }
                    systems.push((row, image.clone()));
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if systems.is_empty() {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        let primary = self.apps.first().copied().unwrap_or(AppKind::Apache);
        Ok(TrainingSet::from_parts(
            primary,
            systems,
            TypeMap::merge_votes(&votes),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::template::Relation;

    /// A LAMP-ish image: Apache and PHP configured coherently (the PHP
    /// runtime user is Apache's `User`).
    fn lamp_image(id: &str, web_user: &str) -> SystemImage {
        SystemImage::builder(id)
            .user(web_user, 48, &[web_user])
            .dir("/var/www/html", web_user, web_user, 0o755)
            .dir("/usr/lib/php/modules", "root", "root", 0o755)
            .file(
                "/etc/httpd/conf/httpd.conf",
                "root",
                "root",
                0o644,
                &format!("User {web_user}\nDocumentRoot \"/var/www/html\"\nListen 80\n"),
            )
            .file(
                "/etc/php.ini",
                "root",
                "root",
                0o644,
                &format!("[PHP]\nuser = {web_user}\nextension_dir = /usr/lib/php/modules\n"),
            )
            .service("http", 80)
            .build()
    }

    #[test]
    fn prefixing_keeps_system_attrs_shared() {
        let apache_user = AttrName::entry("User");
        let p = prefixed(AppKind::Apache, &apache_user);
        assert_eq!(p.to_string(), "apache:User");
        let sys = AttrName::system("Sys.HostName");
        assert_eq!(prefixed(AppKind::Php, &sys), sys);
        let aug = AttrName::entry("datadir").augmented("owner");
        assert_eq!(
            prefixed(AppKind::Mysql, &aug).to_string(),
            "mysql:datadir.owner"
        );
    }

    #[test]
    fn learns_cross_component_user_equality() {
        let users = ["apache", "www-data", "httpd", "web"];
        let fleet: Vec<SystemImage> = (0..16)
            .map(|i| lamp_image(&format!("lamp-{i}"), users[i % users.len()]))
            .collect();
        let cross = CrossAssembler::new(vec![AppKind::Apache, AppKind::Php]);
        let training = cross.assemble_training_set(&fleet).unwrap();
        assert_eq!(training.len(), 16);
        let engine = EnCore::learn(&training, &LearnOptions::default());
        let has_user_rule = engine.rules().by_relation(Relation::Equal).any(|r| {
            let pair = format!("{} {}", r.a, r.b);
            pair.contains("apache:User") && pair.contains("php:user")
        });
        assert!(
            has_user_rule,
            "expected apache:User == php:user, got:\n{}",
            engine.rules().render()
        );
    }

    #[test]
    fn detects_cross_component_mismatch() {
        let users = ["apache", "www-data", "httpd", "web"];
        let fleet: Vec<SystemImage> = (0..16)
            .map(|i| lamp_image(&format!("lamp-{i}"), users[i % users.len()]))
            .collect();
        let cross = CrossAssembler::new(vec![AppKind::Apache, AppKind::Php]);
        let training = cross.assemble_training_set(&fleet).unwrap();
        let engine = EnCore::learn(&training, &LearnOptions::default());

        // Target: Apache runs as `apache` but PHP thinks it is `www-data`.
        let mut broken = lamp_image("broken", "apache");
        let mut vfs = broken.vfs().clone();
        vfs.add_file(
            "/etc/php.ini",
            "root",
            "root",
            0o644,
            "[PHP]\nuser = www-data\nextension_dir = /usr/lib/php/modules\n",
        );
        broken = broken.with_vfs(vfs);
        let (row, _) = cross.assemble_image(&broken).unwrap();
        let report = engine.detector().check(&row, Some(&broken));
        assert!(
            report
                .warnings()
                .iter()
                .any(|w| w.kind() == WarningKind::CorrelationViolation
                    && w.detail().contains("php:user")),
            "{report:?}"
        );
    }

    #[test]
    fn missing_component_skips_image() {
        let good = lamp_image("good", "apache");
        let apache_only = SystemImage::builder("apache-only")
            .file(
                "/etc/httpd/conf/httpd.conf",
                "root",
                "root",
                0o644,
                "User apache\nListen 80\n",
            )
            .build();
        let cross = CrossAssembler::new(vec![AppKind::Apache, AppKind::Php]);
        let training = cross.assemble_training_set(&[good, apache_only]).unwrap();
        assert_eq!(training.len(), 1);
    }
}
