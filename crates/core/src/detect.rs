//! The anomaly detector (§6).
//!
//! Given the learned rules, the merged type map, and value statistics from
//! the training set, the detector checks a target system along four axes
//! and emits a ranked warning list:
//!
//! 1. **Entry-name violations** — entries never seen in training (likely
//!    misspellings),
//! 2. **Correlation violations** — learned rules that evaluate false on the
//!    target (rules whose entries are absent are skipped),
//! 3. **Data-type violations** — the target value fails the syntactic match
//!    or semantic verification of the entry's trained type,
//! 4. **Suspicious values** — values never seen in training, ranked by the
//!    Inverse Change Frequency heuristic (citation 42): entries with *less* diverse
//!    training values rank higher.

use crate::relation::{Applicability, SystemView};
use crate::rules::{Rule, RuleSet};
use crate::train::TrainingSet;
use crate::types::TypeMap;
use encore_assemble::{AssembleError, Assembler};
use encore_model::{AppKind, AttrName, Row, SemType};
use encore_sysimage::SystemImage;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Kind of a detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WarningKind {
    /// Entry name never seen in the training set.
    UnknownEntry,
    /// A learned correlation rule is violated.
    CorrelationViolation,
    /// The value fails its trained type's match/verification.
    TypeViolation,
    /// The value was never seen in training.
    SuspiciousValue,
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WarningKind::UnknownEntry => "unknown entry",
            WarningKind::CorrelationViolation => "correlation violation",
            WarningKind::TypeViolation => "type violation",
            WarningKind::SuspiciousValue => "suspicious value",
        };
        f.write_str(s)
    }
}

/// One ranked warning.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    kind: WarningKind,
    attr: AttrName,
    detail: String,
    score: f64,
    rule: Option<Rule>,
}

impl Warning {
    /// Crate-internal constructor (used by the baselines as well).
    pub(crate) fn internal(
        kind: WarningKind,
        attr: AttrName,
        detail: String,
        score: f64,
    ) -> Warning {
        Warning {
            kind,
            attr,
            detail,
            score,
            rule: None,
        }
    }

    /// The anomaly kind.
    pub fn kind(&self) -> WarningKind {
        self.kind
    }

    /// The offending attribute.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// Human-readable explanation.
    pub fn detail(&self) -> &str {
        &self.detail
    }

    /// Ranking score (higher ranks earlier).
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The violated rule, for correlation warnings.
    pub fn rule(&self) -> Option<&Rule> {
        self.rule.as_ref()
    }

    /// Whether this warning points at `entry` (directly or through one of
    /// its augmented attributes or a violated rule's slots).
    pub fn implicates(&self, entry: &str) -> bool {
        let base = crate::relation::strip_occurrence(self.attr.base());
        if base == entry || self.attr.base() == entry {
            return true;
        }
        match &self.rule {
            Some(r) => {
                crate::relation::strip_occurrence(r.a.base()) == entry
                    || crate::relation::strip_occurrence(r.b.base()) == entry
            }
            None => false,
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.attr, self.detail)
    }
}

/// The ranked warning report for one target system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    warnings: Vec<Warning>,
}

impl Report {
    /// Build a report from warnings, sorting by rank (crate-internal).
    pub(crate) fn from_warnings(warnings: Vec<Warning>) -> Report {
        Report { warnings }.finish()
    }

    /// Warnings, highest rank first.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Number of warnings.
    pub fn len(&self) -> usize {
        self.warnings.len()
    }

    /// Whether no anomaly was found.
    pub fn is_empty(&self) -> bool {
        self.warnings.is_empty()
    }

    /// 1-based rank of the first warning implicating `entry`, if any.
    pub fn rank_of(&self, entry: &str) -> Option<usize> {
        self.warnings
            .iter()
            .position(|w| w.implicates(entry))
            .map(|i| i + 1)
    }

    /// Whether any warning implicates `entry`.
    pub fn detects(&self, entry: &str) -> bool {
        self.rank_of(entry).is_some()
    }

    fn finish(mut self) -> Report {
        self.warnings.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.attr.cmp(&y.attr))
        });
        self
    }
}

/// Per-attribute training statistics used by the value checks.
#[derive(Debug, Clone, Default)]
struct TrainingStats {
    /// Entry names (bases, occurrence-stripped) seen in training.
    known_entries: BTreeSet<String>,
    /// Known (attr → value set) histograms.
    values: BTreeMap<AttrName, BTreeMap<String, usize>>,
    /// Number of training systems (exposed through
    /// [`AnomalyDetector::training_systems`]).
    systems: usize,
}

/// The anomaly detector: rules + types + training statistics.
#[derive(Debug)]
pub struct AnomalyDetector {
    rules: RuleSet,
    types: TypeMap,
    stats: TrainingStats,
    assembler: Assembler,
}

impl AnomalyDetector {
    /// Build a detector from a training set and learned rules.
    pub fn new(training: &TrainingSet, rules: RuleSet) -> AnomalyDetector {
        let mut stats = TrainingStats {
            systems: training.len(),
            ..TrainingStats::default()
        };
        for (row, _) in training.systems() {
            for (attr, value) in row.iter() {
                if attr.is_original() {
                    stats
                        .known_entries
                        .insert(crate::relation::canonical_entry_name(attr.base()));
                }
                if !value.is_absent() {
                    *stats
                        .values
                        .entry(attr.clone())
                        .or_default()
                        .entry(value.render())
                        .or_insert(0) += 1;
                }
            }
        }
        AnomalyDetector {
            rules,
            types: training.types().clone(),
            stats,
            assembler: Assembler::new(),
        }
    }

    /// The learned rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The merged type map.
    pub fn types(&self) -> &TypeMap {
        &self.types
    }

    /// Number of systems the detector was trained on.
    pub fn training_systems(&self) -> usize {
        self.stats.systems
    }

    /// Assemble a target image and check it.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures.
    pub fn check_image(&self, app: AppKind, image: &SystemImage) -> Result<Report, AssembleError> {
        let row = self.assembler.assemble_image(app, image)?;
        Ok(self.check(&row, Some(image)))
    }

    /// Check an already-assembled row (image optional; environment-backed
    /// rules are skipped without it).
    pub fn check(&self, row: &Row, image: Option<&SystemImage>) -> Report {
        let _span = crate::obs::DETECT_TIME.span();
        crate::obs::DETECT_SYSTEMS_CHECKED.incr();
        let mut report = Report::default();
        self.check_entry_names(row, &mut report);
        self.check_correlations(row, image, &mut report);
        self.check_types(row, image, &mut report);
        self.check_values(row, &mut report);
        if crate::obs::enabled() {
            for warning in &report.warnings {
                match warning.kind {
                    WarningKind::UnknownEntry => crate::obs::DETECT_UNKNOWN_ENTRY.incr(),
                    WarningKind::CorrelationViolation => crate::obs::DETECT_CORRELATION.incr(),
                    WarningKind::TypeViolation => crate::obs::DETECT_TYPE.incr(),
                    WarningKind::SuspiciousValue => crate::obs::DETECT_SUSPICIOUS.incr(),
                }
            }
        }
        report.finish()
    }

    /// Check 1: unknown entry names (likely misspellings, [31]).
    fn check_entry_names(&self, row: &Row, report: &mut Report) {
        for (attr, _) in row.iter() {
            if !attr.is_original() {
                continue;
            }
            let base = crate::relation::canonical_entry_name(attr.base());
            if !self.stats.known_entries.contains(&base) {
                report.warnings.push(Warning {
                    kind: WarningKind::UnknownEntry,
                    attr: attr.clone(),
                    detail: format!("entry `{base}` never appears in the training set"),
                    score: 70.0,
                    rule: None,
                });
            }
        }
    }

    /// Check 2: correlation-rule violations.
    fn check_correlations(&self, row: &Row, image: Option<&SystemImage>, report: &mut Report) {
        let view = match image {
            Some(img) => SystemView::new(row, img),
            None => SystemView::row_only(row),
        };
        for rule in &self.rules {
            if let Applicability::Violated = rule.evaluate(view) {
                report.warnings.push(Warning {
                    kind: WarningKind::CorrelationViolation,
                    attr: rule.a.clone(),
                    detail: format!("rule violated: {rule}"),
                    score: 100.0 + rule.confidence * 10.0,
                    rule: Some(rule.clone()),
                });
            }
        }
    }

    /// Check 3: data-type violations.
    ///
    /// Each original entry's target value must still pass the syntactic
    /// match and semantic verification of the type learned in training.
    fn check_types(&self, row: &Row, image: Option<&SystemImage>, report: &mut Report) {
        let image = match image {
            Some(i) => i,
            None => return,
        };
        let inference = self.assembler.inference();
        for (attr, value) in row.iter() {
            if !attr.is_original() || value.is_absent() {
                continue;
            }
            let expected = self.types.type_of(attr);
            if expected.is_trivial() {
                continue;
            }
            let rendered = value.render();
            let inferred = inference.infer(&rendered, image);
            if inferred != expected {
                // Cardinality of training values drives the rank: a type
                // violation on an entry that always had one value is near
                // certain (§6's extension_dir example).
                let cardinality = self
                    .stats
                    .values
                    .get(attr)
                    .map(|h| h.len())
                    .unwrap_or(1)
                    .max(1);
                report.warnings.push(Warning {
                    kind: WarningKind::TypeViolation,
                    attr: attr.clone(),
                    detail: format!("value `{rendered}` is {inferred}, trained type is {expected}"),
                    score: 90.0 + 10.0 / cardinality as f64,
                    rule: None,
                });
            }
        }
    }

    /// Check 4: suspicious (never-seen) values with Inverse Change
    /// Frequency ranking [42].
    fn check_values(&self, row: &Row, report: &mut Report) {
        for (attr, value) in row.iter() {
            if value.is_absent() {
                continue;
            }
            let hist = match self.stats.values.get(attr) {
                Some(h) => h,
                None => continue, // new attribute: reported by check 1
            };
            let rendered = value.render();
            if hist.contains_key(&rendered) {
                continue;
            }
            // File paths legitimately vary across systems (§7.1.1's Baseline
            // misses wrong paths for this reason); the pure value comparison
            // stays quiet on env-related types and leaves them to checks 2/3.
            let ty = self.types.type_of(attr);
            if attr.is_original() && ty == SemType::FilePath {
                continue;
            }
            // ICF: fewer distinct training values → higher rank.
            let icf = 1.0 / hist.len() as f64;
            report.warnings.push(Warning {
                kind: WarningKind::SuspiciousValue,
                attr: attr.clone(),
                detail: format!(
                    "value `{rendered}` never seen in training ({} known values)",
                    hist.len()
                ),
                score: 40.0 * icf,
                rule: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::RuleInference;
    use crate::FilterThresholds;
    use encore_model::ConfigValue;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!(
                            "[mysqld]\nuser = mysql\ndatadir = {datadir}\nmax_allowed_packet = 16M\n"
                        ),
                    )
                    .build()
            })
            .collect()
    }

    fn engine() -> AnomalyDetector {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let (rules, _) =
            RuleInference::predefined().infer(&ts, &FilterThresholds::default().without_entropy());
        AnomalyDetector::new(&ts, rules)
    }

    fn broken_owner_image() -> SystemImage {
        SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .user("backup", 34, &["backup"])
            .dir("/var/lib/mysql", "backup", "backup", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\nmax_allowed_packet = 16M\n",
            )
            .build()
    }

    #[test]
    fn detects_wrong_owner_via_correlation() {
        let det = engine();
        let report = det
            .check_image(AppKind::Mysql, &broken_owner_image())
            .unwrap();
        assert!(report.detects("datadir"), "{report:?}");
        let w = report
            .warnings()
            .iter()
            .find(|w| w.kind() == WarningKind::CorrelationViolation)
            .expect("correlation warning");
        assert!(w.detail().contains("datadir"));
        // correlation violations rank at the top
        assert_eq!(report.rank_of("datadir"), Some(1));
    }

    #[test]
    fn detects_type_violation_for_file_instead_of_dir() {
        let det = engine();
        // datadir points at a regular file — the Figure 1(a) failure shape.
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .file("/var/lib/mysql", "mysql", "mysql", 0o644, "oops")
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql3/ghost\nmax_allowed_packet = 16M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        let type_warning = report
            .warnings()
            .iter()
            .find(|w| w.kind() == WarningKind::TypeViolation)
            .expect("type violation");
        assert_eq!(type_warning.attr().to_string(), "datadir");
    }

    #[test]
    fn detects_unknown_entry_name() {
        let det = engine();
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql0", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\ndataadir = /tmp\nmax_allowed_packet = 16M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.kind() == WarningKind::UnknownEntry && w.attr().base() == "dataadir"));
    }

    #[test]
    fn detects_suspicious_value() {
        let det = engine();
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql0", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\nmax_allowed_packet = 999M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.kind() == WarningKind::SuspiciousValue
                && w.attr().base() == "max_allowed_packet"));
    }

    #[test]
    fn clean_system_mostly_quiet() {
        let det = engine();
        // An in-distribution image: datadir variant seen in training.
        let img = fleet(1).remove(0);
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(
            report
                .warnings()
                .iter()
                .all(|w| w.kind() != WarningKind::CorrelationViolation),
            "{report:?}"
        );
    }

    #[test]
    fn rank_of_missing_entry_is_none() {
        let det = engine();
        let report = det
            .check_image(AppKind::Mysql, &fleet(1).remove(0))
            .unwrap();
        assert_eq!(report.rank_of("not_an_entry"), None);
    }

    #[test]
    fn check_without_image_skips_type_checks() {
        let det = engine();
        let mut row = Row::new("bare");
        row.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        let report = det.check(&row, None);
        assert!(report
            .warnings()
            .iter()
            .all(|w| w.kind() != WarningKind::TypeViolation));
    }
}
