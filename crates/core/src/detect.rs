//! The anomaly detector (§6).
//!
//! Given the learned rules, the merged type map, and value statistics from
//! the training set, the detector checks a target system along four axes
//! and emits a ranked warning list:
//!
//! 1. **Entry-name violations** — entries never seen in training (likely
//!    misspellings),
//! 2. **Correlation violations** — learned rules that evaluate false on the
//!    target (rules whose entries are absent are skipped),
//! 3. **Data-type violations** — the target value fails the syntactic match
//!    or semantic verification of the entry's trained type,
//! 4. **Suspicious values** — values never seen in training, ranked by the
//!    Inverse Change Frequency heuristic (citation 42): entries with *less* diverse
//!    training values rank higher.

use crate::pool::{self, PoolError};
use crate::relation::{Applicability, SystemView};
use crate::rules::{Rule, RuleSet};
use crate::snapshot::DetectorSnapshot;
use crate::train::TrainingSet;
use crate::types::TypeMap;
use encore_assemble::{AssembleError, Assembler};
use encore_model::{AppKind, AttrName, Row, SemType};
use encore_sysimage::SystemImage;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

/// Kind of a detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WarningKind {
    /// Entry name never seen in the training set.
    UnknownEntry,
    /// A learned correlation rule is violated.
    CorrelationViolation,
    /// The value fails its trained type's match/verification.
    TypeViolation,
    /// The value was never seen in training.
    SuspiciousValue,
}

impl WarningKind {
    /// Every warning kind, in `EW0xx` code order.
    pub const ALL: [WarningKind; 4] = [
        WarningKind::UnknownEntry,
        WarningKind::CorrelationViolation,
        WarningKind::TypeViolation,
        WarningKind::SuspiciousValue,
    ];

    /// The stable `EW0xx` code for this kind, the detection counterpart of
    /// the linter's `EC0xx` codes: CI matches on these, never on message
    /// text.
    pub fn code(self) -> &'static str {
        match self {
            WarningKind::UnknownEntry => "EW001",
            WarningKind::CorrelationViolation => "EW002",
            WarningKind::TypeViolation => "EW003",
            WarningKind::SuspiciousValue => "EW004",
        }
    }

    /// One-line description of the anomaly class (SARIF rule metadata).
    pub fn summary(self) -> &'static str {
        match self {
            WarningKind::UnknownEntry => "entry name never seen in the training set",
            WarningKind::CorrelationViolation => "a learned correlation rule is violated",
            WarningKind::TypeViolation => "value fails its trained type's match/verification",
            WarningKind::SuspiciousValue => "value never seen in training (ICF-ranked)",
        }
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WarningKind::UnknownEntry => "unknown entry",
            WarningKind::CorrelationViolation => "correlation violation",
            WarningKind::TypeViolation => "type violation",
            WarningKind::SuspiciousValue => "suspicious value",
        };
        f.write_str(s)
    }
}

/// One ranked warning.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    kind: WarningKind,
    attr: AttrName,
    detail: String,
    score: f64,
    rule: Option<Rule>,
}

impl Warning {
    /// Crate-internal constructor (used by the baselines as well).
    pub(crate) fn internal(
        kind: WarningKind,
        attr: AttrName,
        detail: String,
        score: f64,
    ) -> Warning {
        Warning {
            kind,
            attr,
            detail,
            score,
            rule: None,
        }
    }

    /// The anomaly kind.
    pub fn kind(&self) -> WarningKind {
        self.kind
    }

    /// The offending attribute.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// Human-readable explanation.
    pub fn detail(&self) -> &str {
        &self.detail
    }

    /// Ranking score (higher ranks earlier).
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The violated rule, for correlation warnings.
    pub fn rule(&self) -> Option<&Rule> {
        self.rule.as_ref()
    }

    /// A normalized confidence in `[0, 1]` for CI threshold filtering
    /// (`--min-report-confidence`), derived per kind from the same evidence
    /// the ranking [`Warning::score`] uses:
    ///
    /// * correlation violations — the violated rule's learned confidence,
    /// * type violations — `1 / |training values|` (one trained value ⇒
    ///   near-certain, §6's `extension_dir` example),
    /// * unknown entries — a fixed `0.7` (the class-wide prior the ranking
    ///   score encodes),
    /// * suspicious values — `ICF × modal dominance` (the score without its
    ///   `40×` ranking weight).
    ///
    /// Non-finite inputs (a NaN confidence in a hand-edited rule) clamp to
    /// `1.0` so the value is always a finite probability-like number.
    pub fn confidence(&self) -> f64 {
        let raw = match self.kind {
            WarningKind::UnknownEntry => 0.7,
            WarningKind::CorrelationViolation => self
                .rule
                .as_ref()
                .map(|r| r.confidence)
                .unwrap_or((self.score - 100.0) / 10.0),
            WarningKind::TypeViolation => (self.score - 90.0) / 10.0,
            WarningKind::SuspiciousValue => self.score / 40.0,
        };
        if raw.is_finite() {
            raw.clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Whether this warning points at `entry` (directly or through one of
    /// its augmented attributes or a violated rule's slots).
    pub fn implicates(&self, entry: &str) -> bool {
        let base = crate::relation::strip_occurrence(self.attr.base());
        if base == entry || self.attr.base() == entry {
            return true;
        }
        match &self.rule {
            Some(r) => {
                crate::relation::strip_occurrence(r.a.base()) == entry
                    || crate::relation::strip_occurrence(r.b.base()) == entry
            }
            None => false,
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.attr, self.detail)
    }
}

/// The ranked warning report for one target system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    warnings: Vec<Warning>,
}

impl Report {
    /// Build a report from warnings, sorting by rank (crate-internal).
    pub(crate) fn from_warnings(warnings: Vec<Warning>) -> Report {
        Report { warnings }.finish()
    }

    /// Warnings, highest rank first.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Number of warnings.
    pub fn len(&self) -> usize {
        self.warnings.len()
    }

    /// Whether no anomaly was found.
    pub fn is_empty(&self) -> bool {
        self.warnings.is_empty()
    }

    /// 1-based rank of the first warning implicating `entry`, if any.
    pub fn rank_of(&self, entry: &str) -> Option<usize> {
        self.warnings
            .iter()
            .position(|w| w.implicates(entry))
            .map(|i| i + 1)
    }

    /// Whether any warning implicates `entry`.
    pub fn detects(&self, entry: &str) -> bool {
        self.rank_of(entry).is_some()
    }

    /// Render the ranked list, one line per warning, in rank order.
    ///
    /// Scores use the exact (`{:?}`) representation, so two reports render
    /// byte-identically iff they are equal — the property the fleet
    /// determinism and snapshot round-trip tests compare on.
    pub fn render(&self) -> String {
        if self.warnings.is_empty() {
            return "clean\n".to_string();
        }
        let mut out = String::new();
        for (i, w) in self.warnings.iter().enumerate() {
            out.push_str(&format!(
                "{}. [{}] {} (score={:?}): {}\n",
                i + 1,
                w.kind,
                w.attr,
                w.score,
                w.detail
            ));
        }
        out
    }

    fn finish(mut self) -> Report {
        // `f64::total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN
        // score (e.g. a NaN confidence in a hand-edited loaded rule) would
        // make the latter comparator non-transitive, and the ranking —
        // which callers and fleet byte-identity depend on — nondeterministic.
        // Under the IEEE 754 total order, NaN sorts above +inf, so a
        // NaN-scored warning ranks first, deterministically.
        self.warnings.sort_by(|x, y| {
            y.score
                .total_cmp(&x.score)
                .then_with(|| x.attr.cmp(&y.attr))
        });
        self
    }
}

/// Per-attribute training statistics used by the value checks.
///
/// Together with the learned [`RuleSet`] and merged [`TypeMap`], this is
/// everything a detector needs — a [`DetectorSnapshot`] bundles the three so
/// detection can run without the training corpus ("train once, detect
/// many", §6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingStats {
    /// Entry names (canonical bases, occurrence-stripped) seen in training.
    known_entries: BTreeSet<String>,
    /// Known (attr → value → occurrence count) histograms.
    values: BTreeMap<AttrName, BTreeMap<String, usize>>,
    /// Number of training systems (exposed through
    /// [`AnomalyDetector::training_systems`]).
    systems: usize,
}

impl TrainingStats {
    /// Gather the statistics from an assembled training set.
    pub fn from_training(training: &TrainingSet) -> TrainingStats {
        let mut stats = TrainingStats {
            systems: training.len(),
            ..TrainingStats::default()
        };
        for (row, _) in training.systems() {
            for (attr, value) in row.iter() {
                if attr.is_original() {
                    stats
                        .known_entries
                        .insert(crate::relation::canonical_entry_name(attr.base()));
                }
                if !value.is_absent() {
                    *stats
                        .values
                        .entry(attr.clone())
                        .or_default()
                        .entry(value.render())
                        .or_insert(0) += 1;
                }
            }
        }
        stats
    }

    /// Reassemble statistics from persisted parts (snapshot loading).
    pub fn from_parts(
        systems: usize,
        known_entries: BTreeSet<String>,
        values: BTreeMap<AttrName, BTreeMap<String, usize>>,
    ) -> TrainingStats {
        TrainingStats {
            known_entries,
            values,
            systems,
        }
    }

    /// Number of training systems.
    pub fn systems(&self) -> usize {
        self.systems
    }

    /// Canonical entry names seen in training.
    pub fn known_entries(&self) -> &BTreeSet<String> {
        &self.known_entries
    }

    /// Per-attribute value histograms (value → occurrence count).
    pub fn values(&self) -> &BTreeMap<AttrName, BTreeMap<String, usize>> {
        &self.values
    }
}

/// Rule indices partitioned by the attribute bound to the `A` slot.
///
/// Every relation validator needs both slot values present on the target
/// (absent entries make a rule [`Applicability::NotApplicable`], §6), so
/// [`AnomalyDetector::check`] only has to evaluate the buckets of
/// attributes the target row actually carries instead of scanning the full
/// rule list per system.  Candidate buckets are merged in ascending rule
/// index, keeping warnings byte-identical to the full sequential scan.
#[derive(Debug, Default)]
struct DetectorIndex {
    by_a: BTreeMap<AttrName, Vec<usize>>,
    rules: usize,
}

impl DetectorIndex {
    fn build(rules: &RuleSet) -> DetectorIndex {
        let mut by_a: BTreeMap<AttrName, Vec<usize>> = BTreeMap::new();
        for (i, rule) in rules.rules().iter().enumerate() {
            by_a.entry(rule.a.clone()).or_default().push(i);
        }
        DetectorIndex {
            by_a,
            rules: rules.len(),
        }
    }

    /// Indices of rules whose `A` slot is present (non-absent) on the row,
    /// in ascending rule order.
    fn candidates(&self, row: &Row) -> Vec<usize> {
        let mut out = Vec::new();
        for (attr, value) in row.iter() {
            if value.is_absent() {
                continue;
            }
            if let Some(bucket) = self.by_a.get(attr) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Options for batch fleet checking.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads; `None` uses all available parallelism.  The reports
    /// are identical for every worker count.
    pub workers: Option<usize>,
}

impl FleetOptions {
    /// Options pinning the worker count.
    pub fn with_workers(workers: usize) -> FleetOptions {
        FleetOptions {
            workers: Some(workers),
        }
    }

    fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// The anomaly detector: rules + types + training statistics.
#[derive(Debug)]
pub struct AnomalyDetector {
    rules: RuleSet,
    types: TypeMap,
    stats: TrainingStats,
    index: DetectorIndex,
    assembler: Assembler,
}

impl AnomalyDetector {
    /// Build a detector from a training set and learned rules.
    pub fn new(training: &TrainingSet, rules: RuleSet) -> AnomalyDetector {
        AnomalyDetector::from_parts(
            rules,
            training.types().clone(),
            TrainingStats::from_training(training),
        )
    }

    /// Build a detector from its three learned artifacts directly, without
    /// the training corpus.
    pub fn from_parts(rules: RuleSet, types: TypeMap, stats: TrainingStats) -> AnomalyDetector {
        let index = DetectorIndex::build(&rules);
        AnomalyDetector {
            rules,
            types,
            stats,
            index,
            assembler: Assembler::new(),
        }
    }

    /// Reconstruct a detector from a persisted snapshot.
    pub fn from_snapshot(snapshot: DetectorSnapshot) -> AnomalyDetector {
        let (rules, types, stats) = snapshot.into_parts();
        AnomalyDetector::from_parts(rules, types, stats)
    }

    /// Capture the detector's learned state as a persistable snapshot.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot::new(self.rules.clone(), self.types.clone(), self.stats.clone())
    }

    /// The learned rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The merged type map.
    pub fn types(&self) -> &TypeMap {
        &self.types
    }

    /// The training statistics (known entries, value histograms, corpus
    /// size).
    pub fn training_stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// Number of systems the detector was trained on.
    pub fn training_systems(&self) -> usize {
        self.stats.systems
    }

    /// Assemble a target image and check it.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures.
    pub fn check_image(&self, app: AppKind, image: &SystemImage) -> Result<Report, AssembleError> {
        let row = self.assembler.assemble_image(app, image)?;
        Ok(self.check(&row, Some(image)))
    }

    /// Check a whole target fleet in one batch over the work-stealing pool.
    ///
    /// Per-image assembly failures stay per-image results (a fleet crawl
    /// must tolerate broken images); the returned vector is index-aligned
    /// with `images` and byte-identical to a sequential
    /// [`AnomalyDetector::check_image`] loop for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if a detection worker panics; [`AnomalyDetector::try_check_fleet`]
    /// surfaces that recoverably instead.
    pub fn check_fleet(
        &self,
        app: AppKind,
        images: &[SystemImage],
        options: &FleetOptions,
    ) -> Vec<Result<Report, AssembleError>> {
        self.try_check_fleet(app, images, options)
            .expect("detection worker panicked")
    }

    /// Check a whole target fleet, surfacing detection-worker panics as a
    /// recoverable [`PoolError`].
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) [`PoolError`] if checking an image
    /// panics.
    pub fn try_check_fleet(
        &self,
        app: AppKind,
        images: &[SystemImage],
        options: &FleetOptions,
    ) -> Result<Vec<Result<Report, AssembleError>>, PoolError> {
        crate::obs::DETECT_FLEET_BATCHES.incr();
        crate::obs::DETECT_FLEET_SYSTEMS.add(images.len() as u64);
        if crate::obs::event::enabled() {
            use crate::obs::json::Json;
            crate::obs::event::emit(
                crate::obs::event::Level::Debug,
                "detect.fleet",
                vec![
                    ("app".to_string(), Json::Str(app.name().to_string())),
                    ("systems".to_string(), Json::Num(images.len() as u64)),
                ],
            );
        }
        let workers = options.resolved_workers();
        pool::run_units_observed(images, workers, &crate::obs::DETECT_POOL_METRICS, |image| {
            self.check_image(app, image)
        })
    }

    /// Check an already-assembled row (image optional; environment-backed
    /// rules are skipped without it).
    pub fn check(&self, row: &Row, image: Option<&SystemImage>) -> Report {
        let _span = crate::obs::DETECT_TIME.span();
        crate::obs::DETECT_SYSTEMS_CHECKED.incr();
        let mut report = Report::default();
        self.check_entry_names(row, &mut report);
        self.check_correlations(row, image, &mut report);
        self.check_types(row, image, &mut report);
        self.check_values(row, &mut report);
        if crate::obs::enabled() {
            for warning in &report.warnings {
                match warning.kind {
                    WarningKind::UnknownEntry => crate::obs::DETECT_UNKNOWN_ENTRY.incr(),
                    WarningKind::CorrelationViolation => crate::obs::DETECT_CORRELATION.incr(),
                    WarningKind::TypeViolation => crate::obs::DETECT_TYPE.incr(),
                    WarningKind::SuspiciousValue => crate::obs::DETECT_SUSPICIOUS.incr(),
                }
            }
            crate::obs::DETECT_WARNINGS_PER_SYSTEM.observe(report.warnings.len() as u64);
        }
        report.finish()
    }

    /// Check 1: unknown entry names (likely misspellings, [31]).
    ///
    /// Warnings are deduplicated by canonical base name: a misspelled entry
    /// repeated on the target (`dataadir#1`, `dataadir#2`, or the same
    /// unknown directive under several Apache section scopes) is one
    /// anomaly, not one warning per occurrence flooding the ranked list.
    fn check_entry_names(&self, row: &Row, report: &mut Report) {
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for (attr, _) in row.iter() {
            if !attr.is_original() {
                continue;
            }
            let base = crate::relation::canonical_entry_name(attr.base());
            if !self.stats.known_entries.contains(&base) && reported.insert(base.clone()) {
                report.warnings.push(Warning {
                    kind: WarningKind::UnknownEntry,
                    attr: attr.clone(),
                    detail: format!("entry `{base}` never appears in the training set"),
                    score: 70.0,
                    rule: None,
                });
            }
        }
    }

    /// Check 2: correlation-rule violations.
    ///
    /// Only the [`DetectorIndex`] candidates — rules whose `A`-slot
    /// attribute the target actually carries — are evaluated; the skipped
    /// rules would all be [`Applicability::NotApplicable`], so the warnings
    /// are byte-identical to a full scan of the rule list.
    fn check_correlations(&self, row: &Row, image: Option<&SystemImage>, report: &mut Report) {
        let view = match image {
            Some(img) => SystemView::new(row, img),
            None => SystemView::row_only(row),
        };
        let candidates = self.index.candidates(row);
        if crate::obs::enabled() {
            crate::obs::DETECT_INDEX_RULES_EVALUATED.add(candidates.len() as u64);
            crate::obs::DETECT_INDEX_RULES_SKIPPED
                .add((self.index.rules - candidates.len()) as u64);
        }
        // Per-A-slot-bucket attribution, accumulated locally and flushed
        // once per call so the profiled path adds one table lock per
        // check, not one per rule.
        let profiling = crate::obs::profile::enabled();
        let mut buckets: BTreeMap<&AttrName, (u64, u64, u64)> = BTreeMap::new();
        for i in candidates {
            let rule = &self.rules.rules()[i];
            let profiled = profiling.then(Instant::now);
            let verdict = rule.evaluate(view);
            if let Some(started) = profiled {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let (bucket_nanos, checked, violated) = buckets.entry(&rule.a).or_default();
                *bucket_nanos += nanos;
                *checked += 1;
                if matches!(verdict, Applicability::Violated) {
                    *violated += 1;
                }
            }
            if let Applicability::Violated = verdict {
                report.warnings.push(Warning {
                    kind: WarningKind::CorrelationViolation,
                    attr: rule.a.clone(),
                    detail: format!("rule violated: {rule}"),
                    score: 100.0 + rule.confidence * 10.0,
                    rule: Some(rule.clone()),
                });
            }
        }
        for (attr, (nanos, checked, violated)) in buckets {
            crate::obs::DETECT_BUCKET_PROFILE.record(
                &attr.to_string(),
                nanos,
                &[("checked", checked), ("violated", violated)],
            );
        }
    }

    /// Reference full scan of the rule list (what `check_correlations`
    /// replaced); kept for the index-equivalence regression tests.
    #[cfg(test)]
    fn check_correlations_unindexed(
        &self,
        row: &Row,
        image: Option<&SystemImage>,
        report: &mut Report,
    ) {
        let view = match image {
            Some(img) => SystemView::new(row, img),
            None => SystemView::row_only(row),
        };
        for rule in &self.rules {
            if let Applicability::Violated = rule.evaluate(view) {
                report.warnings.push(Warning {
                    kind: WarningKind::CorrelationViolation,
                    attr: rule.a.clone(),
                    detail: format!("rule violated: {rule}"),
                    score: 100.0 + rule.confidence * 10.0,
                    rule: Some(rule.clone()),
                });
            }
        }
    }

    /// Check 3: data-type violations.
    ///
    /// Each original entry's target value must still pass the syntactic
    /// match and semantic verification of the type learned in training.
    fn check_types(&self, row: &Row, image: Option<&SystemImage>, report: &mut Report) {
        let image = match image {
            Some(i) => i,
            None => return,
        };
        let inference = self.assembler.inference();
        for (attr, value) in row.iter() {
            if !attr.is_original() || value.is_absent() {
                continue;
            }
            let expected = self.types.type_of(attr);
            if expected.is_trivial() {
                continue;
            }
            let rendered = value.render();
            let inferred = inference.infer(&rendered, image);
            if inferred != expected {
                // Cardinality of training values drives the rank: a type
                // violation on an entry that always had one value is near
                // certain (§6's extension_dir example).
                let cardinality = self
                    .stats
                    .values
                    .get(attr)
                    .map(|h| h.len())
                    .unwrap_or(1)
                    .max(1);
                report.warnings.push(Warning {
                    kind: WarningKind::TypeViolation,
                    attr: attr.clone(),
                    detail: format!("value `{rendered}` is {inferred}, trained type is {expected}"),
                    score: 90.0 + 10.0 / cardinality as f64,
                    rule: None,
                });
            }
        }
    }

    /// Check 4: suspicious (never-seen) values with Inverse Change
    /// Frequency ranking [42].
    fn check_values(&self, row: &Row, report: &mut Report) {
        for (attr, value) in row.iter() {
            if value.is_absent() {
                continue;
            }
            let hist = match self.stats.values.get(attr) {
                Some(h) => h,
                None => continue, // new attribute: reported by check 1
            };
            let rendered = value.render();
            if hist.contains_key(&rendered) {
                continue;
            }
            // File paths legitimately vary across systems (§7.1.1's Baseline
            // misses wrong paths for this reason); the pure value comparison
            // stays quiet on env-related types and leaves them to checks 2/3.
            let ty = self.types.type_of(attr);
            if attr.is_original() && ty == SemType::FilePath {
                continue;
            }
            // ICF: fewer distinct training values → higher rank, weighted
            // by the modal value's dominance so the per-value counts the
            // histogram tracks actually matter.  An entry where 9 of 10
            // training systems agree on one value (dominance 0.9) changed
            // rarely — a deviation is a strong signal; an entry whose
            // values are spread evenly changed often, which is exactly what
            // the Inverse *Change Frequency* heuristic down-ranks.
            let total: usize = hist.values().sum();
            let modal = hist.values().copied().max().unwrap_or(1);
            let dominance = modal as f64 / total.max(1) as f64;
            let icf = 1.0 / hist.len() as f64;
            report.warnings.push(Warning {
                kind: WarningKind::SuspiciousValue,
                attr: attr.clone(),
                detail: format!(
                    "value `{rendered}` never seen in training ({} known values, modal share {modal}/{total})",
                    hist.len()
                ),
                score: 40.0 * icf * dominance,
                rule: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::RuleInference;
    use crate::FilterThresholds;
    use encore_model::ConfigValue;

    fn fleet(n: usize) -> Vec<SystemImage> {
        (0..n)
            .map(|i| {
                let datadir = format!("/var/lib/mysql{i}");
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir(&datadir, "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        &format!(
                            "[mysqld]\nuser = mysql\ndatadir = {datadir}\nmax_allowed_packet = 16M\n"
                        ),
                    )
                    .build()
            })
            .collect()
    }

    fn engine() -> AnomalyDetector {
        let images = fleet(12);
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        let (rules, _) =
            RuleInference::predefined().infer(&ts, &FilterThresholds::default().without_entropy());
        AnomalyDetector::new(&ts, rules)
    }

    fn broken_owner_image() -> SystemImage {
        SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .user("backup", 34, &["backup"])
            .dir("/var/lib/mysql", "backup", "backup", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\nmax_allowed_packet = 16M\n",
            )
            .build()
    }

    #[test]
    fn detects_wrong_owner_via_correlation() {
        let det = engine();
        let report = det
            .check_image(AppKind::Mysql, &broken_owner_image())
            .unwrap();
        assert!(report.detects("datadir"), "{report:?}");
        let w = report
            .warnings()
            .iter()
            .find(|w| w.kind() == WarningKind::CorrelationViolation)
            .expect("correlation warning");
        assert!(w.detail().contains("datadir"));
        // correlation violations rank at the top
        assert_eq!(report.rank_of("datadir"), Some(1));
    }

    #[test]
    fn detects_type_violation_for_file_instead_of_dir() {
        let det = engine();
        // datadir points at a regular file — the Figure 1(a) failure shape.
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .file("/var/lib/mysql", "mysql", "mysql", 0o644, "oops")
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql3/ghost\nmax_allowed_packet = 16M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        let type_warning = report
            .warnings()
            .iter()
            .find(|w| w.kind() == WarningKind::TypeViolation)
            .expect("type violation");
        assert_eq!(type_warning.attr().to_string(), "datadir");
    }

    #[test]
    fn detects_unknown_entry_name() {
        let det = engine();
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql0", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\ndataadir = /tmp\nmax_allowed_packet = 16M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.kind() == WarningKind::UnknownEntry && w.attr().base() == "dataadir"));
    }

    #[test]
    fn detects_suspicious_value() {
        let det = engine();
        let img = SystemImage::builder("target")
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql0", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql0\nmax_allowed_packet = 999M\n",
            )
            .build();
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.kind() == WarningKind::SuspiciousValue
                && w.attr().base() == "max_allowed_packet"));
    }

    #[test]
    fn clean_system_mostly_quiet() {
        let det = engine();
        // An in-distribution image: datadir variant seen in training.
        let img = fleet(1).remove(0);
        let report = det.check_image(AppKind::Mysql, &img).unwrap();
        assert!(
            report
                .warnings()
                .iter()
                .all(|w| w.kind() != WarningKind::CorrelationViolation),
            "{report:?}"
        );
    }

    #[test]
    fn rank_of_missing_entry_is_none() {
        let det = engine();
        let report = det
            .check_image(AppKind::Mysql, &fleet(1).remove(0))
            .unwrap();
        assert_eq!(report.rank_of("not_an_entry"), None);
    }

    #[test]
    fn check_without_image_skips_type_checks() {
        let det = engine();
        let mut row = Row::new("bare");
        row.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        let report = det.check(&row, None);
        assert!(report
            .warnings()
            .iter()
            .all(|w| w.kind() != WarningKind::TypeViolation));
    }

    #[test]
    fn nan_confidence_rule_ranks_deterministically() {
        // A NaN score used to make the `partial_cmp(..).unwrap_or(Equal)`
        // comparator non-transitive and the ranking order dependent on the
        // incoming warning order; `total_cmp` ranks NaN first, always.
        use crate::template::Relation;
        let nan_rule = Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            10,
            f64::NAN,
        );
        let mut warnings = Vec::new();
        for (name, score) in [("alpha", 50.0), ("omega", f64::NAN), ("beta", 90.0)] {
            warnings.push(Warning {
                kind: WarningKind::CorrelationViolation,
                attr: AttrName::entry(name),
                detail: format!("rule violated: {nan_rule}"),
                score,
                rule: Some(nan_rule.clone()),
            });
        }
        let order = |r: &Report| -> Vec<String> {
            r.warnings()
                .iter()
                .map(|w| w.attr().base().to_string())
                .collect()
        };
        let forward = Report::from_warnings(warnings.clone());
        warnings.reverse();
        let reversed = Report::from_warnings(warnings);
        // NaN != NaN, so compare the ranking order, not the reports.
        assert_eq!(
            order(&forward),
            order(&reversed),
            "ranking must not depend on input order"
        );
        assert!(forward.warnings()[0].score().is_nan(), "NaN ranks first");
        assert_eq!(order(&forward), ["omega", "beta", "alpha"]);
    }

    #[test]
    fn warning_codes_are_stable_and_unique() {
        let mut seen = BTreeSet::new();
        for kind in WarningKind::ALL {
            let code = kind.code();
            assert!(code.starts_with("EW") && code.len() == 5, "{code}");
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(!kind.summary().is_empty());
        }
    }

    #[test]
    fn warning_confidence_is_normalized_per_kind() {
        use crate::template::Relation;
        let rule = Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            10,
            0.97,
        );
        let correlation = Warning {
            kind: WarningKind::CorrelationViolation,
            attr: AttrName::entry("datadir"),
            detail: String::new(),
            score: 100.0 + 0.97 * 10.0,
            rule: Some(rule.clone()),
        };
        assert_eq!(correlation.confidence(), 0.97);
        let nan_rule = Rule::new(
            AttrName::entry("datadir"),
            Relation::Owns,
            AttrName::entry("user"),
            10,
            f64::NAN,
        );
        let nan = Warning {
            rule: Some(nan_rule),
            score: f64::NAN,
            ..correlation.clone()
        };
        assert_eq!(nan.confidence(), 1.0, "non-finite clamps to 1.0");
        let type_violation = Warning::internal(
            WarningKind::TypeViolation,
            AttrName::entry("datadir"),
            String::new(),
            90.0 + 10.0 / 4.0, // 4 distinct training values
        );
        assert_eq!(type_violation.confidence(), 0.25);
        let unknown = Warning::internal(
            WarningKind::UnknownEntry,
            AttrName::entry("dataadir"),
            String::new(),
            70.0,
        );
        assert_eq!(unknown.confidence(), 0.7);
        let suspicious = Warning::internal(
            WarningKind::SuspiciousValue,
            AttrName::entry("port"),
            String::new(),
            40.0 * 0.5 * 0.9,
        );
        assert_eq!(suspicious.confidence(), 0.45);
    }

    #[test]
    fn repeated_unknown_entry_warns_once() {
        let det = engine();
        // The same misspelled entry flattened into two occurrence-marked
        // attributes must yield ONE warning, not flood the ranked list.
        let mut row = Row::new("target");
        row.set(AttrName::entry("dataadir#1"), ConfigValue::str("/tmp/a"));
        row.set(AttrName::entry("dataadir#2"), ConfigValue::str("/tmp/b"));
        row.set(AttrName::entry("user"), ConfigValue::str("mysql"));
        let report = det.check(&row, None);
        let unknown: Vec<_> = report
            .warnings()
            .iter()
            .filter(|w| w.kind() == WarningKind::UnknownEntry)
            .collect();
        assert_eq!(
            unknown.len(),
            1,
            "one warning per canonical base name: {report:?}"
        );
        assert!(unknown[0].detail().contains("dataadir"));
    }

    #[test]
    fn icf_ranking_is_count_aware() {
        // Two entries, both with 2 distinct training values: `stable` is
        // 9-vs-1 dominated by one value, `churny` an even 5-vs-5 split.
        // Pure distinct-value ICF scored them identically; the count-aware
        // score must rank the deviation on the rarely-changing entry first.
        let mut values = BTreeMap::new();
        let mut stable = BTreeMap::new();
        stable.insert("on".to_string(), 9usize);
        stable.insert("off".to_string(), 1usize);
        values.insert(AttrName::entry("stable"), stable);
        let mut churny = BTreeMap::new();
        churny.insert("alpha".to_string(), 5usize);
        churny.insert("beta".to_string(), 5usize);
        values.insert(AttrName::entry("churny"), churny);
        let mut entries = BTreeSet::new();
        entries.insert("stable".to_string());
        entries.insert("churny".to_string());
        let det = AnomalyDetector::from_parts(
            RuleSet::new(),
            TypeMap::new(),
            TrainingStats::from_parts(10, entries, values),
        );
        let mut row = Row::new("target");
        row.set(AttrName::entry("stable"), ConfigValue::str("weird"));
        row.set(AttrName::entry("churny"), ConfigValue::str("weird"));
        let report = det.check(&row, None);
        let score_of = |name: &str| {
            report
                .warnings()
                .iter()
                .find(|w| w.kind() == WarningKind::SuspiciousValue && w.attr().base() == name)
                .unwrap_or_else(|| panic!("no suspicious-value warning for {name}: {report:?}"))
                .score()
        };
        assert!(
            score_of("stable") > score_of("churny"),
            "modal dominance must outrank an even split: {report:?}"
        );
        // Pinned: 40 * (1/len) * (modal/total).
        assert_eq!(score_of("stable"), 40.0 * 0.5 * 0.9);
        assert_eq!(score_of("churny"), 40.0 * 0.5 * 0.5);
        assert_eq!(report.rank_of("stable"), Some(1));
    }

    #[test]
    fn indexed_correlation_check_matches_full_scan() {
        let det = engine();
        let targets = [broken_owner_image(), fleet(1).remove(0)];
        for image in &targets {
            let row = det
                .assembler
                .assemble_image(AppKind::Mysql, image)
                .expect("assembles");
            let mut indexed = Report::default();
            det.check_correlations(&row, Some(image), &mut indexed);
            let mut full = Report::default();
            det.check_correlations_unindexed(&row, Some(image), &mut full);
            assert_eq!(indexed, full, "index must be invisible in the warnings");
        }
    }

    #[test]
    fn check_fleet_matches_sequential_loop() {
        let det = engine();
        let mut targets = fleet(6);
        targets.push(broken_owner_image());
        let sequential: Vec<String> = targets
            .iter()
            .map(|img| {
                det.check_image(AppKind::Mysql, img)
                    .expect("check")
                    .render()
            })
            .collect();
        for workers in [1usize, 2, 4] {
            let batch = det.check_fleet(
                AppKind::Mysql,
                &targets,
                &FleetOptions::with_workers(workers),
            );
            let rendered: Vec<String> = batch
                .into_iter()
                .map(|r| r.expect("fleet image checks").render())
                .collect();
            assert_eq!(rendered, sequential, "workers={workers}");
        }
    }

    #[test]
    fn snapshot_round_trip_reconstructs_the_detector() {
        let det = engine();
        let text = det.snapshot().render();
        let loaded = AnomalyDetector::from_snapshot(
            crate::snapshot::DetectorSnapshot::parse(&text).expect("snapshot parses"),
        );
        assert_eq!(loaded.rules(), det.rules());
        assert_eq!(loaded.types(), det.types());
        assert_eq!(loaded.training_stats(), det.training_stats());
        let target = broken_owner_image();
        let a = det.check_image(AppKind::Mysql, &target).unwrap();
        let b = loaded.check_image(AppKind::Mysql, &target).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }
}
