//! Watch-mode detection serving: a long-running poll loop over a
//! directory of target configuration files.
//!
//! ConfEx frames configuration analysis as a continuously running service
//! over a *changing* image population; this module is that serving shape
//! for EnCore.  A [`Watcher`] holds a trained [`AnomalyDetector`] and a
//! directory of target files; each [`Watcher::cycle`] polls the directory
//! (mtime + size + content-fingerprint signatures — no inotify, no extra
//! dependencies), re-runs
//! [`AnomalyDetector::check_fleet`] over only the added/changed targets,
//! and hot-reloads the detector when its snapshot file changes on disk
//! (a reload re-checks *every* tracked target, since the rules changed
//! out from under them).  A malformed snapshot keeps the old detector
//! serving — a bad deploy must not take the watcher down.
//!
//! Each watched file is one target: its contents become the app's config
//! file in a minimal [`SystemImage`] ([`target_image`]).  Such targets
//! carry no accounts, services, or filesystem beyond the config itself,
//! so environment-backed rules evaluate to not-applicable; the watcher
//! covers the config-content checks (unknown entries, type violations,
//! suspicious values, and config-only correlations), which is exactly
//! what a config-file drop box can support.
//!
//! Observability: cycles, adds/changes/removes, re-checks, and reloads
//! count under `detect.watch.*`.  The global sink stays *cumulative*
//! while the watcher runs — a concurrent `/metrics` scrape sees monotone
//! counters — and each cycle's report is computed as the delta against
//! the previous cycle's roll-up ([`PipelineReport::delta_since`]; gauges
//! are reset at cycle start instead, since they are point-in-time).
//! When a report path is set the delta is appended as one JSON line — a
//! JSONL trace of the run that `encore-report` can diff cycle against
//! cycle, byte-identical whether or not a metrics endpoint is attached.
//! Daemon-lifetime instruments (`watch.*`, see
//! [`crate::obs::daemon_phase`]) are updated once per cycle, and a shared
//! [`Readiness`] flag (when one is wired in) flips true after the first
//! completed cycle and false while a detector hot-reload is failing.

use crate::detect::{AnomalyDetector, FleetOptions, Report};
use crate::snapshot::DetectorSnapshot;
use encore_assemble::AssembleError;
use encore_model::AppKind;
use encore_obs::expose::Readiness;
use encore_obs::PipelineReport;
use encore_sysimage::SystemImage;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// A file's last observed state: metadata plus a content fingerprint.
///
/// Metadata alone is not a change key — an in-place rewrite with identical
/// length inside the filesystem's mtime resolution produces the same
/// `(mtime, size)` pair, and such a target would silently never be
/// re-checked.  Folding an FNV-1a hash of the contents into the signature
/// closes that hole; the files are small configs already read every
/// re-check, so hashing them each poll is cheap and dependency-free.
///
/// Public because every hot-reload surface shares it: the watcher's
/// target/detector polling here and the per-app snapshot registry in
/// `encore-serve` both key "did this file really change" on the same
/// signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSig {
    mtime: SystemTime,
    size: u64,
    fingerprint: u64,
}

impl FileSig {
    /// Read a regular file's signature; `None` for directories, dangling
    /// entries, or races where the file vanished mid-poll.
    pub fn of(path: &Path) -> Option<FileSig> {
        sig_of(path)
    }
}

/// A shared, wakeable stop signal for long-running loops.
///
/// [`Watcher::run`] (and the `encore-serve` daemon) must stop *promptly*
/// when asked — stdin hit end-of-file, a `shutdown` verb arrived — but an
/// idle loop spends almost all of its time sleeping out the poll interval.
/// A plain `AtomicBool` polled between cycles leaves a full interval of
/// shutdown latency; this flag pairs the boolean with a [`Condvar`] so
/// [`StopFlag::stop`] wakes any in-progress [`StopFlag::wait_timeout`]
/// immediately.
#[derive(Debug, Default)]
pub struct StopFlag {
    stopped: Mutex<bool>,
    wake: Condvar,
}

impl StopFlag {
    /// A new, un-stopped flag.
    pub fn new() -> StopFlag {
        StopFlag::default()
    }

    /// Signal stop and wake every waiter.
    pub fn stop(&self) {
        let mut stopped = self.stopped.lock().expect("stop flag poisoned");
        *stopped = true;
        self.wake.notify_all();
    }

    /// Whether stop has been signalled.
    pub fn is_stopped(&self) -> bool {
        *self.stopped.lock().expect("stop flag poisoned")
    }

    /// Block until [`StopFlag::stop`] is called.
    pub fn wait(&self) {
        let mut stopped = self.stopped.lock().expect("stop flag poisoned");
        while !*stopped {
            stopped = self.wake.wait(stopped).expect("stop flag poisoned");
        }
    }

    /// Block for at most `timeout`, returning early — with `true` — the
    /// moment [`StopFlag::stop`] is called.  Returns whether the flag is
    /// stopped when the wait ends.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut stopped = self.stopped.lock().expect("stop flag poisoned");
        let deadline = Instant::now() + timeout;
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(stopped, deadline - now)
                .expect("stop flag poisoned");
            stopped = guard;
        }
        true
    }
}

/// 64-bit FNV-1a over the file contents — not cryptographic, just a
/// stable, dependency-free discriminator for same-size rewrites.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Read a regular file's signature; `None` for directories, dangling
/// entries, or races where the file vanished mid-poll.
fn sig_of(path: &Path) -> Option<FileSig> {
    let meta = std::fs::metadata(path).ok()?;
    if !meta.is_file() {
        return None;
    }
    let contents = std::fs::read(path).ok()?;
    Some(FileSig {
        mtime: meta.modified().ok()?,
        size: meta.len(),
        fingerprint: fnv1a(&contents),
    })
}

/// Wrap one configuration file's contents into a minimal [`SystemImage`]
/// whose only file is the app's canonical config path, owned by root.
pub fn target_image(app: AppKind, id: &str, config: &str) -> SystemImage {
    SystemImage::builder(id)
        .file(app.config_path(), "root", "root", 0o644, config)
        .build()
}

/// Configuration for a [`Watcher`].
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Which app's config files the watched directory holds.
    pub app: AppKind,
    /// The directory of target config files (one file = one target;
    /// dotfiles and subdirectories are ignored).
    pub dir: PathBuf,
    /// Sleep between cycles in [`Watcher::run`].
    pub interval: Duration,
    /// Stop after this many cycles; `None` runs until the stop callback
    /// fires.  This is the deterministic, testable shutdown path.
    pub max_iterations: Option<u64>,
    /// Worker threads for fleet checking; `None` uses all parallelism.
    pub workers: Option<usize>,
    /// A detector snapshot file to hot-reload when its signature changes.
    pub detector_path: Option<PathBuf>,
    /// Append one pipeline-report JSON line per cycle here (JSONL).
    pub report_path: Option<PathBuf>,
    /// A shared readiness flag to keep in sync with the serve loop
    /// (typically the one behind a [`MetricsServer`]'s `/readyz`): false
    /// until the first cycle completes, false again while a detector
    /// hot-reload is failing.
    ///
    /// [`MetricsServer`]: encore_obs::expose::MetricsServer
    pub readiness: Option<Arc<Readiness>>,
}

impl WatchOptions {
    /// Options for watching `dir` for `app` config files, with defaults:
    /// 1s interval, unbounded iterations, default parallelism, no
    /// detector reload, no report.
    pub fn new(app: AppKind, dir: impl Into<PathBuf>) -> WatchOptions {
        WatchOptions {
            app,
            dir: dir.into(),
            interval: Duration::from_millis(1_000),
            max_iterations: None,
            workers: None,
            detector_path: None,
            report_path: None,
            readiness: None,
        }
    }
}

/// What one [`Watcher::cycle`] did.
#[derive(Debug)]
pub struct CycleOutcome {
    /// 1-based cycle number within this watcher's lifetime.
    pub cycle: u64,
    /// Targets that appeared this cycle.
    pub added: usize,
    /// Targets whose signature changed this cycle.
    pub changed: usize,
    /// Targets that disappeared this cycle.
    pub removed: usize,
    /// Whether the detector snapshot was hot-reloaded this cycle.
    pub reloaded_detector: bool,
    /// A reload that was attempted but failed to parse (the old detector
    /// keeps serving).
    pub reload_error: Option<String>,
    /// Per-target check results for every re-checked target, in target
    /// name order.
    pub results: Vec<(String, Result<Report, AssembleError>)>,
    /// Targets tracked after this cycle.
    pub tracked: usize,
    /// Whether the watcher is ready after this cycle: at least one cycle
    /// completed and the last attempted detector reload did not fail.
    pub ready: bool,
    /// The cycle's pipeline report (also appended to the report file,
    /// when one is configured).
    pub report: PipelineReport,
}

/// The watch loop's state: the serving detector plus the last observed
/// directory signatures.
pub struct Watcher {
    options: WatchOptions,
    detector: AnomalyDetector,
    targets: BTreeMap<String, FileSig>,
    detector_sig: Option<FileSig>,
    cycles: u64,
    /// The cumulative roll-up at the end of the previous cycle; each
    /// cycle's report is the delta against this, so the global sink is
    /// never reset while the watcher runs (scrapes stay monotone).
    baseline: PipelineReport,
    /// Latched true by a failed detector reload, cleared by the next
    /// successful one — the not-ready condition behind `/readyz`.
    reload_failing: bool,
}

impl Watcher {
    /// A watcher serving `detector` under `options`.
    ///
    /// Snapshots the global instruments as the delta baseline (without
    /// resetting them) so the first cycle's report covers only that
    /// cycle's work, not the training run that preceded it.
    pub fn new(detector: AnomalyDetector, options: WatchOptions) -> Watcher {
        let detector_sig = options.detector_path.as_deref().and_then(sig_of);
        let baseline = crate::obs::pipeline_report();
        if let Some(readiness) = &options.readiness {
            readiness.set(false);
        }
        Watcher {
            options,
            detector,
            targets: BTreeMap::new(),
            detector_sig,
            cycles: 0,
            baseline,
            reload_failing: false,
        }
    }

    /// Cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The serving detector.
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// Re-read the detector snapshot if its file signature changed.
    /// Returns `(reloaded, parse error)`; on a parse error the old
    /// detector keeps serving and the new signature is remembered (no
    /// retry storm against the same bad file).
    fn maybe_reload_detector(&mut self) -> (bool, Option<String>) {
        let Some(path) = self.options.detector_path.as_deref() else {
            return (false, None);
        };
        let sig = sig_of(path);
        if sig.is_none() || sig == self.detector_sig {
            return (false, None);
        }
        self.detector_sig = sig;
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| DetectorSnapshot::parse(&text));
        match parsed {
            Ok(snapshot) => {
                self.detector = AnomalyDetector::from_snapshot(snapshot);
                crate::obs::DETECT_WATCH_DETECTOR_RELOADS.incr();
                crate::obs::WATCH_SNAPSHOT_RELOADS.incr();
                self.reload_failing = false;
                (true, None)
            }
            Err(e) => {
                self.reload_failing = true;
                (false, Some(e))
            }
        }
    }

    /// Run one cycle: poll the directory, re-check added/changed targets
    /// (all targets after a detector reload), update `detect.watch.*`
    /// metrics, and emit the cycle's report.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan and report-append I/O failures.  Target
    /// files that vanish between scan and read are skipped this cycle.
    pub fn cycle(&mut self) -> std::io::Result<CycleOutcome> {
        let cycle_started = Instant::now();
        self.cycles += 1;
        // Gauges are point-in-time ("the last run"); clearing them at
        // cycle start keeps a quiet cycle from inheriting a busy cycle's
        // pool-spread values, exactly as the old end-of-cycle reset did.
        crate::obs::reset_gauges();
        crate::obs::DETECT_WATCH_CYCLES.incr();
        let (reloaded, reload_error) = self.maybe_reload_detector();

        // Scan: current name → (path, signature) for regular non-dot files.
        // The detector snapshot may live inside the watch dir; it is not a
        // target.  Canonicalize it once per cycle, not once per entry — a
        // vanished detector fails to canonicalize and excludes nothing,
        // exactly as the per-entry form did.
        let detector_canon = self
            .options
            .detector_path
            .as_deref()
            .and_then(|d| std::fs::canonicalize(d).ok());
        let mut seen: BTreeMap<String, (PathBuf, FileSig)> = BTreeMap::new();
        for entry in std::fs::read_dir(&self.options.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with('.') {
                continue;
            }
            if let Some(canon) = &detector_canon {
                if std::fs::canonicalize(&path).is_ok_and(|p| p == *canon) {
                    continue;
                }
            }
            if let Some(sig) = sig_of(&path) {
                seen.insert(name.to_string(), (path, sig));
            }
        }

        // Classify against the previous cycle.
        let mut added = 0usize;
        let mut changed = 0usize;
        let mut recheck: Vec<(String, PathBuf)> = Vec::new();
        for (name, (path, sig)) in &seen {
            match self.targets.get(name) {
                None => {
                    added += 1;
                    recheck.push((name.clone(), path.clone()));
                }
                Some(old) if old != sig => {
                    changed += 1;
                    recheck.push((name.clone(), path.clone()));
                }
                // New rules invalidate every previous verdict.
                Some(_) if reloaded => recheck.push((name.clone(), path.clone())),
                Some(_) => {}
            }
        }
        let removed = self
            .targets
            .keys()
            .filter(|name| !seen.contains_key(*name))
            .count();
        self.targets = seen
            .iter()
            .map(|(name, &(_, sig))| (name.clone(), sig))
            .collect();
        crate::obs::DETECT_WATCH_TARGETS_ADDED.add(added as u64);
        crate::obs::DETECT_WATCH_TARGETS_CHANGED.add(changed as u64);
        crate::obs::DETECT_WATCH_TARGETS_REMOVED.add(removed as u64);
        crate::obs::DETECT_WATCH_TARGETS_TRACKED.set(self.targets.len() as u64);

        // Re-check: read → wrap → one fleet batch.
        let mut names: Vec<String> = Vec::new();
        let mut images: Vec<SystemImage> = Vec::new();
        for (name, path) in recheck {
            let Ok(contents) = std::fs::read_to_string(&path) else {
                continue; // vanished or unreadable: next cycle's problem
            };
            images.push(target_image(self.options.app, &name, &contents));
            names.push(name);
        }
        crate::obs::DETECT_WATCH_TARGETS_RECHECKED.add(images.len() as u64);
        let results: Vec<(String, Result<Report, AssembleError>)> = if images.is_empty() {
            Vec::new()
        } else {
            let options = FleetOptions {
                workers: self.options.workers,
            };
            let checked = self
                .detector
                .check_fleet(self.options.app, &images, &options);
            names.into_iter().zip(checked).collect()
        };

        // Daemon-lifetime instruments (scrape surface only; the `daemon`
        // phase is not part of the per-cycle pipeline report).
        crate::obs::WATCH_CYCLES.incr();
        crate::obs::WATCH_TARGETS_CHECKED.add(results.len() as u64);
        let warnings: u64 = results
            .iter()
            .map(|(_, r)| {
                r.as_ref()
                    .map_or(0, |report| report.warnings().len() as u64)
            })
            .sum();
        crate::obs::WATCH_WARNINGS.add(warnings);
        let unix_seconds = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        crate::obs::WATCH_LAST_CYCLE_UNIX.set(unix_seconds);
        let elapsed_ms = u64::try_from(cycle_started.elapsed().as_millis()).unwrap_or(u64::MAX);
        crate::obs::WATCH_CYCLE_DURATION.observe(elapsed_ms);
        if crate::obs::event::enabled() {
            use crate::obs::json::Json;
            let duration_us =
                u64::try_from(cycle_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            crate::obs::event::emit(
                crate::obs::event::Level::Info,
                "watch.cycle",
                vec![
                    ("cycle".to_string(), Json::Num(self.cycles)),
                    ("added".to_string(), Json::Num(added as u64)),
                    ("changed".to_string(), Json::Num(changed as u64)),
                    ("removed".to_string(), Json::Num(removed as u64)),
                    ("rechecked".to_string(), Json::Num(results.len() as u64)),
                    ("warnings".to_string(), Json::Num(warnings)),
                    ("tracked".to_string(), Json::Num(self.targets.len() as u64)),
                    ("reloaded".to_string(), Json::Bool(reloaded)),
                    ("duration_us".to_string(), Json::Num(duration_us)),
                ],
            );
        }

        // Per-cycle report = cumulative roll-up minus the previous
        // cycle's; the sink itself is never reset, so a concurrent
        // `/metrics` scrape always sees monotone counters.
        let cumulative = crate::obs::pipeline_report();
        let report = cumulative.delta_since(&self.baseline, &crate::obs::histogram_bounds);
        self.baseline = cumulative;
        if let Some(path) = &self.options.report_path {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            writeln!(file, "{}", report.render_json())?;
        }
        let ready = !self.reload_failing;
        if let Some(readiness) = &self.options.readiness {
            readiness.set(ready);
        }
        Ok(CycleOutcome {
            cycle: self.cycles,
            added,
            changed,
            removed,
            reloaded_detector: reloaded,
            reload_error,
            results,
            tracked: self.targets.len(),
            ready,
            report,
        })
    }

    /// Run cycles until `stop` is signalled, `max_iterations` is reached,
    /// or a cycle fails.  `on_cycle` observes every completed cycle (print
    /// it, collect it, ...).  Returns the total cycles run — exactly
    /// `max_iterations` when one is set and stop is never signalled.
    ///
    /// Two timing guarantees:
    ///
    /// * **No drift.** Each tick sleeps `interval` minus the time the
    ///   cycle (and its observer) took, so the effective period stays
    ///   `interval` instead of `interval + cycle_time`.  A cycle slower
    ///   than the interval starts the next tick immediately; it is never
    ///   "made up" with back-to-back extra cycles.
    /// * **Bounded shutdown.** The inter-cycle wait is a [`StopFlag`]
    ///   condvar wait, so [`StopFlag::stop`] — from a stdin-EOF watcher, a
    ///   `shutdown` verb, a signal thread — ends the loop immediately
    ///   rather than after up to a full interval.
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`Watcher::cycle`].
    pub fn run(
        &mut self,
        stop: &StopFlag,
        mut on_cycle: impl FnMut(&CycleOutcome),
    ) -> std::io::Result<u64> {
        loop {
            if stop.is_stopped() {
                return Ok(self.cycles);
            }
            let tick_started = Instant::now();
            let outcome = self.cycle()?;
            on_cycle(&outcome);
            if let Some(max) = self.options.max_iterations {
                if self.cycles >= max {
                    return Ok(self.cycles);
                }
            }
            let remaining = self.options.interval.saturating_sub(tick_started.elapsed());
            if stop.wait_timeout(remaining) {
                return Ok(self.cycles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("encore-sig-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn signature_distinguishes_same_size_rewrite_with_preserved_mtime() {
        let dir = scratch("same-size");
        let path = dir.join("target.cnf");
        std::fs::write(&path, "[mysqld]\nport = 3306\n").unwrap();
        let before = sig_of(&path).expect("signature");

        // Rewrite with different contents of the *same length*, then put
        // the original mtime back — metadata is now indistinguishable.
        std::fs::write(&path, "[mysqld]\nport = 3307\n").unwrap();
        std::fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_modified(before.mtime)
            .unwrap();
        let after = sig_of(&path).expect("signature");

        assert_eq!(after.mtime, before.mtime, "mtime restored");
        assert_eq!(after.size, before.size, "same length");
        assert_ne!(after, before, "fingerprint catches the rewrite");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn signature_is_stable_for_unchanged_contents() {
        let dir = scratch("stable");
        let path = dir.join("target.cnf");
        std::fs::write(&path, "[mysqld]\nport = 3306\n").unwrap();
        assert_eq!(sig_of(&path), sig_of(&path));
        assert!(sig_of(&dir).is_none(), "directories have no signature");
        assert!(sig_of(&dir.join("missing")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    /// A rule-free detector: enough for exercising loop timing over an
    /// empty directory without a training corpus.
    fn empty_detector() -> AnomalyDetector {
        AnomalyDetector::from_parts(
            crate::rules::RuleSet::default(),
            crate::types::TypeMap::default(),
            crate::detect::TrainingStats::default(),
        )
    }

    #[test]
    fn run_ticks_align_to_the_interval_instead_of_drifting() {
        let dir = scratch("tick-align");
        let interval = Duration::from_millis(150);
        let work = Duration::from_millis(100);
        let mut options = WatchOptions::new(AppKind::Mysql, &dir);
        options.interval = interval;
        options.max_iterations = Some(3);
        let mut watcher = Watcher::new(empty_detector(), options);
        let started = Instant::now();
        let cycles = watcher
            .run(&StopFlag::new(), |_| std::thread::sleep(work))
            .expect("run");
        let elapsed = started.elapsed();
        assert_eq!(cycles, 3);
        // Drift-free schedule: two full interval ticks plus the last
        // cycle's work — the 100ms observer is absorbed into each 150ms
        // tick.  The old `sleep(interval)`-after-work loop needs at least
        // 2*(150+100)+100 = 600ms; leave scheduling slack below that.
        assert!(
            elapsed >= Duration::from_millis(2 * 150 + 100),
            "ran too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(520),
            "interval drifted by cycle time: {elapsed:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_interrupts_the_inter_cycle_wait_immediately() {
        let dir = scratch("stop-wakes");
        let mut options = WatchOptions::new(AppKind::Mysql, &dir);
        // An interval far beyond the test budget: only a woken wait passes.
        options.interval = Duration::from_secs(600);
        let mut watcher = Watcher::new(empty_detector(), options);
        let stop = Arc::new(StopFlag::new());
        let stopper = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            stopper.stop();
        });
        let started = Instant::now();
        let cycles = watcher.run(&stop, |_| {}).expect("run");
        let elapsed = started.elapsed();
        handle.join().expect("stopper thread");
        assert_eq!(cycles, 1, "one cycle, then the interrupted wait");
        assert!(
            elapsed < Duration::from_secs(5),
            "stop did not interrupt the wait: {elapsed:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_flag_wait_reports_timeout_vs_stop() {
        let flag = StopFlag::new();
        assert!(!flag.wait_timeout(Duration::from_millis(1)), "timed out");
        assert!(!flag.is_stopped());
        flag.stop();
        assert!(flag.is_stopped());
        assert!(
            flag.wait_timeout(Duration::from_secs(600)),
            "already stopped"
        );
    }
}
