//! Training sets: assembled rows paired with their system images.
//!
//! Rule inference needs both the environment-enriched rows (for value-level
//! relations) and the raw images (for environment-level validation such as
//! path concatenation or accessibility checks).

use crate::types::TypeMap;
use encore_assemble::{AssembleError, Assembler};
use encore_model::{AppKind, AttrName, Dataset, Row, SemType};
use encore_sysimage::SystemImage;
use std::collections::BTreeMap;

/// A fully assembled training set.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    systems: Vec<(Row, SystemImage)>,
    types: TypeMap,
    app: AppKind,
}

impl TrainingSet {
    /// Build a training set from pre-assembled parts (used by the
    /// cross-component extension, [`crate::cross`]).
    pub fn from_parts(
        app: AppKind,
        systems: Vec<(Row, SystemImage)>,
        types: TypeMap,
    ) -> TrainingSet {
        TrainingSet {
            systems,
            types,
            app,
        }
    }

    /// Assemble a training set from images with the default [`Assembler`].
    ///
    /// Images whose configuration is missing or unparseable are skipped, as
    /// a crawler must tolerate; the per-image types are merged by majority
    /// vote into the stored [`TypeMap`].
    ///
    /// # Errors
    ///
    /// Returns the first assembly error only if *no* image assembles.
    pub fn assemble(app: AppKind, images: &[SystemImage]) -> Result<TrainingSet, AssembleError> {
        TrainingSet::assemble_with(&Assembler::new(), app, images)
    }

    /// Assemble with a caller-supplied (possibly customized) assembler.
    ///
    /// # Errors
    ///
    /// Returns the first assembly error only if *no* image assembles.
    pub fn assemble_with(
        assembler: &Assembler,
        app: AppKind,
        images: &[SystemImage],
    ) -> Result<TrainingSet, AssembleError> {
        let mut systems = Vec::new();
        let mut votes: BTreeMap<AttrName, Vec<SemType>> = BTreeMap::new();
        let mut first_err = None;
        for img in images {
            match assembler.assemble_system(app, img) {
                Ok(assembled) => {
                    for (attr, ty) in &assembled.types {
                        votes.entry(attr.clone()).or_default().push(*ty);
                    }
                    systems.push((assembled.row, img.clone()));
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if systems.is_empty() {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(TrainingSet {
            systems,
            types: TypeMap::merge_votes(&votes),
            app,
        })
    }

    /// The application this training set describes.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// The assembled systems (row + image).
    pub fn systems(&self) -> &[(Row, SystemImage)] {
        &self.systems
    }

    /// Number of training systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the training set is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// The merged type map.
    pub fn types(&self) -> &TypeMap {
        &self.types
    }

    /// A dataset view of the rows (cloned), for statistics and mining.
    pub fn dataset(&self) -> Dataset {
        self.systems.iter().map(|(r, _)| r.clone()).collect()
    }

    /// A fresh per-run statistics cache (resolved attribute types + memoized
    /// value entropies) over this training set.
    pub fn stats_cache(&self) -> crate::stats::StatsCache {
        crate::stats::StatsCache::new(self.dataset(), &self.types)
    }

    /// The detector-side training statistics (known entry names + value
    /// histograms + system count) — the corpus-free remainder a
    /// [`crate::snapshot::DetectorSnapshot`] persists.
    pub fn training_stats(&self) -> crate::detect::TrainingStats {
        crate::detect::TrainingStats::from_training(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(id: &str) -> SystemImage {
        SystemImage::builder(id)
            .user("mysql", 27, &["mysql"])
            .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
            .file(
                "/etc/mysql/my.cnf",
                "root",
                "root",
                0o644,
                "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\n",
            )
            .build()
    }

    #[test]
    fn assembles_and_merges_types() {
        let images: Vec<_> = (0..3).map(|i| img(&format!("i{i}"))).collect();
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(
            ts.types().type_of(&AttrName::entry("datadir")),
            SemType::FilePath
        );
        assert_eq!(ts.app(), AppKind::Mysql);
    }

    #[test]
    fn skips_broken_images() {
        let images = vec![img("good"), SystemImage::builder("broken").build()];
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn all_broken_is_error() {
        let images = vec![SystemImage::builder("b1").build()];
        assert!(TrainingSet::assemble(AppKind::Mysql, &images).is_err());
    }

    #[test]
    fn dataset_view_matches() {
        let images: Vec<_> = (0..2).map(|i| img(&format!("i{i}"))).collect();
        let ts = TrainingSet::assemble(AppKind::Mysql, &images).unwrap();
        assert_eq!(ts.dataset().num_rows(), 2);
    }
}
