//! Rule-set linting: contradictions, redundancy, and orphans in a learned
//! (or hand-written) rule set.
//!
//! The inference filters guarantee per-rule statistical quality, but say
//! nothing about the set as a whole — two individually high-confidence
//! rules can still be jointly unsatisfiable, and customization files (§5.3)
//! are hand-edited, so they drift.  This linter checks the *set*:
//!
//! * **Contradictions** — `A < B` with `B < A` (`EC020`), one path owned by
//!   two different user entries (`EC021`), `A == B` alongside a strict
//!   ordering between the same pair (`EC022`).
//! * **Redundancy** — symmetric duplicates of the commutative `==`
//!   (`EC030`), substring rules subsumed by an equality on the same pair
//!   (`EC031`), exact duplicates (`EC032`).
//! * **Orphans** — rules referencing attributes the corpus does not contain
//!   at all (`EC040`); such rules can never fire and usually indicate a
//!   renamed entry or a stale customization file.
//! * **Ordering cycles** — a *transitive* contradiction through three or
//!   more strict ordering rules (`A < B`, `B < C`, `C < A`, `EC060`); each
//!   pair is individually satisfiable, so the pairwise `EC020` check cannot
//!   see it, but the set as a whole admits no assignment.

use crate::diag::{Code, Diagnostic, Severity};
use encore::{DetectorSnapshot, Relation, Rule, RuleSet, StatsCache};
use encore_model::AttrName;
use std::collections::{BTreeMap, BTreeSet};

/// Lint a detector snapshot's bundled artifacts against each other.
///
/// `EC071`: a [`encore::TypeMap`] entry that no rule in the bundled rule
/// set references *and* that the bundled training statistics never
/// observed.  Rules, types, and stats are retrained together, and every
/// type the inference produces comes from an observed value — so a typed
/// attribute with neither a referencing rule nor a value histogram means
/// the type map comes from a *different* retrain than the rest of the
/// snapshot (hand-stitched from two training runs, or edited after the
/// fact) — drift worth flagging before the artifact serves a fleet.  The
/// type still participates in check 3 (data-type violations), so this is a
/// warning, not an error.
pub fn lint_snapshot(snapshot: &DetectorSnapshot) -> Vec<Diagnostic> {
    let referenced: BTreeSet<&AttrName> = snapshot
        .rules()
        .rules()
        .iter()
        .flat_map(|r| [&r.a, &r.b])
        .collect();
    let observed = snapshot.stats().values();
    snapshot
        .types()
        .iter()
        .filter(|(attr, _)| !referenced.contains(attr) && !observed.contains_key(attr))
        .map(|(attr, ty)| {
            Diagnostic::new(
                Code::UnreferencedTypeEntry,
                format!(
                    "type entry `{attr}: {ty}` is referenced by no rule and was never \
                     observed in the snapshot's training statistics (rules and types \
                     from different retrains?)"
                ),
            )
            .with_context(format!("{}\t{}", attr.render_tagged(), ty.name()))
        })
        .collect()
}

/// Lint a rule set.  With a [`StatsCache`] the linter also checks orphans
/// against the corpus and looks for row evidence when judging conflicting
/// owners; without one, corpus-dependent checks are skipped or downgraded.
pub fn lint_rules(rules: &RuleSet, cache: Option<&StatsCache>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let all: Vec<&Rule> = rules.rules().iter().collect();

    for (i, rule) in all.iter().enumerate() {
        let earlier = &all[..i];

        // EC032: exact duplicate (same pair, same relation).
        if earlier
            .iter()
            .any(|p| p.relation == rule.relation && p.a == rule.a && p.b == rule.b)
        {
            diags.push(
                Diagnostic::new(
                    Code::DuplicateRule,
                    format!(
                        "rule `{} {} {}` appears more than once",
                        rule.a, rule.relation, rule.b
                    ),
                )
                .with_context(rule.render()),
            );
            continue; // further findings would duplicate the first copy's
        }

        // EC020: contradictory strict ordering.
        if matches!(rule.relation, Relation::LessNum | Relation::LessSize) {
            if let Some(rev) = earlier
                .iter()
                .find(|p| p.relation == rule.relation && p.a == rule.b && p.b == rule.a)
            {
                diags.push(
                    Diagnostic::new(
                        Code::ContradictoryOrdering,
                        format!(
                            "`{} < {}` contradicts the earlier `{} < {}`: no system \
                             can satisfy both",
                            rule.a, rule.b, rev.a, rev.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC030: symmetric duplicate of the commutative ==.
        if rule.relation == Relation::Equal {
            if let Some(rev) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && p.a == rule.b && p.b == rule.a)
            {
                diags.push(
                    Diagnostic::new(
                        Code::SymmetricEqualDuplicate,
                        format!(
                            "`{} == {}` restates the earlier `{} == {}`: equality is \
                             symmetric",
                            rule.a, rule.b, rev.a, rev.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC022: equality alongside a strict ordering on the same pair.
        if matches!(rule.relation, Relation::LessNum | Relation::LessSize) {
            if let Some(eq) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && same_pair_unordered(p, &rule.a, &rule.b))
            {
                diags.push(equal_vs_ordering(rule, eq).with_context(rule.render()));
            }
        }
        if rule.relation == Relation::Equal {
            if let Some(ord) = earlier.iter().find(|p| {
                matches!(p.relation, Relation::LessNum | Relation::LessSize)
                    && same_pair_unordered(rule, &p.a, &p.b)
            }) {
                diags.push(equal_vs_ordering(ord, rule).with_context(rule.render()));
            }
        }

        // EC031: substring subsumed by equality on the same pair.
        if rule.relation == Relation::SubstringOf {
            if let Some(eq) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && same_pair_unordered(p, &rule.a, &rule.b))
            {
                diags.push(
                    Diagnostic::new(
                        Code::SubstringSubsumedByEqual,
                        format!(
                            "`{} substring-of {}` is implied by the equality `{} == {}`",
                            rule.a, rule.b, eq.a, eq.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC021: one path claimed by two different owner entries.
        if rule.relation == Relation::Owns {
            if let Some(other) = earlier
                .iter()
                .find(|p| p.relation == Relation::Owns && p.a == rule.a && p.b != rule.b)
            {
                diags.push(conflicting_owners(rule, other, cache));
            }
        }

        // EC040: orphan attributes.
        if let Some(cache) = cache {
            for attr in [&rule.a, &rule.b] {
                if !cache.has_attribute(attr) {
                    diags.push(
                        Diagnostic::new(
                            Code::OrphanRule,
                            format!("rule references `{attr}`, which no training system has"),
                        )
                        .with_context(rule.render()),
                    );
                }
            }
        }
    }
    diags.extend(ordering_cycles(&all));
    diags
}

/// EC060: transitive cycles in the strict-ordering rule graph.
///
/// Each of `<num` and `<size` induces a directed graph over attributes; a
/// cycle of length ≥ 3 means the rules are jointly unsatisfiable even
/// though every pair passes the `EC020` check.  2-cycles are exactly what
/// `EC020` already reports and are skipped here.  Cycles are deduplicated
/// by canonical rotation (smallest attribute first), and each diagnostic
/// carries the cycle-closing rule as context.
fn ordering_cycles(all: &[&Rule]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for relation in [Relation::LessNum, Relation::LessSize] {
        // Edge map a → (b, closing rule); first rule wins for duplicates
        // (EC032 reports the copies).
        let mut adjacency: BTreeMap<&AttrName, Vec<&AttrName>> = BTreeMap::new();
        let mut edge_rule: BTreeMap<(&AttrName, &AttrName), &Rule> = BTreeMap::new();
        for rule in all {
            if rule.relation == relation {
                adjacency.entry(&rule.a).or_default().push(&rule.b);
                edge_rule.entry((&rule.a, &rule.b)).or_insert(rule);
            }
        }
        let mut seen: BTreeSet<Vec<&AttrName>> = BTreeSet::new();
        for cycle in find_cycles(&adjacency) {
            if cycle.len() < 3 || !seen.insert(canonical_rotation(&cycle)) {
                continue;
            }
            let chain = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" < ");
            let closing = edge_rule[&(*cycle.last().expect("non-empty cycle"), cycle[0])];
            diags.push(
                Diagnostic::new(
                    Code::OrderingCycle,
                    format!(
                        "ordering cycle `{chain}`: every pair is satisfiable, but the \
                         {} rules together admit no assignment",
                        cycle.len()
                    ),
                )
                .with_context(closing.render()),
            );
        }
    }
    diags
}

/// Rotate a cycle so its smallest attribute comes first — the canonical
/// form under which rotations of the same cycle compare equal.
fn canonical_rotation<'a>(cycle: &[&'a AttrName]) -> Vec<&'a AttrName> {
    let start = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, a)| **a)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[start..]);
    out.extend_from_slice(&cycle[..start]);
    out
}

/// Depth-first cycle search with the usual white/gray/black coloring: a
/// back edge to a gray node closes a cycle, read off the path stack.
/// Every component is visited, so disjoint cycles are all found; nodes are
/// blackened after exploration, so the search stays linear in the graph.
fn find_cycles<'a>(
    adjacency: &BTreeMap<&'a AttrName, Vec<&'a AttrName>>,
) -> Vec<Vec<&'a AttrName>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Gray,
        Black,
    }
    fn visit<'a>(
        node: &'a AttrName,
        adjacency: &BTreeMap<&'a AttrName, Vec<&'a AttrName>>,
        color: &mut BTreeMap<&'a AttrName, Color>,
        path: &mut Vec<&'a AttrName>,
        cycles: &mut Vec<Vec<&'a AttrName>>,
    ) {
        color.insert(node, Color::Gray);
        path.push(node);
        for &next in adjacency.get(node).into_iter().flatten() {
            match color.get(next) {
                Some(Color::Gray) => {
                    let start = path
                        .iter()
                        .position(|&n| n == next)
                        .expect("gray node is on the path");
                    cycles.push(path[start..].to_vec());
                }
                Some(Color::Black) => {}
                None => visit(next, adjacency, color, path, cycles),
            }
        }
        path.pop();
        color.insert(node, Color::Black);
    }

    let mut color = BTreeMap::new();
    let mut cycles = Vec::new();
    for &node in adjacency.keys() {
        if !color.contains_key(node) {
            visit(node, adjacency, &mut color, &mut Vec::new(), &mut cycles);
        }
    }
    cycles
}

/// Whether `rule` relates exactly the unordered pair `{a, b}`.
fn same_pair_unordered(rule: &Rule, a: &AttrName, b: &AttrName) -> bool {
    (rule.a == *a && rule.b == *b) || (rule.a == *b && rule.b == *a)
}

fn equal_vs_ordering(ordering: &Rule, eq: &Rule) -> Diagnostic {
    Diagnostic::new(
        Code::EqualContradictsOrdering,
        format!(
            "`{} == {}` contradicts the strict ordering `{} < {}`",
            eq.a, eq.b, ordering.a, ordering.b
        ),
    )
}

/// Two `Owns` rules claim the same path for different user entries.  That is
/// only a real contradiction if the two user entries can hold *different*
/// values — if they always agree (aliased entries), it is merely redundant.
/// With a corpus we look for a row where the values differ; found ⇒ Error,
/// not found (or no corpus) ⇒ Warning.
fn conflicting_owners(rule: &Rule, other: &Rule, cache: Option<&StatsCache>) -> Diagnostic {
    let evidence = cache.and_then(|cache| {
        cache.dataset().rows().iter().find_map(|row| {
            let (va, vb) = (row.get(&rule.b)?, row.get(&other.b)?);
            (va.render() != vb.render()).then(|| {
                format!(
                    "system `{}` has {}={} but {}={}",
                    row.id(),
                    rule.b,
                    va.render(),
                    other.b,
                    vb.render()
                )
            })
        })
    });
    let base = format!(
        "`{}` is claimed by both `{}` and `{}` as owner",
        rule.a, rule.b, other.b
    );
    match evidence {
        Some(ev) => Diagnostic::new(Code::ConflictingOwners, format!("{base}; {ev}"))
            .with_context(rule.render()),
        None => Diagnostic::new(
            Code::ConflictingOwners,
            format!("{base}; no training row shows them differing, so this may be an alias"),
        )
        .with_severity(Severity::Warning)
        .with_context(rule.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(a: &str, relation: Relation, b: &str) -> Rule {
        Rule::new(AttrName::entry(a), relation, AttrName::entry(b), 10, 1.0)
    }

    #[test]
    fn clean_set_is_clean() {
        let set: RuleSet = vec![
            rule("datadir", Relation::Owns, "user"),
            rule("min_size", Relation::LessSize, "max_size"),
        ]
        .into_iter()
        .collect();
        assert!(lint_rules(&set, None).is_empty());
    }

    #[test]
    fn contradictory_ordering_gets_ec020() {
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessNum, "a"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ContradictoryOrdering);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn equal_vs_ordering_gets_ec022_both_orders() {
        for rules in [
            vec![
                rule("a", Relation::Equal, "b"),
                rule("b", Relation::LessSize, "a"),
            ],
            vec![
                rule("a", Relation::LessNum, "b"),
                rule("b", Relation::Equal, "a"),
            ],
        ] {
            let set: RuleSet = rules.into_iter().collect();
            let diags = lint_rules(&set, None);
            assert_eq!(diags.len(), 1, "{diags:?}");
            assert_eq!(diags[0].code, Code::EqualContradictsOrdering);
        }
    }

    #[test]
    fn symmetric_equal_gets_ec030_and_duplicate_gets_ec032() {
        let set: RuleSet = vec![
            rule("a", Relation::Equal, "b"),
            rule("b", Relation::Equal, "a"),
            rule("a", Relation::Equal, "b"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::SymmetricEqualDuplicate, Code::DuplicateRule],
            "{diags:?}"
        );
    }

    #[test]
    fn substring_subsumed_gets_ec031() {
        let set: RuleSet = vec![
            rule("a", Relation::Equal, "b"),
            rule("a", Relation::SubstringOf, "b"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::SubstringSubsumedByEqual);
    }

    #[test]
    fn three_cycle_gets_one_ec060() {
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessNum, "c"),
            rule("c", Relation::LessNum, "a"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::OrderingCycle);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("a < b < c < a"), "{diags:?}");
        // Context is the cycle-closing rule.
        assert!(
            diags[0].context.as_deref().unwrap_or("").contains('c'),
            "{diags:?}"
        );
    }

    #[test]
    fn acyclic_chain_has_no_ec060() {
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessNum, "c"),
            rule("a", Relation::LessNum, "c"),
        ]
        .into_iter()
        .collect();
        assert!(lint_rules(&set, None).is_empty());
    }

    #[test]
    fn two_cycle_is_ec020_not_ec060() {
        let set: RuleSet = vec![
            rule("a", Relation::LessSize, "b"),
            rule("b", Relation::LessSize, "a"),
        ]
        .into_iter()
        .collect();
        let codes: Vec<Code> = lint_rules(&set, None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::ContradictoryOrdering]);
    }

    #[test]
    fn disjoint_cycles_each_get_ec060() {
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessNum, "c"),
            rule("c", Relation::LessNum, "a"),
            rule("x", Relation::LessNum, "y"),
            rule("y", Relation::LessNum, "z"),
            rule("z", Relation::LessNum, "x"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == Code::OrderingCycle));
    }

    #[test]
    fn mixed_relations_do_not_form_a_cycle() {
        // a <num b <size c <num a: no single relation's graph is cyclic.
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessSize, "c"),
            rule("c", Relation::LessNum, "a"),
        ]
        .into_iter()
        .collect();
        assert!(lint_rules(&set, None).is_empty());
    }

    #[test]
    fn unreferenced_type_entries_get_ec071() {
        use encore::{TrainingStats, TypeMap};
        use encore_model::SemType;
        let rules: RuleSet = vec![rule("datadir", Relation::Owns, "user")]
            .into_iter()
            .collect();
        let mut types = TypeMap::new();
        types.set(AttrName::entry("datadir"), SemType::FilePath);
        types.set(AttrName::entry("ghost_entry"), SemType::Number);
        // `port` is unreferenced by the rules but *observed* in training —
        // the normal case for value-check-only attributes — so it is clean.
        types.set(AttrName::entry("port"), SemType::Number);
        let observed: BTreeMap<_, _> = [(
            AttrName::entry("port"),
            [("3306".to_string(), 8usize)].into_iter().collect(),
        )]
        .into_iter()
        .collect();
        let snapshot = DetectorSnapshot::new(
            rules,
            types,
            TrainingStats::from_parts(8, BTreeSet::new(), observed),
        );
        let diags = lint_snapshot(&snapshot);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::UnreferencedTypeEntry);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("ghost_entry"), "{diags:?}");
    }

    #[test]
    fn fully_referenced_snapshot_types_are_clean() {
        use encore::{TrainingStats, TypeMap};
        use encore_model::SemType;
        let rules: RuleSet = vec![rule("a", Relation::LessNum, "b")]
            .into_iter()
            .collect();
        let mut types = TypeMap::new();
        types.set(AttrName::entry("a"), SemType::Number);
        types.set(AttrName::entry("b"), SemType::Number);
        let snapshot = DetectorSnapshot::new(
            rules,
            types,
            TrainingStats::from_parts(8, BTreeSet::new(), BTreeMap::new()),
        );
        assert!(lint_snapshot(&snapshot).is_empty());
    }

    #[test]
    fn conflicting_owners_without_corpus_is_warning() {
        let set: RuleSet = vec![
            rule("datadir", Relation::Owns, "user"),
            rule("datadir", Relation::Owns, "backup_user"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ConflictingOwners);
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
