//! Rule-set linting: contradictions, redundancy, and orphans in a learned
//! (or hand-written) rule set.
//!
//! The inference filters guarantee per-rule statistical quality, but say
//! nothing about the set as a whole — two individually high-confidence
//! rules can still be jointly unsatisfiable, and customization files (§5.3)
//! are hand-edited, so they drift.  This linter checks the *set*:
//!
//! * **Contradictions** — `A < B` with `B < A` (`EC020`), one path owned by
//!   two different user entries (`EC021`), `A == B` alongside a strict
//!   ordering between the same pair (`EC022`).
//! * **Redundancy** — symmetric duplicates of the commutative `==`
//!   (`EC030`), substring rules subsumed by an equality on the same pair
//!   (`EC031`), exact duplicates (`EC032`).
//! * **Orphans** — rules referencing attributes the corpus does not contain
//!   at all (`EC040`); such rules can never fire and usually indicate a
//!   renamed entry or a stale customization file.

use crate::diag::{Code, Diagnostic, Severity};
use encore::{Relation, Rule, RuleSet, StatsCache};
use encore_model::AttrName;

/// Lint a rule set.  With a [`StatsCache`] the linter also checks orphans
/// against the corpus and looks for row evidence when judging conflicting
/// owners; without one, corpus-dependent checks are skipped or downgraded.
pub fn lint_rules(rules: &RuleSet, cache: Option<&StatsCache>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let all: Vec<&Rule> = rules.rules().iter().collect();

    for (i, rule) in all.iter().enumerate() {
        let earlier = &all[..i];

        // EC032: exact duplicate (same pair, same relation).
        if earlier
            .iter()
            .any(|p| p.relation == rule.relation && p.a == rule.a && p.b == rule.b)
        {
            diags.push(
                Diagnostic::new(
                    Code::DuplicateRule,
                    format!(
                        "rule `{} {} {}` appears more than once",
                        rule.a, rule.relation, rule.b
                    ),
                )
                .with_context(rule.render()),
            );
            continue; // further findings would duplicate the first copy's
        }

        // EC020: contradictory strict ordering.
        if matches!(rule.relation, Relation::LessNum | Relation::LessSize) {
            if let Some(rev) = earlier
                .iter()
                .find(|p| p.relation == rule.relation && p.a == rule.b && p.b == rule.a)
            {
                diags.push(
                    Diagnostic::new(
                        Code::ContradictoryOrdering,
                        format!(
                            "`{} < {}` contradicts the earlier `{} < {}`: no system \
                             can satisfy both",
                            rule.a, rule.b, rev.a, rev.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC030: symmetric duplicate of the commutative ==.
        if rule.relation == Relation::Equal {
            if let Some(rev) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && p.a == rule.b && p.b == rule.a)
            {
                diags.push(
                    Diagnostic::new(
                        Code::SymmetricEqualDuplicate,
                        format!(
                            "`{} == {}` restates the earlier `{} == {}`: equality is \
                             symmetric",
                            rule.a, rule.b, rev.a, rev.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC022: equality alongside a strict ordering on the same pair.
        if matches!(rule.relation, Relation::LessNum | Relation::LessSize) {
            if let Some(eq) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && same_pair_unordered(p, &rule.a, &rule.b))
            {
                diags.push(equal_vs_ordering(rule, eq).with_context(rule.render()));
            }
        }
        if rule.relation == Relation::Equal {
            if let Some(ord) = earlier.iter().find(|p| {
                matches!(p.relation, Relation::LessNum | Relation::LessSize)
                    && same_pair_unordered(rule, &p.a, &p.b)
            }) {
                diags.push(equal_vs_ordering(ord, rule).with_context(rule.render()));
            }
        }

        // EC031: substring subsumed by equality on the same pair.
        if rule.relation == Relation::SubstringOf {
            if let Some(eq) = earlier
                .iter()
                .find(|p| p.relation == Relation::Equal && same_pair_unordered(p, &rule.a, &rule.b))
            {
                diags.push(
                    Diagnostic::new(
                        Code::SubstringSubsumedByEqual,
                        format!(
                            "`{} substring-of {}` is implied by the equality `{} == {}`",
                            rule.a, rule.b, eq.a, eq.b
                        ),
                    )
                    .with_context(rule.render()),
                );
            }
        }

        // EC021: one path claimed by two different owner entries.
        if rule.relation == Relation::Owns {
            if let Some(other) = earlier
                .iter()
                .find(|p| p.relation == Relation::Owns && p.a == rule.a && p.b != rule.b)
            {
                diags.push(conflicting_owners(rule, other, cache));
            }
        }

        // EC040: orphan attributes.
        if let Some(cache) = cache {
            for attr in [&rule.a, &rule.b] {
                if !cache.has_attribute(attr) {
                    diags.push(
                        Diagnostic::new(
                            Code::OrphanRule,
                            format!("rule references `{attr}`, which no training system has"),
                        )
                        .with_context(rule.render()),
                    );
                }
            }
        }
    }
    diags
}

/// Whether `rule` relates exactly the unordered pair `{a, b}`.
fn same_pair_unordered(rule: &Rule, a: &AttrName, b: &AttrName) -> bool {
    (rule.a == *a && rule.b == *b) || (rule.a == *b && rule.b == *a)
}

fn equal_vs_ordering(ordering: &Rule, eq: &Rule) -> Diagnostic {
    Diagnostic::new(
        Code::EqualContradictsOrdering,
        format!(
            "`{} == {}` contradicts the strict ordering `{} < {}`",
            eq.a, eq.b, ordering.a, ordering.b
        ),
    )
}

/// Two `Owns` rules claim the same path for different user entries.  That is
/// only a real contradiction if the two user entries can hold *different*
/// values — if they always agree (aliased entries), it is merely redundant.
/// With a corpus we look for a row where the values differ; found ⇒ Error,
/// not found (or no corpus) ⇒ Warning.
fn conflicting_owners(rule: &Rule, other: &Rule, cache: Option<&StatsCache>) -> Diagnostic {
    let evidence = cache.and_then(|cache| {
        cache.dataset().rows().iter().find_map(|row| {
            let (va, vb) = (row.get(&rule.b)?, row.get(&other.b)?);
            (va.render() != vb.render()).then(|| {
                format!(
                    "system `{}` has {}={} but {}={}",
                    row.id(),
                    rule.b,
                    va.render(),
                    other.b,
                    vb.render()
                )
            })
        })
    });
    let base = format!(
        "`{}` is claimed by both `{}` and `{}` as owner",
        rule.a, rule.b, other.b
    );
    match evidence {
        Some(ev) => Diagnostic::new(Code::ConflictingOwners, format!("{base}; {ev}"))
            .with_context(rule.render()),
        None => Diagnostic::new(
            Code::ConflictingOwners,
            format!("{base}; no training row shows them differing, so this may be an alias"),
        )
        .with_severity(Severity::Warning)
        .with_context(rule.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(a: &str, relation: Relation, b: &str) -> Rule {
        Rule::new(AttrName::entry(a), relation, AttrName::entry(b), 10, 1.0)
    }

    #[test]
    fn clean_set_is_clean() {
        let set: RuleSet = vec![
            rule("datadir", Relation::Owns, "user"),
            rule("min_size", Relation::LessSize, "max_size"),
        ]
        .into_iter()
        .collect();
        assert!(lint_rules(&set, None).is_empty());
    }

    #[test]
    fn contradictory_ordering_gets_ec020() {
        let set: RuleSet = vec![
            rule("a", Relation::LessNum, "b"),
            rule("b", Relation::LessNum, "a"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ContradictoryOrdering);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn equal_vs_ordering_gets_ec022_both_orders() {
        for rules in [
            vec![
                rule("a", Relation::Equal, "b"),
                rule("b", Relation::LessSize, "a"),
            ],
            vec![
                rule("a", Relation::LessNum, "b"),
                rule("b", Relation::Equal, "a"),
            ],
        ] {
            let set: RuleSet = rules.into_iter().collect();
            let diags = lint_rules(&set, None);
            assert_eq!(diags.len(), 1, "{diags:?}");
            assert_eq!(diags[0].code, Code::EqualContradictsOrdering);
        }
    }

    #[test]
    fn symmetric_equal_gets_ec030_and_duplicate_gets_ec032() {
        let set: RuleSet = vec![
            rule("a", Relation::Equal, "b"),
            rule("b", Relation::Equal, "a"),
            rule("a", Relation::Equal, "b"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::SymmetricEqualDuplicate, Code::DuplicateRule],
            "{diags:?}"
        );
    }

    #[test]
    fn substring_subsumed_gets_ec031() {
        let set: RuleSet = vec![
            rule("a", Relation::Equal, "b"),
            rule("a", Relation::SubstringOf, "b"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::SubstringSubsumedByEqual);
    }

    #[test]
    fn conflicting_owners_without_corpus_is_warning() {
        let set: RuleSet = vec![
            rule("datadir", Relation::Owns, "user"),
            rule("datadir", Relation::Owns, "backup_user"),
        ]
        .into_iter()
        .collect();
        let diags = lint_rules(&set, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ConflictingOwners);
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
