//! The diagnostic model: stable codes, severities, and renderings.
//!
//! Every finding the checkers produce is a [`Diagnostic`] carrying a stable
//! [`Code`] (`EC0xx`), so scripts and CI can match on codes rather than
//! message text.  Codes are grouped by analyzer:
//!
//! * `EC00x` — template type-checking,
//! * `EC01x` — corpus eligibility (dead templates),
//! * `EC02x`/`EC03x`/`EC04x` — rule-set linting (contradictions,
//!   redundancy, orphans),
//! * `EC05x` — filter-threshold validation,
//! * `EC06x` — rule-graph analysis (transitive ordering cycles).

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Suspicious but not fatal; `--deny-warnings` promotes these.
    Warning,
    /// A defect — `encore-lint` exits nonzero when any is present.
    Error,
}

impl Severity {
    /// Parse the lowercase name rendered by `Display` (the `--severity`
    /// flag's vocabulary).
    pub fn parse_name(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `EC001` — a template line failed to parse.
    TemplateSyntax,
    /// `EC002` — a template's slot types are not admitted by its relation.
    IllTypedTemplate,
    /// `EC003` — a template's confidence override is outside `(0, 1]`.
    BadTemplateConfidence,
    /// `EC004` — the same template appears more than once.
    DuplicateTemplate,
    /// `EC010` — a template has no eligible attributes for a slot.
    DeadTemplateNoSlots,
    /// `EC011` — a template has eligible slots but zero live pairs.
    DeadTemplateNoPairs,
    /// `EC020` — contradictory ordering rules (`A < B` and `B < A`).
    ContradictoryOrdering,
    /// `EC021` — one path is claimed by two different owner entries.
    ConflictingOwners,
    /// `EC022` — an equality rule contradicts a strict ordering rule.
    EqualContradictsOrdering,
    /// `EC030` — a symmetric duplicate of an equality rule.
    SymmetricEqualDuplicate,
    /// `EC031` — a substring rule subsumed by an equality rule.
    SubstringSubsumedByEqual,
    /// `EC032` — an exact duplicate rule.
    DuplicateRule,
    /// `EC040` — a rule references an attribute absent from the corpus.
    OrphanRule,
    /// `EC050` — filter thresholds out of range.
    InvalidThresholds,
    /// `EC060` — a transitive cycle of strict ordering rules
    /// (`A < B`, `B < C`, `C < A`).
    OrderingCycle,
    /// `EC070` — a detector snapshot's format version is newer than this
    /// build supports.
    UnsupportedSnapshotVersion,
    /// `EC071` — a snapshot `TypeMap` entry no rule in the bundled rule set
    /// references (drift between retrains).
    UnreferencedTypeEntry,
}

impl Code {
    /// Every code, in `EC0xx` order (the SARIF rule registry iterates this).
    pub const ALL: [Code; 17] = [
        Code::TemplateSyntax,
        Code::IllTypedTemplate,
        Code::BadTemplateConfidence,
        Code::DuplicateTemplate,
        Code::DeadTemplateNoSlots,
        Code::DeadTemplateNoPairs,
        Code::ContradictoryOrdering,
        Code::ConflictingOwners,
        Code::EqualContradictsOrdering,
        Code::SymmetricEqualDuplicate,
        Code::SubstringSubsumedByEqual,
        Code::DuplicateRule,
        Code::OrphanRule,
        Code::InvalidThresholds,
        Code::OrderingCycle,
        Code::UnsupportedSnapshotVersion,
        Code::UnreferencedTypeEntry,
    ];

    /// The stable `EC0xx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::TemplateSyntax => "EC001",
            Code::IllTypedTemplate => "EC002",
            Code::BadTemplateConfidence => "EC003",
            Code::DuplicateTemplate => "EC004",
            Code::DeadTemplateNoSlots => "EC010",
            Code::DeadTemplateNoPairs => "EC011",
            Code::ContradictoryOrdering => "EC020",
            Code::ConflictingOwners => "EC021",
            Code::EqualContradictsOrdering => "EC022",
            Code::SymmetricEqualDuplicate => "EC030",
            Code::SubstringSubsumedByEqual => "EC031",
            Code::DuplicateRule => "EC032",
            Code::OrphanRule => "EC040",
            Code::InvalidThresholds => "EC050",
            Code::OrderingCycle => "EC060",
            Code::UnsupportedSnapshotVersion => "EC070",
            Code::UnreferencedTypeEntry => "EC071",
        }
    }

    /// One-line description of the defect class (SARIF rule metadata).
    pub fn summary(self) -> &'static str {
        match self {
            Code::TemplateSyntax => "template line failed to parse",
            Code::IllTypedTemplate => "template slot types not admitted by its relation",
            Code::BadTemplateConfidence => "template confidence override outside (0, 1]",
            Code::DuplicateTemplate => "the same template appears more than once",
            Code::DeadTemplateNoSlots => "template has no eligible attributes for a slot",
            Code::DeadTemplateNoPairs => "template has eligible slots but zero live pairs",
            Code::ContradictoryOrdering => "contradictory ordering rules (A < B and B < A)",
            Code::ConflictingOwners => "one path claimed by two different owner entries",
            Code::EqualContradictsOrdering => "equality rule contradicts a strict ordering rule",
            Code::SymmetricEqualDuplicate => "symmetric duplicate of an equality rule",
            Code::SubstringSubsumedByEqual => "substring rule subsumed by an equality rule",
            Code::DuplicateRule => "exact duplicate rule",
            Code::OrphanRule => "rule references an attribute absent from the corpus",
            Code::InvalidThresholds => "filter thresholds out of range",
            Code::OrderingCycle => "transitive cycle of strict ordering rules",
            Code::UnsupportedSnapshotVersion => {
                "detector snapshot version newer than this build supports"
            }
            Code::UnreferencedTypeEntry => "snapshot type entry referenced by no rule",
        }
    }

    /// The severity a diagnostic with this code carries unless the analyzer
    /// overrides it (only [`Code::ConflictingOwners`] is context-dependent:
    /// it downgrades to a warning without row evidence of differing owners).
    pub fn default_severity(self) -> Severity {
        match self {
            Code::TemplateSyntax
            | Code::IllTypedTemplate
            | Code::BadTemplateConfidence
            | Code::ContradictoryOrdering
            | Code::ConflictingOwners
            | Code::EqualContradictsOrdering
            | Code::OrphanRule
            | Code::InvalidThresholds
            | Code::OrderingCycle
            | Code::UnsupportedSnapshotVersion => Severity::Error,
            Code::DuplicateTemplate
            | Code::DeadTemplateNoSlots
            | Code::DeadTemplateNoPairs
            | Code::SymmetricEqualDuplicate
            | Code::SubstringSubsumedByEqual
            | Code::DuplicateRule
            | Code::UnreferencedTypeEntry => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a severity, a message, and optional context (the
/// offending template or rule, rendered).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (the code's default unless overridden).
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// The offending artifact, rendered (a template or rule line).
    pub context: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            context: None,
        }
    }

    /// Attach the offending artifact.
    pub fn with_context(mut self, context: impl Into<String>) -> Diagnostic {
        self.context = Some(context.into());
        self
    }

    /// Override the severity (e.g. `EC021` without row evidence).
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Compiler-style one/two-line text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(ctx) = &self.context {
            out.push_str("\n  --> ");
            out.push_str(ctx);
        }
        out
    }

    /// JSON object rendering (hand-rolled; the offline serde shim has no
    /// `serde_json`).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code,
            self.severity,
            escape_json(&self.message)
        );
        match &self.context {
            Some(ctx) => {
                out.push_str(",\"context\":\"");
                out.push_str(&escape_json(ctx));
                out.push_str("\"}");
            }
            None => out.push_str(",\"context\":null}"),
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(c.as_str().starts_with("EC"));
            assert_eq!(c.as_str().len(), 5);
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn severity_names_round_trip() {
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse_name(&s.to_string()), Some(s));
        }
        assert_eq!(Severity::parse_name("fatal"), None);
    }

    #[test]
    fn text_rendering_is_compiler_style() {
        let d = Diagnostic::new(Code::IllTypedTemplate, "bad slots")
            .with_context("[A:Size] => [B:UserName]");
        let text = d.render_text();
        assert!(text.starts_with("error[EC002]: bad slots"));
        assert!(text.contains("--> [A:Size] => [B:UserName]"));
    }

    #[test]
    fn json_rendering_escapes_specials() {
        let d = Diagnostic::new(Code::DuplicateRule, "dup \"x\"\nnext").with_context("a\\b");
        let json = d.render_json();
        assert!(json.contains("\"code\":\"EC032\""));
        assert!(json.contains("\"severity\":\"warning\""));
        assert!(json.contains("dup \\\"x\\\"\\nnext"));
        assert!(json.contains("\"context\":\"a\\\\b\""));
    }

    #[test]
    fn severity_override_sticks() {
        let d = Diagnostic::new(Code::ConflictingOwners, "m").with_severity(Severity::Warning);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(Code::ConflictingOwners.default_severity(), Severity::Error);
    }
}
