//! The unified finding model: one shape for lint diagnostics and detection
//! warnings, with content-derived stable fingerprints.
//!
//! `encore-lint` produces [`Diagnostic`]s (`EC0xx`) and `encore-detect`
//! produces [`encore::Warning`]s (`EW0xx`); CI gates and code-review UIs
//! need *one* shape for both.  A [`Finding`] carries:
//!
//! * a stable **code** (`EC0xx`/`EW0xx`, from the shared [`code_registry`]),
//! * a [`Severity`] and a normalized confidence in `[0, 1]`,
//! * a canonical **location** (the offending template/rule for lint
//!   findings, `system/<id>:<attr>` for detection findings),
//! * the human-readable message,
//! * a **fingerprint**: 64-bit FNV-1a over `code + location + normalized
//!   message`, rendered as 16 lowercase hex digits.
//!
//! The fingerprint is the finding's identity for baselines
//! ([`crate::baseline`]) and SARIF `partialFingerprints`
//! ([`crate::sarif`]).  Its stability contract: the fingerprint depends
//! only on *what* was found (code, canonical location, normalized message)
//! — never on rank, score, worker count, rule order, or the order findings
//! were produced in.  Two runs over the same inputs produce the same
//! fingerprint multiset, so a baseline diff reports exactly the findings
//! that are genuinely new.

use crate::diag::{Code, Diagnostic, Severity};
use encore::{Warning, WarningKind};

/// One unified static-analysis/detection finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    code: String,
    severity: Severity,
    confidence: f64,
    location: String,
    message: String,
    fingerprint: String,
}

impl Finding {
    /// Build a finding; the fingerprint is computed from `code`, `location`,
    /// and the normalized `message`.  Non-finite confidences clamp to `1.0`.
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        confidence: f64,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        let code = code.into();
        let location = location.into();
        let message = message.into();
        let fingerprint = fingerprint(&code, &location, &message);
        let confidence = if confidence.is_finite() {
            confidence.clamp(0.0, 1.0)
        } else {
            1.0
        };
        Finding {
            code,
            severity,
            confidence,
            location,
            message,
            fingerprint,
        }
    }

    /// A lint [`Diagnostic`] as a finding.  The location is the diagnostic's
    /// context (the rendered offending template or rule), and the confidence
    /// is `1.0` — static findings are certain.
    pub fn from_diagnostic(diag: &Diagnostic) -> Finding {
        Finding::new(
            diag.code.as_str(),
            diag.severity,
            1.0,
            diag.context.clone().unwrap_or_default(),
            diag.message.clone(),
        )
    }

    /// A detection [`Warning`] on system `system` as a finding.
    ///
    /// The location is `system/<id>:<attr>` with the attribute in its
    /// unambiguous tagged encoding; the severity is
    /// [`warning_severity`]; the confidence is [`Warning::confidence`].
    pub fn from_warning(system: &str, warning: &Warning) -> Finding {
        Finding::new(
            warning.kind().code(),
            warning_severity(warning.kind()),
            warning.confidence(),
            format!("system/{system}:{}", warning.attr().render_tagged()),
            warning.detail(),
        )
    }

    /// The stable `EC0xx`/`EW0xx` code.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Normalized confidence in `[0, 1]`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The canonical location.
    pub fn location(&self) -> &str {
        &self.location
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 16-hex-digit content fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }
}

/// The severity a detection warning kind maps to: suspicious values are
/// informational (they rank, they don't gate), everything else is a
/// warning — detection evidence is statistical, never an error.
pub fn warning_severity(kind: WarningKind) -> Severity {
    match kind {
        WarningKind::UnknownEntry
        | WarningKind::CorrelationViolation
        | WarningKind::TypeViolation => Severity::Warning,
        WarningKind::SuspiciousValue => Severity::Info,
    }
}

/// Collapse internal whitespace runs to single spaces and trim — the
/// message form the fingerprint hashes, so incidental reformatting does not
/// change a finding's identity.
pub fn normalize_message(message: &str) -> String {
    let mut out = String::with_capacity(message.len());
    let mut in_space = true; // leading whitespace is dropped
    for c in message.chars() {
        if c.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(c);
            in_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The content fingerprint: FNV-1a (64-bit) over `code`, `location`, and
/// the normalized `message`, NUL-separated so field boundaries cannot
/// collide.
pub fn fingerprint(code: &str, location: &str, message: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(code.as_bytes());
    eat(&[0]);
    eat(location.as_bytes());
    eat(&[0]);
    eat(normalize_message(message).as_bytes());
    format!("{hash:016x}")
}

/// Severity and confidence thresholds applied to findings before any
/// output or exit-code computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FindingFilter {
    /// Minimum severity to report (`--severity`).
    pub min_severity: Severity,
    /// Minimum confidence to report (`--min-report-confidence`).
    pub min_confidence: f64,
}

impl Default for FindingFilter {
    /// The pass-everything filter.
    fn default() -> FindingFilter {
        FindingFilter {
            min_severity: Severity::Info,
            min_confidence: 0.0,
        }
    }
}

impl FindingFilter {
    /// Whether the filter admits a finding.
    pub fn admits(&self, finding: &Finding) -> bool {
        finding.severity >= self.min_severity && finding.confidence >= self.min_confidence
    }

    /// Whether the filter admits a raw diagnostic (confidence `1.0`).
    pub fn admits_diagnostic(&self, diag: &Diagnostic) -> bool {
        diag.severity >= self.min_severity && 1.0 >= self.min_confidence
    }

    /// Whether this is the default pass-everything filter.
    pub fn is_pass_all(&self) -> bool {
        *self == FindingFilter::default()
    }
}

/// The process exit code a set of (already filtered, already
/// baseline-suppressed) findings implies: `1` on any error-severity finding
/// (or any warning under `deny_warnings`), `0` otherwise.
pub fn exit_code(findings: &[Finding], deny_warnings: bool) -> i32 {
    let gate = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    if findings.iter().any(|f| f.severity >= gate) {
        1
    } else {
        0
    }
}

/// One entry of the shared code registry: the SARIF `rules[]` metadata for
/// a stable code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeInfo {
    /// The stable `EC0xx`/`EW0xx` id.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The code's default severity.
    pub level: Severity,
}

/// Every stable code both tools can emit — the lint `EC0xx` codes followed
/// by the detection `EW0xx` codes, each in code order.  SARIF renders this
/// as `runs[].tool.driver.rules[]`.
pub fn code_registry() -> Vec<CodeInfo> {
    let mut out: Vec<CodeInfo> = Code::ALL
        .iter()
        .map(|c| CodeInfo {
            id: c.as_str(),
            summary: c.summary(),
            level: c.default_severity(),
        })
        .collect();
    out.extend(WarningKind::ALL.iter().map(|k| CodeInfo {
        id: k.code(),
        summary: k.summary(),
        level: warning_severity(*k),
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_message_whitespace() {
        let a = fingerprint("EC032", "a == b", "dup  rule\n  seen");
        let b = fingerprint("EC032", "a == b", " dup rule seen ");
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_separates_fields() {
        // Field content must not bleed across the separator.
        assert_ne!(
            fingerprint("EC0", "32a", "m"),
            fingerprint("EC032", "a", "m")
        );
        assert_ne!(
            fingerprint("EC032", "ab", "m"),
            fingerprint("EC032", "a", "bm")
        );
    }

    #[test]
    fn fingerprint_is_order_free() {
        // Identity is content, not production order: building the same two
        // findings in either order yields the same fingerprint set.
        let d1 = Diagnostic::new(Code::DuplicateRule, "dup").with_context("a == b");
        let d2 = Diagnostic::new(Code::OrphanRule, "orphan").with_context("x == y");
        let forward: Vec<String> = [&d1, &d2]
            .iter()
            .map(|d| Finding::from_diagnostic(d).fingerprint().to_string())
            .collect();
        let backward: Vec<String> = [&d2, &d1]
            .iter()
            .map(|d| Finding::from_diagnostic(d).fingerprint().to_string())
            .collect();
        let mut f = forward.clone();
        let mut b = backward.clone();
        f.sort();
        b.sort();
        assert_eq!(f, b);
        assert_ne!(forward[0], forward[1]);
    }

    #[test]
    fn filter_thresholds_apply() {
        let info = Finding::new("EW004", Severity::Info, 0.2, "system/a:O:x", "m");
        let warn = Finding::new("EW002", Severity::Warning, 0.95, "system/a:O:y", "m");
        let all = FindingFilter::default();
        assert!(all.admits(&info) && all.admits(&warn));
        assert!(all.is_pass_all());
        let warnings_only = FindingFilter {
            min_severity: Severity::Warning,
            ..FindingFilter::default()
        };
        assert!(!warnings_only.admits(&info));
        assert!(warnings_only.admits(&warn));
        let confident = FindingFilter {
            min_confidence: 0.5,
            ..FindingFilter::default()
        };
        assert!(!confident.admits(&info));
        assert!(confident.admits(&warn));
        assert!(!confident.is_pass_all());
    }

    #[test]
    fn exit_code_respects_severities() {
        let warn = Finding::new("EC032", Severity::Warning, 1.0, "", "dup");
        let err = Finding::new("EC040", Severity::Error, 1.0, "", "orphan");
        assert_eq!(exit_code(&[], false), 0);
        assert_eq!(exit_code(std::slice::from_ref(&warn), false), 0);
        assert_eq!(exit_code(std::slice::from_ref(&warn), true), 1);
        assert_eq!(exit_code(&[warn, err], false), 1);
    }

    #[test]
    fn registry_ids_are_unique_and_cover_both_tools() {
        let registry = code_registry();
        let mut seen = std::collections::BTreeSet::new();
        for info in &registry {
            assert!(seen.insert(info.id), "duplicate {}", info.id);
        }
        assert!(registry.iter().any(|i| i.id == "EC001"));
        assert!(registry.iter().any(|i| i.id == "EC071"));
        assert!(registry.iter().any(|i| i.id == "EW004"));
    }

    #[test]
    fn non_finite_confidence_clamps() {
        let f = Finding::new("EW002", Severity::Warning, f64::NAN, "l", "m");
        assert_eq!(f.confidence(), 1.0);
        let f = Finding::new("EW002", Severity::Warning, 7.0, "l", "m");
        assert_eq!(f.confidence(), 1.0);
    }
}
