//! Finding baselines: accepted-findings snapshots diffed on every run.
//!
//! A fleet detector that re-reports the same 121 known warnings every build
//! is a detector nobody gates on.  A [`FindingBaseline`] is the reviewable
//! text artifact of *accepted* finding fingerprints
//! ([`Finding::fingerprint`]): `--write-baseline` records the current run,
//! `--baseline FILE` diffs each subsequent run against it, and only
//! findings **not** in the baseline affect the exit code — the
//! `ReportDelta` gate philosophy (DESIGN.md §11) generalized from perf
//! metrics to findings.
//!
//! The format is line-oriented and diff-friendly, sorted by fingerprint so
//! a regenerated baseline is byte-stable:
//!
//! ```text
//! # encore findings baseline v1
//! # fingerprint\tcode\tlocation
//! 1f6e35dbde1e8c09\tEC011\t[A:Url] == [B:Url]
//! ```
//!
//! Only the leading fingerprint field is identity; the code and location
//! columns are annotations for the human reviewing the baseline diff in
//! code review.  [`FindingBaseline::diff`] also reports **stale** entries —
//! baselined fingerprints the run no longer produces — so suppressions are
//! cleaned up instead of accreting forever.

use crate::finding::Finding;
use std::collections::BTreeMap;

const HEADER: &str = "# encore findings baseline v1";

/// An accepted-findings snapshot: fingerprint → annotation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FindingBaseline {
    entries: BTreeMap<String, String>,
}

/// The result of diffing a run's findings against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineDiff {
    /// Findings whose fingerprint is not in the baseline — the only ones
    /// that affect the exit code.
    pub fresh: Vec<Finding>,
    /// Number of findings suppressed by the baseline.
    pub suppressed: usize,
    /// Baseline entries (fingerprint, annotation) the run no longer
    /// produces — stale suppressions to prune.
    pub stale: Vec<(String, String)>,
}

impl FindingBaseline {
    /// An empty baseline.
    pub fn new() -> FindingBaseline {
        FindingBaseline::default()
    }

    /// A baseline accepting every given finding.
    pub fn from_findings(findings: &[Finding]) -> FindingBaseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            entries
                .entry(f.fingerprint().to_string())
                .or_insert_with(|| format!("{}\t{}", f.code(), f.location()));
        }
        FindingBaseline { entries }
    }

    /// Number of accepted fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a fingerprint is accepted.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.contains_key(fingerprint)
    }

    /// Render the reviewable text artifact (the inverse of
    /// [`FindingBaseline::parse`]); entries sort by fingerprint, so
    /// regeneration is byte-stable.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        out.push_str(HEADER);
        out.push('\n');
        out.push_str("# fingerprint\tcode\tlocation\n");
        for (fingerprint, annotation) in &self.entries {
            out.push_str(fingerprint);
            if !annotation.is_empty() {
                out.push('\t');
                out.push_str(annotation);
            }
            out.push('\n');
        }
        out
    }

    /// Parse a rendered baseline.  Blank lines and `#` comments are
    /// skipped; each entry line is a 16-hex-digit fingerprint optionally
    /// followed by tab-separated annotation columns.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and a description of the first
    /// malformed line.
    pub fn parse(text: &str) -> Result<FindingBaseline, String> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let (fingerprint, annotation) = match line.split_once('\t') {
                Some((f, rest)) => (f, rest.to_string()),
                None => (line, String::new()),
            };
            let fingerprint = fingerprint.trim();
            if fingerprint.len() != 16 || !fingerprint.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!(
                    "line {}: `{fingerprint}` is not a 16-hex-digit fingerprint",
                    i + 1
                ));
            }
            entries.insert(fingerprint.to_ascii_lowercase(), annotation);
        }
        Ok(FindingBaseline { entries })
    }

    /// Diff a run's findings against the baseline: what is fresh, how much
    /// was suppressed, and which accepted fingerprints are now stale.
    pub fn diff(&self, findings: &[Finding]) -> BaselineDiff {
        let mut diff = BaselineDiff::default();
        let mut produced: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for f in findings {
            produced.insert(f.fingerprint());
            if self.contains(f.fingerprint()) {
                diff.suppressed += 1;
            } else {
                diff.fresh.push(f.clone());
            }
        }
        for (fingerprint, annotation) in &self.entries {
            if !produced.contains(fingerprint.as_str()) {
                diff.stale.push((fingerprint.clone(), annotation.clone()));
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn findings() -> Vec<Finding> {
        vec![
            Finding::new("EC032", Severity::Warning, 1.0, "a == b", "dup"),
            Finding::new(
                "EW002",
                Severity::Warning,
                0.97,
                "system/img-1:O:datadir",
                "violated",
            ),
            Finding::new("EW004", Severity::Info, 0.45, "system/img-2:O:port", "odd"),
        ]
    }

    #[test]
    fn render_parse_round_trips() {
        let baseline = FindingBaseline::from_findings(&findings());
        assert_eq!(baseline.len(), 3);
        let text = baseline.render();
        assert!(text.starts_with(HEADER));
        let back = FindingBaseline::parse(&text).expect("parses");
        assert_eq!(back, baseline);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn bare_fingerprint_lines_parse() {
        let base = FindingBaseline::parse("0123456789abcdef\n").expect("parses");
        assert!(base.contains("0123456789abcdef"));
        assert!(FindingBaseline::parse("not-a-fingerprint\n").is_err());
        assert!(FindingBaseline::parse("0123\n").is_err());
    }

    #[test]
    fn diff_partitions_fresh_suppressed_stale() {
        let all = findings();
        let baseline = FindingBaseline::from_findings(&all[..2]);
        let diff = baseline.diff(&all[1..]);
        assert_eq!(diff.suppressed, 1, "{diff:?}");
        assert_eq!(diff.fresh.len(), 1);
        assert_eq!(diff.fresh[0].code(), "EW004");
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].0, all[0].fingerprint());
        // A self-diff is clean by construction.
        let self_diff = FindingBaseline::from_findings(&all).diff(&all);
        assert!(self_diff.fresh.is_empty() && self_diff.stale.is_empty());
        assert_eq!(self_diff.suppressed, 3);
    }
}
