//! encore-check — static type-checking and linting for EnCore templates,
//! rule sets, and corpora.
//!
//! Rule learning is expensive (a full pass over every eligible attribute
//! pair per template), and its inputs — template files, customization
//! files, learned rule sets — are all text that drifts.  This crate checks
//! those inputs *statically*, before (or without) a learning run:
//!
//! * [`typecheck`] — every template against its relation's type signature,
//! * [`corpus`] — template eligibility against a training corpus (dead
//!   templates that would instantiate nothing),
//! * [`rulelint`] — rule-set consistency: contradictions, redundancy,
//!   orphan attributes,
//! * plus [`FilterThresholds`] range validation.
//!
//! Every finding is a [`Diagnostic`] with a stable `EC0xx` [`Code`], and
//! the `encore-lint` binary drives all of it from the command line, exiting
//! nonzero when any error-severity diagnostic is present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod corpus;
pub mod diag;
pub mod finding;
pub mod rulelint;
pub mod sarif;
pub mod typecheck;

pub use baseline::{BaselineDiff, FindingBaseline};
pub use corpus::analyze_corpus;
pub use diag::{Code, Diagnostic, Severity};
pub use finding::{code_registry, Finding, FindingFilter};
pub use rulelint::{lint_rules, lint_snapshot};
pub use typecheck::check_templates;

use encore::{FilterThresholds, RuleSet, StatsCache, Template};

/// Validate filter thresholds, as `EC050` diagnostics.
pub fn check_thresholds(thresholds: &FilterThresholds) -> Vec<Diagnostic> {
    match thresholds.validate() {
        Ok(()) => Vec::new(),
        Err(problems) => problems
            .into_iter()
            .map(|p| Diagnostic::new(Code::InvalidThresholds, p))
            .collect(),
    }
}

/// The combined result of a lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Append diagnostics from one analyzer.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// All diagnostics, in analyzer order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Diagnostics carrying a specific code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// The process exit code `encore-lint` should return: `1` on errors
    /// (or on warnings when `deny_warnings`), `0` otherwise.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        self.exit_code_with(deny_warnings, &FindingFilter::default())
    }

    /// Filter-aware exit code: only diagnostics the filter admits count
    /// toward the error/warning gate, so `--severity`/`--min-report-confidence`
    /// apply consistently *before* exit-code computation.
    pub fn exit_code_with(&self, deny_warnings: bool, filter: &FindingFilter) -> i32 {
        let admitted = self.filtered(filter);
        if admitted.has_errors() || (deny_warnings && admitted.warnings() > 0) {
            1
        } else {
            0
        }
    }

    /// The report restricted to diagnostics the filter admits (lint
    /// diagnostics carry confidence `1.0`).
    pub fn filtered(&self, filter: &FindingFilter) -> LintReport {
        if filter.is_pass_all() {
            return self.clone();
        }
        LintReport {
            diagnostics: self
                .diagnostics
                .iter()
                .filter(|d| filter.admits_diagnostic(d))
                .cloned()
                .collect(),
        }
    }

    /// Every diagnostic mapped into the unified [`Finding`] model (with its
    /// content fingerprint), in report order.
    pub fn findings(&self) -> Vec<Finding> {
        self.diagnostics
            .iter()
            .map(Finding::from_diagnostic)
            .collect()
    }

    /// Text rendering: one block per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// JSON rendering: an object with a `diagnostics` array and counts.
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self
            .diagnostics
            .iter()
            .map(Diagnostic::render_json)
            .collect();
        format!(
            "{{\"diagnostics\":[{}],\"errors\":{},\"warnings\":{}}}",
            items.join(","),
            self.errors(),
            self.warnings()
        )
    }
}

/// Run every analyzer that applies: template type-checking, threshold
/// validation, corpus eligibility, and (when a rule set is given) rule-set
/// linting against the corpus.
pub fn check_all(
    templates: &[Template],
    thresholds: &FilterThresholds,
    cache: &StatsCache,
    rules: Option<&RuleSet>,
) -> LintReport {
    let mut report = LintReport::new();
    report.extend(check_templates(templates));
    report.extend(check_thresholds(thresholds));
    // Only well-typed templates reach the corpus analyzer — an ill-typed
    // template is already an error, and its eligibility is meaningless.
    let well_typed: Vec<Template> = templates
        .iter()
        .filter(|t| t.validate().is_ok())
        .cloned()
        .collect();
    report.extend(analyze_corpus(&well_typed, cache));
    if let Some(rules) = rules {
        report.extend(lint_rules(rules, Some(cache)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_code_reflects_severities() {
        let mut report = LintReport::new();
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.exit_code(true), 0);
        report.extend(vec![Diagnostic::new(Code::DuplicateRule, "dup")]);
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.exit_code(true), 1);
        report.extend(vec![Diagnostic::new(Code::OrphanRule, "orphan")]);
        assert_eq!(report.exit_code(false), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn renderings_cover_all_diagnostics() {
        let mut report = LintReport::new();
        report.extend(vec![
            Diagnostic::new(Code::DuplicateRule, "dup").with_context("a == b"),
            Diagnostic::new(Code::OrphanRule, "orphan"),
        ]);
        let text = report.render_text();
        assert!(text.contains("warning[EC032]"));
        assert!(text.contains("error[EC040]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        let json = report.render_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\"errors\":1,\"warnings\":1"));
    }

    #[test]
    fn filtered_exit_code_ignores_filtered_out_severities() {
        let mut report = LintReport::new();
        report.extend(vec![
            Diagnostic::new(Code::DuplicateRule, "dup"), // warning
            Diagnostic::new(Code::OrphanRule, "orphan").with_severity(Severity::Info),
        ]);
        // Unfiltered: the warning trips --deny-warnings.
        assert_eq!(report.exit_code(true), 1);
        // Errors-only filter: nothing left to gate on.
        let errors_only = FindingFilter {
            min_severity: Severity::Error,
            ..FindingFilter::default()
        };
        assert_eq!(report.exit_code_with(true, &errors_only), 0);
        assert_eq!(report.filtered(&errors_only).diagnostics().len(), 0);
        let warnings_up = FindingFilter {
            min_severity: Severity::Warning,
            ..FindingFilter::default()
        };
        assert_eq!(report.filtered(&warnings_up).diagnostics().len(), 1);
        assert_eq!(report.exit_code_with(true, &warnings_up), 1);
        // findings() maps one-to-one with stable fingerprints.
        let findings = report.findings();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].code(), "EC032");
        assert_ne!(findings[0].fingerprint(), findings[1].fingerprint());
    }

    #[test]
    fn bad_thresholds_get_ec050() {
        let bad = FilterThresholds {
            min_confidence: 2.0,
            ..FilterThresholds::default()
        };
        let diags = check_thresholds(&bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::InvalidThresholds);
        assert!(check_thresholds(&FilterThresholds::default()).is_empty());
    }
}
