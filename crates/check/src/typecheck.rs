//! Template type-checking: every template is validated against its
//! relation's [`RelationSignature`](encore::RelationSignature) before any
//! corpus work happens.

use crate::diag::{Code, Diagnostic};
use encore::{Template, TemplateTypeError};

/// Type-check a template list.
///
/// Produces `EC002` for signature violations, `EC003` for out-of-range
/// confidence overrides, and `EC004` for templates appearing more than once
/// (the duplicate instantiates the same rules twice, doubling work and
/// double-counting candidates in the inference statistics).
pub fn check_templates(templates: &[Template]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for template in templates {
        match template.validate() {
            Ok(()) => {}
            Err(e @ TemplateTypeError::IllTyped { .. }) => {
                diags.push(
                    Diagnostic::new(Code::IllTypedTemplate, e.to_string())
                        .with_context(template.to_string()),
                );
            }
            Err(e @ TemplateTypeError::BadConfidence { .. }) => {
                diags.push(
                    Diagnostic::new(Code::BadTemplateConfidence, e.to_string())
                        .with_context(template.to_string()),
                );
            }
        }
    }
    for (i, template) in templates.iter().enumerate() {
        if templates[..i].contains(template) {
            diags.push(
                Diagnostic::new(
                    Code::DuplicateTemplate,
                    format!("template `{template}` appears more than once"),
                )
                .with_context(template.to_string()),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::Relation;
    use encore_model::SemType;

    #[test]
    fn predefined_templates_are_clean() {
        assert!(check_templates(&Template::predefined()).is_empty());
    }

    #[test]
    fn ill_typed_template_gets_ec002() {
        let bad = Template::new(SemType::Size, Relation::Owns, SemType::UserName);
        let diags = check_templates(&[bad]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::IllTypedTemplate);
    }

    #[test]
    fn bad_confidence_gets_ec003() {
        let bad = Template::new(SemType::Size, Relation::LessSize, SemType::Size)
            .with_min_confidence(1.5);
        let diags = check_templates(&[bad]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::BadTemplateConfidence);
    }

    #[test]
    fn duplicate_template_gets_ec004() {
        let t = Template::new(SemType::Size, Relation::LessSize, SemType::Size);
        let diags = check_templates(&[t.clone(), t]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DuplicateTemplate);
    }
}
