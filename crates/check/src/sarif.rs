//! SARIF v2.1.0 emission — findings where code-review UIs expect them.
//!
//! Hand-rolled like every other JSON renderer in this workspace (the
//! offline serde shim has no `serde_json`): one [`render`] call produces a
//! complete, parseable SARIF v2.1.0 log with
//!
//! * `runs[].tool.driver.rules[]` — the shared stable-code registry
//!   ([`crate::finding::code_registry`]), each rule carrying its summary
//!   and default level,
//! * `runs[].results[]` — one result per [`Finding`], `level` mapped from
//!   [`Severity`] (`error`/`warning`/`note`), the canonical location as a
//!   logical location, the confidence under `properties`, and the stable
//!   content fingerprint under `partialFingerprints` (key
//!   `encoreFinding/v1`), which is what lets a SARIF consumer track a
//!   finding across runs exactly like the baseline layer does.
//!
//! Output is deterministic: rules in registry order, results in the order
//! given (which both binaries keep deterministic), every number rendered
//! via the lossless `{:?}` form.

use crate::diag::Severity;
use crate::finding::{code_registry, Finding};

/// The emitting tool's identity, recorded under `tool.driver`.
#[derive(Debug, Clone, Copy)]
pub struct SarifTool<'a> {
    /// Tool name (`encore-lint` / `encore-detect`).
    pub name: &'a str,
    /// Tool version (the crate version).
    pub version: &'a str,
}

/// The SARIF `level` for a severity.
pub fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Render a complete SARIF v2.1.0 log for one run of `tool` over
/// `findings`.
pub fn render(tool: &SarifTool<'_>, findings: &[Finding]) -> String {
    let registry = code_registry();
    let rule_index = |id: &str| registry.iter().position(|info| info.id == id);

    let mut out = String::with_capacity(4096 + findings.len() * 256);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str(&format!(
        "\"name\":\"{}\",\"version\":\"{}\",\"informationUri\":\"https://example.invalid/encore\",",
        escape(tool.name),
        escape(tool.version)
    ));
    out.push_str("\"rules\":[");
    for (i, info) in registry.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
            escape(info.id),
            escape(info.summary),
            level(info.level)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"ruleId\":\"{}\"", escape(finding.code())));
        if let Some(index) = rule_index(finding.code()) {
            out.push_str(&format!(",\"ruleIndex\":{index}"));
        }
        out.push_str(&format!(
            ",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}}",
            level(finding.severity()),
            escape(finding.message())
        ));
        if !finding.location().is_empty() {
            out.push_str(&format!(
                ",\"locations\":[{{\"logicalLocations\":[{{\"fullyQualifiedName\":\"{}\"}}]}}]",
                escape(finding.location())
            ));
        }
        out.push_str(&format!(
            ",\"partialFingerprints\":{{\"encoreFinding/v1\":\"{}\"}},\
             \"properties\":{{\"confidence\":{:?}}}}}",
            finding.fingerprint(),
            finding.confidence()
        ));
    }
    out.push_str("]}]}");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tool() -> SarifTool<'static> {
        SarifTool {
            name: "encore-lint",
            version: "0.1.0",
        }
    }

    #[test]
    fn empty_run_is_still_a_complete_log() {
        let log = render(&tool(), &[]);
        assert!(log.contains("\"version\":\"2.1.0\""));
        assert!(log.contains("\"name\":\"encore-lint\""));
        assert!(log.contains("\"rules\":["));
        assert!(log.contains("\"id\":\"EC001\""));
        assert!(log.contains("\"id\":\"EW004\""));
        assert!(log.ends_with("\"results\":[]}]}"));
    }

    #[test]
    fn results_carry_level_location_and_fingerprint() {
        let findings = vec![
            Finding::new("EC040", Severity::Error, 1.0, "a == b", "orphan \"x\""),
            Finding::new("EW004", Severity::Info, 0.45, "system/img-1:O:port", "odd"),
        ];
        let log = render(&tool(), &findings);
        assert!(log.contains("\"ruleId\":\"EC040\""));
        assert!(log.contains("\"level\":\"error\""));
        assert!(log.contains("\"level\":\"note\""));
        assert!(log.contains("orphan \\\"x\\\""));
        assert!(log.contains("\"fullyQualifiedName\":\"system/img-1:O:port\""));
        assert!(log.contains(&format!(
            "\"encoreFinding/v1\":\"{}\"",
            findings[0].fingerprint()
        )));
        assert!(log.contains("\"confidence\":0.45"));
        // ruleIndex points into the registry.
        assert!(log.contains("\"ruleIndex\":"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let findings = vec![Finding::new(
            "EC032",
            Severity::Warning,
            1.0,
            "a == b",
            "dup",
        )];
        assert_eq!(render(&tool(), &findings), render(&tool(), &findings));
    }
}
