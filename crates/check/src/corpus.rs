//! Corpus eligibility analysis: which templates can actually instantiate
//! anything under a given training corpus.
//!
//! Delegates to [`encore::analyze_templates`], the same eligibility
//! predicates the inference engine uses to prune dead work units — the
//! diagnostics here and the pruning there can never disagree.

use crate::diag::{Code, Diagnostic};
use encore::{analyze_templates, StatsCache, Template};

/// Report templates that are dead under this corpus.
///
/// `EC010`: a slot has *no* eligible attributes at all (the corpus simply
/// has no values of that type).  `EC011`: both slots have candidates but no
/// surviving pair ever co-occurs in a training row, so the full
/// O(pairs × rows) instantiation pass is guaranteed to produce nothing.
pub fn analyze_corpus(templates: &[Template], cache: &StatsCache) -> Vec<Diagnostic> {
    analyze_templates(templates, cache)
        .into_iter()
        .filter_map(|report| {
            if report.eligible_a == 0 || report.eligible_b == 0 {
                let starved = if report.eligible_a == 0 { "A" } else { "B" };
                Some(
                    Diagnostic::new(
                        Code::DeadTemplateNoSlots,
                        format!(
                            "template `{}` is dead: no corpus attribute is eligible \
                             for slot {starved}",
                            report.template
                        ),
                    )
                    .with_context(report.template.to_string()),
                )
            } else if report.is_dead() {
                Some(
                    Diagnostic::new(
                        Code::DeadTemplateNoPairs,
                        format!(
                            "template `{}` is dead: {} eligible pair(s) but none \
                             co-occur in any training row",
                            report.template, report.considered_pairs
                        ),
                    )
                    .with_context(report.template.to_string()),
                )
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::{Relation, TrainingSet};
    use encore_model::{AppKind, SemType};
    use encore_sysimage::SystemImage;

    fn cache() -> StatsCache {
        let fleet: Vec<SystemImage> = (0..6)
            .map(|i| {
                SystemImage::builder(format!("img-{i}"))
                    .user("mysql", 27, &["mysql"])
                    .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
                    .file(
                        "/etc/mysql/my.cnf",
                        "root",
                        "root",
                        0o644,
                        "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\n",
                    )
                    .build()
            })
            .collect();
        TrainingSet::assemble(AppKind::Mysql, &fleet)
            .unwrap()
            .stats_cache()
    }

    #[test]
    fn live_template_produces_no_diagnostics() {
        let live = Template::new(SemType::FilePath, Relation::Owns, SemType::UserName);
        assert!(analyze_corpus(&[live], &cache()).is_empty());
    }

    #[test]
    fn type_starved_template_gets_ec010() {
        let dead = Template::new(SemType::Url, Relation::Equal, SemType::Url);
        let diags = analyze_corpus(&[dead], &cache());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DeadTemplateNoSlots);
    }

    #[test]
    fn no_live_pair_template_gets_ec011() {
        // The tiny fleet has IP-typed attributes only via bind_address-like
        // entries; none here, so fall back to a constructed case: subnet
        // template over a corpus with no IP pairs that co-occur is covered
        // by the Url case above when slots are empty. Exercise EC011 with a
        // LessSize template when only one Size attribute exists (pairs
        // require two distinct attrs).
        let sizes = Template::new(SemType::Size, Relation::LessSize, SemType::Size);
        let diags = analyze_corpus(&[sizes], &cache());
        // Either no Size attrs at all (EC010) or no pair (EC011) — both mark
        // the template dead; assert it is flagged.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(matches!(
            diags[0].code,
            Code::DeadTemplateNoSlots | Code::DeadTemplateNoPairs
        ));
    }
}
