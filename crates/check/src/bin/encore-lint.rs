//! encore-lint — static checks for EnCore templates, rule sets, and corpora.
//!
//! ```text
//! encore-lint [--app mysql|apache|php|sshd] [--images N] [--seed N]
//!             [--templates FILE] [--rules FILE] [--detector FILE]
//!             [--min-confidence X] [--min-support-fraction X]
//!             [--entropy-threshold X]
//!             [--json] [--deny-warnings]
//! ```
//!
//! Builds (or loads) a template list, generates a training corpus for the
//! chosen application, runs the template type-checker, the corpus
//! eligibility analyzer, and the rule-set linter (over `--rules FILE`, or
//! over rules learned from the corpus when no file is given), then prints
//! the diagnostics and exits `1` if any error-severity diagnostic is
//! present (`--deny-warnings` promotes warnings).
//!
//! # CI/CD surface
//!
//! Diagnostics also flow through the unified [`Finding`] model:
//! `--severity`/`--min-report-confidence` filter findings before any
//! output or exit-code computation, `--sarif FILE` writes a SARIF v2.1.0
//! log for code-scanning upload, and `--write-baseline`/`--baseline FILE`
//! record/diff accepted-finding fingerprints so only *new* findings fail
//! the build (stale suppressions are reported on stderr).  `--quiet`
//! suppresses stdout entirely — the exit code is the only signal.

use encore::{EnCore, FilterThresholds, LearnOptions, RuleSet, Template, TrainingSet};
use encore_check::{
    baseline::FindingBaseline,
    check_all,
    finding::{self, FindingFilter},
    lint_snapshot, sarif, Code, Diagnostic, Finding, LintReport, Severity,
};
use encore_corpus::{Population, PopulationOptions};
use encore_model::AppKind;
use std::process::ExitCode;

const USAGE: &str = "\
usage: encore-lint [options]
  --app NAME                application corpus: mysql|apache|php|sshd (default mysql)
  --images N                training corpus size (default 20)
  --seed N                  corpus generation seed (default 7)
  --templates FILE          template file, one template per line (default: the
                            11 predefined templates)
  --rules FILE              rule file to lint (default: lint rules learned
                            from the corpus)
  --detector FILE           detector snapshot whose rule set to lint
                            (mutually exclusive with --rules)
  --min-confidence X        confidence threshold (default 0.90)
  --min-support-fraction X  support threshold as a fraction (default 0.10)
  --entropy-threshold X     entropy threshold (default 0.325)
  --no-entropy              disable the entropy filter when learning
  --json                    emit JSON instead of text
  --deny-warnings           exit nonzero on warnings too
  --severity LEVEL          report only findings at or above error|warning|info
  --min-report-confidence X report only findings with confidence >= X
  --quiet                   exit-code-only: suppress stdout findings
  --sarif FILE              write the findings as a SARIF v2.1.0 log
  --baseline FILE           suppress baselined fingerprints; only new
                            findings affect the exit code
  --write-baseline FILE     accept the current findings as the baseline
                            (mutually exclusive with --baseline) and exit 0
  --report FILE             write a pipeline observability report (JSON)
  --trace-out FILE          write recorded timer spans as a Chrome
                            trace-viewer / Perfetto JSON trace
  --help                    show this help

environment:
  ENCORE_TRACE=1            print the pipeline report to stderr";

struct Options {
    app: AppKind,
    images: usize,
    seed: u64,
    templates_file: Option<String>,
    rules_file: Option<String>,
    detector_file: Option<String>,
    thresholds: FilterThresholds,
    json: bool,
    deny_warnings: bool,
    filter: FindingFilter,
    quiet: bool,
    sarif_file: Option<String>,
    baseline_file: Option<String>,
    write_baseline_file: Option<String>,
    report_file: Option<String>,
    trace_out_file: Option<String>,
}

fn parse_app(name: &str) -> Result<AppKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "mysql" => Ok(AppKind::Mysql),
        "apache" => Ok(AppKind::Apache),
        "php" => Ok(AppKind::Php),
        "sshd" => Ok(AppKind::Sshd),
        other => Err(format!("unknown app `{other}` (mysql|apache|php|sshd)")),
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        app: AppKind::Mysql,
        images: 20,
        seed: 7,
        templates_file: None,
        rules_file: None,
        detector_file: None,
        thresholds: FilterThresholds::default(),
        json: false,
        deny_warnings: false,
        filter: FindingFilter::default(),
        quiet: false,
        sarif_file: None,
        baseline_file: None,
        write_baseline_file: None,
        report_file: None,
        trace_out_file: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--app" => options.app = parse_app(value("--app")?)?,
            "--images" => {
                options.images = value("--images")?
                    .parse()
                    .map_err(|e| format!("bad --images: {e}"))?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--templates" => options.templates_file = Some(value("--templates")?.clone()),
            "--rules" => options.rules_file = Some(value("--rules")?.clone()),
            "--detector" => options.detector_file = Some(value("--detector")?.clone()),
            "--min-confidence" => {
                options.thresholds.min_confidence = value("--min-confidence")?
                    .parse()
                    .map_err(|e| format!("bad --min-confidence: {e}"))?;
            }
            "--min-support-fraction" => {
                options.thresholds.min_support_fraction = value("--min-support-fraction")?
                    .parse()
                    .map_err(|e| format!("bad --min-support-fraction: {e}"))?;
            }
            "--entropy-threshold" => {
                options.thresholds.entropy_threshold = value("--entropy-threshold")?
                    .parse()
                    .map_err(|e| format!("bad --entropy-threshold: {e}"))?;
            }
            "--no-entropy" => options.thresholds.use_entropy = false,
            "--json" => options.json = true,
            "--deny-warnings" => options.deny_warnings = true,
            "--severity" => {
                let name = value("--severity")?;
                options.filter.min_severity = Severity::parse_name(name)
                    .ok_or_else(|| format!("bad --severity `{name}` (error|warning|info)"))?;
            }
            "--min-report-confidence" => {
                options.filter.min_confidence = value("--min-report-confidence")?
                    .parse()
                    .map_err(|e| format!("bad --min-report-confidence: {e}"))?;
            }
            "--quiet" | "-q" => options.quiet = true,
            "--sarif" => options.sarif_file = Some(value("--sarif")?.clone()),
            "--baseline" => options.baseline_file = Some(value("--baseline")?.clone()),
            "--write-baseline" => {
                options.write_baseline_file = Some(value("--write-baseline")?.clone());
            }
            "--report" => options.report_file = Some(value("--report")?.clone()),
            "--trace-out" => options.trace_out_file = Some(value("--trace-out")?.clone()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if options.rules_file.is_some() && options.detector_file.is_some() {
        return Err("--rules and --detector are mutually exclusive".to_string());
    }
    if options.baseline_file.is_some() && options.write_baseline_file.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    if !(0.0..=1.0).contains(&options.filter.min_confidence) {
        return Err("--min-report-confidence must be in [0, 1]".to_string());
    }
    Ok(Some(options))
}

/// Parse a template file: one template per line, `#` comments and blanks
/// skipped.  Syntax failures become `EC001` diagnostics rather than hard
/// errors, so one bad line does not hide findings about the others.
fn load_templates(text: &str) -> (Vec<Template>, Vec<Diagnostic>) {
    let mut templates = Vec::new();
    let mut diags = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match Template::parse_syntax(line) {
            Ok(t) => templates.push(t),
            Err(e) => diags.push(
                Diagnostic::new(Code::TemplateSyntax, format!("line {}: {e}", i + 1))
                    .with_context(line.to_string()),
            ),
        }
    }
    (templates, diags)
}

fn run(options: &Options) -> Result<(LintReport, bool), String> {
    let mut report = LintReport::new();

    let templates = match &options.templates_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read templates file `{path}`: {e}"))?;
            let (templates, diags) = load_templates(&text);
            report.extend(diags);
            templates
        }
        None => Template::predefined(),
    };

    let population = Population::training(
        options.app,
        &PopulationOptions::new(options.images, options.seed),
    );
    let training = TrainingSet::assemble(options.app, population.images())
        .map_err(|e| format!("corpus assembly failed: {e}"))?;
    let cache = training.stats_cache();

    let rules: Option<RuleSet> = match (&options.rules_file, &options.detector_file) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read rules file `{path}`: {e}"))?;
            Some(RuleSet::parse(&text).map_err(|e| format!("rules file `{path}`: {e}"))?)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read detector file `{path}`: {e}"))?;
            // Peek the version first: a snapshot from a *newer* encore is a
            // diagnosable finding (EC070), not an opaque parse error.
            let version = encore::DetectorSnapshot::peek_version(&text)
                .map_err(|e| format!("detector file `{path}`: {e}"))?;
            if version > encore::snapshot::FORMAT_VERSION {
                report.extend(vec![Diagnostic::new(
                    Code::UnsupportedSnapshotVersion,
                    format!(
                        "detector snapshot `{path}` has format version v{version}, but this \
                         build supports up to v{} — retrain, or lint with a newer encore-lint",
                        encore::snapshot::FORMAT_VERSION
                    ),
                )
                .with_context(path.clone())]);
                None
            } else {
                let snapshot = encore::DetectorSnapshot::parse(&text)
                    .map_err(|e| format!("detector file `{path}`: {e}"))?;
                report.extend(lint_snapshot(&snapshot));
                Some(snapshot.rules().clone())
            }
        }
        (None, None) if options.thresholds.validate().is_ok() => {
            // Lint the rules this corpus actually teaches.  Learning only
            // accepts well-typed templates; the type errors are reported by
            // check_all below either way.
            let well_typed: Vec<Template> = templates
                .iter()
                .filter(|t| t.validate().is_ok())
                .cloned()
                .collect();
            let engine = EnCore::learn(
                &training,
                &LearnOptions {
                    templates: well_typed,
                    thresholds: options.thresholds,
                    workers: None,
                },
            );
            Some(engine.rules().clone())
        }
        // Thresholds are invalid: check_all reports EC050; don't learn
        // with them.
        (None, None) => None,
    };

    let all = check_all(&templates, &options.thresholds, &cache, rules.as_ref());
    report.extend(all.diagnostics().to_vec());
    Ok((report, options.deny_warnings))
}

/// Everything after the analyzers: filter, render, SARIF, baseline, exit
/// code.  Split from `main` so the policy is readable top to bottom.
fn finish(options: &Options, report: &LintReport) -> Result<i32, String> {
    let filtered = report.filtered(&options.filter);
    let findings: Vec<Finding> = filtered.findings();

    if !options.quiet {
        if options.json {
            println!("{}", filtered.render_json());
        } else {
            print!("{}", filtered.render_text());
        }
    }

    // SARIF sees the full filtered findings: the baseline only decides the
    // exit code, while code-scanning consumers do their own tracking via
    // partialFingerprints.
    if let Some(path) = &options.sarif_file {
        let tool = sarif::SarifTool {
            name: "encore-lint",
            version: env!("CARGO_PKG_VERSION"),
        };
        std::fs::write(path, sarif::render(&tool, &findings))
            .map_err(|e| format!("cannot write SARIF to `{path}`: {e}"))?;
    }

    if let Some(path) = &options.write_baseline_file {
        let baseline = FindingBaseline::from_findings(&findings);
        std::fs::write(path, baseline.render())
            .map_err(|e| format!("cannot write baseline to `{path}`: {e}"))?;
        eprintln!(
            "encore-lint: wrote baseline `{path}` accepting {} finding(s)",
            baseline.len()
        );
        return Ok(0);
    }

    if let Some(path) = &options.baseline_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline `{path}`: {e}"))?;
        let baseline =
            FindingBaseline::parse(&text).map_err(|e| format!("baseline `{path}`: {e}"))?;
        let diff = baseline.diff(&findings);
        eprintln!(
            "encore-lint: baseline `{path}`: {} fresh, {} suppressed, {} stale",
            diff.fresh.len(),
            diff.suppressed,
            diff.stale.len()
        );
        for (fingerprint, annotation) in &diff.stale {
            eprintln!("encore-lint: stale baseline entry {fingerprint}\t{annotation}");
        }
        return Ok(finding::exit_code(&diff.fresh, options.deny_warnings));
    }

    Ok(filtered.exit_code(options.deny_warnings))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("encore-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = encore::obs::enable_from_env();
    if options.report_file.is_some() || options.trace_out_file.is_some() {
        encore::obs::enable();
    }
    if options.trace_out_file.is_some() {
        encore::obs::trace::start_recording(0);
    }
    let outcome = run(&options);
    let pipeline = encore::obs::pipeline_report();
    if trace {
        eprint!("{}", pipeline.render_text());
    }
    if let Some(path) = &options.report_file {
        if let Err(e) = std::fs::write(path, pipeline.render_json()) {
            eprintln!("encore-lint: cannot write report to `{path}`: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &options.trace_out_file {
        let json = encore::obs::trace::render_chrome_json(Some(&pipeline));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("encore-lint: cannot write trace to `{path}`: {e}");
            return ExitCode::from(2);
        }
    }
    match outcome.and_then(|(report, _)| finish(&options, &report)) {
        Ok(code) => ExitCode::from(code as u8),
        Err(e) => {
            eprintln!("encore-lint: {e}");
            ExitCode::from(2)
        }
    }
}
