//! End-to-end tests for the `encore-lint` binary: exit statuses, stable
//! diagnostic codes, and both output formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn encore_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-lint"))
        .args(args)
        .output()
        .expect("failed to spawn encore-lint")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Write a fixture file under the target temp dir, named per test.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("encore-lint-test-{name}"));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn clean_defaults_exit_zero() {
    // Predefined templates + rules learned from the generated corpus must
    // produce zero error-severity diagnostics (dead templates on a small
    // corpus are warnings, which do not fail the run).
    let out = encore_lint(&["--app", "mysql", "--images", "12", "--seed", "7"]);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.contains("0 error(s)"), "stdout:\n{text}");
}

#[test]
fn template_defects_fail_with_stable_codes() {
    // `=>` resolves to Owns regardless of slot types, so the first line is
    // syntactically fine but ill-typed; the second is unparseable.
    let templates = fixture(
        "bad-templates",
        "[A:Size] => [B:GroupName]\nnot a template\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--templates",
        templates.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC002]"), "stdout:\n{text}");
    assert!(text.contains("error[EC001]"), "stdout:\n{text}");
}

#[test]
fn dead_template_is_a_warning_denied_by_flag() {
    // Url-typed entries don't exist in the MySQL corpus, so the (well-typed)
    // template is dead: warning by default, error under --deny-warnings.
    let templates = fixture("dead-template", "[A:Url] == [B:Url]\n");
    let base = [
        "--app",
        "mysql",
        "--images",
        "8",
        "--templates",
        templates.to_str().unwrap(),
    ];
    let out = encore_lint(&base);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.contains("warning[EC010]"), "stdout:\n{text}");

    let mut denied = base.to_vec();
    denied.push("--deny-warnings");
    let out = encore_lint(&denied);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
}

#[test]
fn rule_file_defects_fail_with_stable_codes() {
    let rules = fixture(
        "bad-rules",
        "# contradictory ordering, then an orphan\n\
         max_connections < table_open_cache [LessNum] sup=10 conf=1.000\n\
         table_open_cache < max_connections [LessNum] sup=10 conf=1.000\n\
         no_such_attr == also_missing [Equal] sup=10 conf=1.000\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--rules",
        rules.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC020]"), "stdout:\n{text}");
    assert!(text.contains("error[EC040]"), "stdout:\n{text}");
}

#[test]
fn detector_snapshot_rules_are_linted() {
    // A detector snapshot carrying a contradictory ordering pair: the lint
    // must surface EC020 from the snapshot's embedded rule set.
    let detector = fixture(
        "bad-detector",
        "encore-detector-snapshot v1\n\
         [meta]\n\
         systems=8\n\
         [rules]\n\
         O:max_connections\tLessNum\tO:table_open_cache\t10\t1.0\n\
         O:table_open_cache\tLessNum\tO:max_connections\t10\t1.0\n\
         [types]\n\
         [entries]\n\
         max_connections\n\
         table_open_cache\n\
         [values]\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC020]"), "stdout:\n{text}");
}

#[test]
fn rules_and_detector_are_mutually_exclusive() {
    let rules = fixture("excl-rules", "");
    let detector = fixture("excl-detector", "");
    let out = encore_lint(&[
        "--rules",
        rules.to_str().unwrap(),
        "--detector",
        detector.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_output_is_machine_readable() {
    let out = encore_lint(&["--app", "mysql", "--images", "8", "--json"]);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.starts_with("{\"diagnostics\":["), "stdout:\n{text}");
    assert!(text.contains("\"errors\":0"), "stdout:\n{text}");
}

#[test]
fn invalid_thresholds_get_ec050() {
    let out = encore_lint(&["--app", "mysql", "--images", "8", "--min-confidence", "1.5"]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC050]"), "stdout:\n{text}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = encore_lint(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
