//! End-to-end tests for the `encore-lint` binary: exit statuses, stable
//! diagnostic codes, and both output formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn encore_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-lint"))
        .args(args)
        .output()
        .expect("failed to spawn encore-lint")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Write a fixture file under the target temp dir, named per test.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("encore-lint-test-{name}"));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn clean_defaults_exit_zero() {
    // Predefined templates + rules learned from the generated corpus must
    // produce zero error-severity diagnostics (dead templates on a small
    // corpus are warnings, which do not fail the run).
    let out = encore_lint(&["--app", "mysql", "--images", "12", "--seed", "7"]);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.contains("0 error(s)"), "stdout:\n{text}");
}

#[test]
fn template_defects_fail_with_stable_codes() {
    // `=>` resolves to Owns regardless of slot types, so the first line is
    // syntactically fine but ill-typed; the second is unparseable.
    let templates = fixture(
        "bad-templates",
        "[A:Size] => [B:GroupName]\nnot a template\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--templates",
        templates.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC002]"), "stdout:\n{text}");
    assert!(text.contains("error[EC001]"), "stdout:\n{text}");
}

#[test]
fn dead_template_is_a_warning_denied_by_flag() {
    // Url-typed entries don't exist in the MySQL corpus, so the (well-typed)
    // template is dead: warning by default, error under --deny-warnings.
    let templates = fixture("dead-template", "[A:Url] == [B:Url]\n");
    let base = [
        "--app",
        "mysql",
        "--images",
        "8",
        "--templates",
        templates.to_str().unwrap(),
    ];
    let out = encore_lint(&base);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.contains("warning[EC010]"), "stdout:\n{text}");

    let mut denied = base.to_vec();
    denied.push("--deny-warnings");
    let out = encore_lint(&denied);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
}

#[test]
fn rule_file_defects_fail_with_stable_codes() {
    let rules = fixture(
        "bad-rules",
        "# contradictory ordering, then an orphan\n\
         max_connections < table_open_cache [LessNum] sup=10 conf=1.000\n\
         table_open_cache < max_connections [LessNum] sup=10 conf=1.000\n\
         no_such_attr == also_missing [Equal] sup=10 conf=1.000\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--rules",
        rules.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC020]"), "stdout:\n{text}");
    assert!(text.contains("error[EC040]"), "stdout:\n{text}");
}

#[test]
fn detector_snapshot_rules_are_linted() {
    // A detector snapshot carrying a contradictory ordering pair: the lint
    // must surface EC020 from the snapshot's embedded rule set.
    let detector = fixture(
        "bad-detector",
        "encore-detector-snapshot v1\n\
         [meta]\n\
         systems=8\n\
         [rules]\n\
         O:max_connections\tLessNum\tO:table_open_cache\t10\t1.0\n\
         O:table_open_cache\tLessNum\tO:max_connections\t10\t1.0\n\
         [types]\n\
         [entries]\n\
         max_connections\n\
         table_open_cache\n\
         [values]\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC020]"), "stdout:\n{text}");
}

#[test]
fn rules_and_detector_are_mutually_exclusive() {
    let rules = fixture("excl-rules", "");
    let detector = fixture("excl-detector", "");
    let out = encore_lint(&[
        "--rules",
        rules.to_str().unwrap(),
        "--detector",
        detector.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_output_is_machine_readable() {
    let out = encore_lint(&["--app", "mysql", "--images", "8", "--json"]);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.starts_with("{\"diagnostics\":["), "stdout:\n{text}");
    assert!(text.contains("\"errors\":0"), "stdout:\n{text}");
}

#[test]
fn invalid_thresholds_get_ec050() {
    let out = encore_lint(&["--app", "mysql", "--images", "8", "--min-confidence", "1.5"]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC050]"), "stdout:\n{text}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = encore_lint(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn newer_snapshot_version_is_ec070_not_a_usage_error() {
    let detector = fixture(
        "future-detector",
        "# produced by a future encore\nencore-detector-snapshot v999\n[meta]\nsystems=4\n",
    );
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{text}");
    assert!(text.contains("error[EC070]"), "stdout:\n{text}");
    assert!(text.contains("v999"), "stdout:\n{text}");
    // A truly malformed snapshot (no header at all) stays a usage error.
    let garbage = fixture("garbage-detector", "not a snapshot\n");
    let out = encore_lint(&["--detector", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

/// A snapshot whose type map carries an attribute that no rule references
/// and that the training statistics never observed — EC071 cross-retrain
/// drift, a warning.
const DRIFTED_SNAPSHOT: &str = "encore-detector-snapshot v1\n\
     [meta]\n\
     systems=8\n\
     [rules]\n\
     O:max_connections\tLessNum\tO:table_open_cache\t10\t1.0\n\
     [types]\n\
     O:max_connections\tNumber\n\
     O:table_open_cache\tNumber\n\
     O:ghost_entry\tNumber\n\
     [entries]\n\
     max_connections\n\
     table_open_cache\n\
     [values]\n";

#[test]
fn drifted_snapshot_types_get_ec071() {
    let detector = fixture("drifted-detector", DRIFTED_SNAPSHOT);
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    // EC071 is warning severity: reported, but exit 0 without --deny-warnings.
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(text.contains("warning[EC071]"), "stdout:\n{text}");
    assert!(text.contains("ghost_entry"), "stdout:\n{text}");
}

#[test]
fn severity_filter_applies_before_output_and_exit_code() {
    let detector = fixture("filter-detector", DRIFTED_SNAPSHOT);
    let base = [
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
    ];
    // Unfiltered, --deny-warnings trips on EC071 (and small-corpus EC01x).
    let mut denied = base.to_vec();
    denied.push("--deny-warnings");
    let out = encore_lint(&denied);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
    // --severity error drops every warning: nothing to deny, nothing printed.
    let mut errors_only = denied.clone();
    errors_only.extend(["--severity", "error"]);
    let out = encore_lint(&errors_only);
    let text = stdout(&out);
    assert!(out.status.success(), "stdout:\n{text}");
    assert!(!text.contains("warning["), "stdout:\n{text}");
    // --quiet suppresses stdout entirely but keeps the exit code.
    let mut quiet = denied.clone();
    quiet.push("--quiet");
    let out = encore_lint(&quiet);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).is_empty(), "stdout:\n{}", stdout(&out));
}

#[test]
fn sarif_log_carries_rules_results_and_fingerprints() {
    let detector = fixture("sarif-detector", DRIFTED_SNAPSHOT);
    let sarif = std::env::temp_dir().join("encore-lint-test-out.sarif");
    let out = encore_lint(&[
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
        "--sarif",
        sarif.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stdout:\n{}", stdout(&out));
    let log = std::fs::read_to_string(&sarif).expect("SARIF written");
    assert!(log.contains("\"version\":\"2.1.0\""), "log:\n{log}");
    assert!(log.contains("\"name\":\"encore-lint\""), "log:\n{log}");
    assert!(log.contains("\"id\":\"EC071\""), "log:\n{log}");
    assert!(log.contains("\"ruleId\":\"EC071\""), "log:\n{log}");
    assert!(log.contains("\"encoreFinding/v1\":\""), "log:\n{log}");
}

#[test]
fn baseline_round_trip_gates_only_fresh_findings() {
    let detector = fixture("baseline-detector", DRIFTED_SNAPSHOT);
    let baseline = std::env::temp_dir().join("encore-lint-test-baseline.txt");
    let base = [
        "--app",
        "mysql",
        "--images",
        "8",
        "--detector",
        detector.to_str().unwrap(),
        "--deny-warnings",
    ];
    // Record the current findings (EC071 + small-corpus dead templates).
    let mut write = base.to_vec();
    write.extend(["--write-baseline", baseline.to_str().unwrap()]);
    let out = encore_lint(&write);
    assert!(out.status.success(), "stdout:\n{}", stdout(&out));
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.starts_with("# encore findings baseline v1"), "{text}");
    assert!(text.contains("EC071"), "{text}");
    // Immediate re-run against the baseline: everything suppressed, exit 0
    // even under --deny-warnings.
    let mut gated = base.to_vec();
    gated.extend(["--baseline", baseline.to_str().unwrap()]);
    let out = encore_lint(&gated);
    assert!(out.status.success(), "stdout:\n{}", stdout(&out));
    // A baseline missing the EC071 fingerprint leaves it fresh: exit 1, and
    // the now-unmatched entries would be reported as stale.
    let pruned: String = text
        .lines()
        .filter(|l| !l.contains("EC071"))
        .map(|l| format!("{l}\n"))
        .collect();
    let partial = fixture("partial-baseline.txt", &pruned);
    let mut gated = base.to_vec();
    gated.extend(["--baseline", partial.to_str().unwrap()]);
    let out = encore_lint(&gated);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
    // --baseline and --write-baseline together is a usage error.
    let out = encore_lint(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--write-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
