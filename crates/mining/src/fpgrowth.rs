//! FP-Growth frequent-item-set mining (FP-tree + conditional pattern bases).
//!
//! This is the algorithm the paper's scalability study centres on (§2.2,
//! Table 3): it avoids Apriori's candidate generation but still materializes
//! every frequent item set, so the *output* — and with it memory — grows
//! exponentially with correlated attributes.  Our resource guard reproduces
//! the paper's OOM terminations.

use crate::{ItemId, ItemSet, MiningLimits, MiningResult, OutOfMemory, Transactions};
use std::collections::HashMap;

/// FP-Growth miner with an absolute minimum-support count.
#[derive(Debug, Clone, Copy)]
pub struct FpGrowth {
    min_support: usize,
}

/// One FP-tree node.
#[derive(Debug)]
struct Node {
    item: ItemId,
    count: usize,
    parent: usize,
    children: HashMap<ItemId, usize>,
}

/// FP-tree over an arena of nodes.
#[derive(Debug)]
struct FpTree {
    arena: Vec<Node>,
    /// Header table: item → node indices.
    header: HashMap<ItemId, Vec<usize>>,
}

impl FpTree {
    fn new() -> FpTree {
        FpTree {
            arena: vec![Node {
                item: ItemId::MAX,
                count: 0,
                parent: usize::MAX,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
        }
    }

    fn insert(&mut self, items: &[ItemId], count: usize) {
        let mut cur = 0usize;
        for &item in items {
            let next = match self.arena[cur].children.get(&item) {
                Some(&idx) => {
                    self.arena[idx].count += count;
                    idx
                }
                None => {
                    let idx = self.arena.len();
                    self.arena.push(Node {
                        item,
                        count,
                        parent: cur,
                        children: HashMap::new(),
                    });
                    self.arena[cur].children.insert(item, idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            cur = next;
        }
    }

    /// Path from a node's parent up to the root (excluding the root),
    /// bottom-up order.
    fn prefix_path(&self, mut idx: usize) -> Vec<ItemId> {
        let mut path = Vec::new();
        idx = self.arena[idx].parent;
        while idx != 0 && idx != usize::MAX {
            path.push(self.arena[idx].item);
            idx = self.arena[idx].parent;
        }
        path
    }
}

impl FpGrowth {
    /// Create a miner; `min_support` is an absolute count, clamped to ≥ 1.
    pub fn new(min_support: usize) -> FpGrowth {
        FpGrowth {
            min_support: min_support.max(1),
        }
    }

    /// The configured minimum support count.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Mine all frequent item sets.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when more than `limits.max_itemsets` frequent
    /// item sets are produced.
    pub fn mine(
        &self,
        tx: &Transactions,
        limits: &MiningLimits,
    ) -> Result<MiningResult, OutOfMemory> {
        // Global item counts.
        let mut counts: HashMap<ItemId, usize> = HashMap::new();
        for row in tx.rows() {
            for &i in row {
                *counts.entry(i).or_insert(0) += 1;
            }
        }
        // Weighted "transactions" for the recursive step.
        let weighted: Vec<(ItemSet, usize)> = tx.rows().iter().map(|r| (r.clone(), 1)).collect();
        let mut out = Vec::new();
        self.mine_rec(&weighted, &counts, &[], limits, &mut out)?;
        Ok(MiningResult { itemsets: out })
    }

    fn mine_rec(
        &self,
        transactions: &[(ItemSet, usize)],
        counts: &HashMap<ItemId, usize>,
        suffix: &[ItemId],
        limits: &MiningLimits,
        out: &mut Vec<(ItemSet, usize)>,
    ) -> Result<(), OutOfMemory> {
        // Frequent items at this level, ordered by descending count (the
        // canonical FP-tree insertion order), ties by id.
        let mut frequent: Vec<(ItemId, usize)> = counts
            .iter()
            .filter(|&(_, &c)| c >= self.min_support)
            .map(|(&i, &c)| (i, c))
            .collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if frequent.is_empty() {
            return Ok(());
        }
        let order: HashMap<ItemId, usize> = frequent
            .iter()
            .enumerate()
            .map(|(pos, &(i, _))| (i, pos))
            .collect();

        // Build the FP-tree.
        let mut tree = FpTree::new();
        for (row, weight) in transactions {
            let mut filtered: Vec<ItemId> = row
                .iter()
                .copied()
                .filter(|i| order.contains_key(i))
                .collect();
            filtered.sort_by_key(|i| order[i]);
            if !filtered.is_empty() {
                tree.insert(&filtered, *weight);
            }
        }

        // Mine each item bottom-up.
        for &(item, count) in frequent.iter().rev() {
            let mut pattern: ItemSet = suffix.to_vec();
            pattern.push(item);
            pattern.sort_unstable();
            out.push((pattern.clone(), count));
            if out.len() > limits.max_itemsets {
                return Err(OutOfMemory {
                    itemsets_produced: out.len(),
                });
            }
            // Conditional pattern base for `item`.
            let mut cond: Vec<(ItemSet, usize)> = Vec::new();
            let mut cond_counts: HashMap<ItemId, usize> = HashMap::new();
            if let Some(nodes) = tree.header.get(&item) {
                for &n in nodes {
                    let path = tree.prefix_path(n);
                    let w = tree.arena[n].count;
                    if !path.is_empty() {
                        for &p in &path {
                            *cond_counts.entry(p).or_insert(0) += w;
                        }
                        cond.push((path, w));
                    }
                }
            }
            if !cond.is_empty() {
                self.mine_rec(&cond, &cond_counts, &pattern, limits, out)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apriori;

    fn classic() -> Transactions {
        Transactions::from_slices(&[
            &["bread", "milk"],
            &["bread", "diapers", "beer", "eggs"],
            &["milk", "diapers", "beer", "cola"],
            &["bread", "milk", "diapers", "beer"],
            &["bread", "milk", "diapers", "cola"],
        ])
    }

    #[test]
    fn agrees_with_apriori_on_classic() {
        let tx = classic();
        for min_sup in 1..=4 {
            let mut a = Apriori::new(min_sup)
                .mine(&tx, &MiningLimits::unbounded())
                .unwrap();
            let mut f = FpGrowth::new(min_sup)
                .mine(&tx, &MiningLimits::unbounded())
                .unwrap();
            a.canonicalize();
            f.canonicalize();
            assert_eq!(a, f, "min_sup={min_sup}");
        }
    }

    #[test]
    fn single_transaction_powerset() {
        let tx = Transactions::from_slices(&[&["a", "b", "c"]]);
        let result = FpGrowth::new(1)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        assert_eq!(result.len(), 7); // 2^3 - 1
    }

    #[test]
    fn supports_are_correct() {
        let tx = classic();
        let result = FpGrowth::new(3)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        for (set, count) in &result.itemsets {
            let expected = tx
                .rows()
                .iter()
                .filter(|row| crate::apriori::is_subset(set, row))
                .count();
            assert_eq!(*count, expected, "{:?}", tx.render(set));
        }
    }

    #[test]
    fn resource_guard_trips() {
        let names: Vec<String> = (0..20).map(|i| format!("i{i}")).collect();
        let row: Vec<&str> = names.iter().map(String::as_str).collect();
        let tx = Transactions::from_slices(&[&row, &row]);
        let err = FpGrowth::new(1)
            .mine(&tx, &MiningLimits::capped(5000))
            .unwrap_err();
        assert!(err.itemsets_produced > 5000);
    }

    #[test]
    fn empty_input() {
        let tx = Transactions::new();
        let result = FpGrowth::new(1)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        assert!(result.is_empty());
    }
}
