//! Apriori frequent-item-set mining (level-wise candidate generation).
//!
//! Included both as a correctness oracle for FP-Growth (the two must agree)
//! and to reproduce the paper's observation that "Apriori does not scale to
//! large data sets" (§2.2) — candidate explosion hits the resource guard far
//! earlier than FP-Growth does.

use crate::{ItemId, ItemSet, MiningLimits, MiningResult, OutOfMemory, Transactions};
use std::collections::HashMap;

/// Apriori miner with an absolute minimum-support count.
#[derive(Debug, Clone, Copy)]
pub struct Apriori {
    min_support: usize,
}

impl Apriori {
    /// Create a miner; `min_support` is an absolute transaction count and
    /// is clamped to at least 1.
    pub fn new(min_support: usize) -> Apriori {
        Apriori {
            min_support: min_support.max(1),
        }
    }

    /// The configured minimum support count.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Mine all frequent item sets.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the number of frequent item sets (plus
    /// live candidates) exceeds `limits.max_itemsets` — the reproduction of
    /// the paper's OOM terminations in Table 3.
    pub fn mine(
        &self,
        tx: &Transactions,
        limits: &MiningLimits,
    ) -> Result<MiningResult, OutOfMemory> {
        let mut all: Vec<(ItemSet, usize)> = Vec::new();

        // L1: frequent single items.
        let mut counts: HashMap<ItemId, usize> = HashMap::new();
        for row in tx.rows() {
            for &item in row {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let mut level: Vec<ItemSet> = counts
            .iter()
            .filter(|&(_, &c)| c >= self.min_support)
            .map(|(&i, _)| vec![i])
            .collect();
        level.sort();
        for set in &level {
            all.push((set.clone(), counts[&set[0]]));
        }

        // Level-wise expansion.
        while !level.is_empty() {
            let candidates = join_level(&level);
            if candidates.len() + all.len() > limits.max_itemsets {
                return Err(OutOfMemory {
                    itemsets_produced: all.len(),
                });
            }
            let mut next: Vec<(ItemSet, usize)> = Vec::new();
            for cand in candidates {
                let count = tx.rows().iter().filter(|row| is_subset(&cand, row)).count();
                if count >= self.min_support {
                    next.push((cand, count));
                }
            }
            level = next.iter().map(|(s, _)| s.clone()).collect();
            all.extend(next);
            if all.len() > limits.max_itemsets {
                return Err(OutOfMemory {
                    itemsets_produced: all.len(),
                });
            }
        }
        Ok(MiningResult { itemsets: all })
    }
}

/// Apriori join: combine k-sets sharing a (k-1)-prefix into (k+1)-candidates,
/// pruning candidates with an infrequent k-subset.
fn join_level(level: &[ItemSet]) -> Vec<ItemSet> {
    use std::collections::HashSet;
    let frequent: HashSet<&ItemSet> = level.iter().collect();
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in (i + 1)..level.len() {
            let (a, b) = (&level[i], &level[j]);
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                continue;
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            cand.sort_unstable();
            // Prune: every k-subset must be frequent.
            let all_frequent = (0..cand.len()).all(|skip| {
                let sub: ItemSet = cand
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| *idx != skip)
                    .map(|(_, &v)| v)
                    .collect();
                frequent.contains(&sub)
            });
            if all_frequent {
                out.push(cand);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Is sorted `needle` a subset of sorted `haystack`?
pub(crate) fn is_subset(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.by_ref().any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic() -> Transactions {
        // The textbook market-basket example.
        Transactions::from_slices(&[
            &["bread", "milk"],
            &["bread", "diapers", "beer", "eggs"],
            &["milk", "diapers", "beer", "cola"],
            &["bread", "milk", "diapers", "beer"],
            &["bread", "milk", "diapers", "cola"],
        ])
    }

    #[test]
    fn frequent_pairs_found() {
        let tx = classic();
        let result = Apriori::new(3)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        let rendered: Vec<(Vec<&str>, usize)> = result
            .itemsets
            .iter()
            .map(|(s, c)| (tx.render(s), *c))
            .collect();
        assert!(rendered.contains(&(vec!["bread", "milk"], 3)));
        assert!(
            rendered.contains(&(vec!["diapers", "beer"], 3))
                || rendered.contains(&(vec!["beer", "diapers"], 3))
        );
        // {bread, beer} has support 2 < 3 and must be absent.
        assert!(!rendered
            .iter()
            .any(|(s, _)| s.len() == 2 && s.contains(&"bread") && s.contains(&"beer")));
    }

    #[test]
    fn min_support_one_returns_everything_frequent() {
        let tx = Transactions::from_slices(&[&["a"], &["a", "b"]]);
        let result = Apriori::new(1)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        assert_eq!(result.len(), 3); // {a}, {b}, {a,b}
    }

    #[test]
    fn resource_guard_trips() {
        // 16 items all co-occurring → 2^16-1 frequent item sets.
        let names: Vec<String> = (0..16).map(|i| format!("i{i}")).collect();
        let row: Vec<&str> = names.iter().map(String::as_str).collect();
        let tx = Transactions::from_slices(&[&row, &row]);
        let err = Apriori::new(1)
            .mine(&tx, &MiningLimits::capped(1000))
            .unwrap_err();
        assert!(err.itemsets_produced <= 1000 + 16);
    }

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
    }

    #[test]
    fn empty_transactions_mine_nothing() {
        let tx = Transactions::new();
        let result = Apriori::new(1)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        assert!(result.is_empty());
    }
}
