//! Association-rule extraction from frequent item sets.
//!
//! This is the "frequent-item-sets style" rule representation the paper
//! finds insufficiently expressive for configuration correlations
//! (Finding 4) — we implement it both as the baseline comparator and to
//! complete the off-the-shelf mining substrate.

use crate::{confidence, ItemSet, MiningResult, Transactions};

/// An association rule `antecedent → consequent` with its metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side item set (sorted).
    pub antecedent: ItemSet,
    /// Right-hand side item set (sorted).
    pub consequent: ItemSet,
    /// Absolute support count of the union.
    pub support: usize,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
}

impl AssociationRule {
    /// Render the rule with item names.
    pub fn render(&self, tx: &Transactions) -> String {
        format!(
            "{:?} => {:?} (sup={}, conf={:.2})",
            tx.render(&self.antecedent),
            tx.render(&self.consequent),
            self.support,
            self.confidence
        )
    }
}

/// Extract all rules with confidence ≥ `min_confidence` from mined frequent
/// item sets, considering single-item consequents (the standard restriction
/// used by Weka's FP-Growth implementation).
pub fn extract_rules(
    tx: &Transactions,
    mined: &MiningResult,
    min_confidence: f64,
) -> Vec<AssociationRule> {
    let mut out = Vec::new();
    for (set, support) in &mined.itemsets {
        if set.len() < 2 {
            continue;
        }
        for (i, &cons) in set.iter().enumerate() {
            let ante: ItemSet = set
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &v)| v)
                .collect();
            if let Some(conf) = confidence(tx, &ante, &[cons]) {
                if conf >= min_confidence {
                    out.push(AssociationRule {
                        antecedent: ante,
                        consequent: vec![cons],
                        support: *support,
                        confidence: conf,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpGrowth, MiningLimits};

    #[test]
    fn rules_meet_confidence_threshold() {
        let tx = Transactions::from_slices(&[
            &["a", "b"],
            &["a", "b"],
            &["a", "b"],
            &["a"],
            &["b", "c"],
        ]);
        let mined = FpGrowth::new(2)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        let rules = extract_rules(&tx, &mined, 0.75);
        assert!(rules.iter().all(|r| r.confidence >= 0.75));
        // b → a has confidence 3/4 and must be present.
        assert!(rules.iter().any(
            |r| tx.render(&r.antecedent) == vec!["b"] && tx.render(&r.consequent) == vec!["a"]
        ));
        // a → b has confidence 3/4 as well.
        assert!(rules.iter().any(
            |r| tx.render(&r.antecedent) == vec!["a"] && tx.render(&r.consequent) == vec!["b"]
        ));
    }

    #[test]
    fn single_items_yield_no_rules() {
        let tx = Transactions::from_slices(&[&["a"], &["a"]]);
        let mined = FpGrowth::new(1)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        assert!(extract_rules(&tx, &mined, 0.0).is_empty());
    }

    #[test]
    fn render_mentions_metrics() {
        let tx = Transactions::from_slices(&[&["x", "y"], &["x", "y"]]);
        let mined = FpGrowth::new(2)
            .mine(&tx, &MiningLimits::unbounded())
            .unwrap();
        let rules = extract_rules(&tx, &mined, 0.9);
        assert!(!rules.is_empty());
        let s = rules[0].render(&tx);
        assert!(s.contains("sup=2"));
    }
}
