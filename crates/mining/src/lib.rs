//! Hand-rolled association-rule mining — the Weka/RapidMiner substitute.
//!
//! Section 2.2 of the paper reports a negative result that motivates
//! EnCore's design: off-the-shelf frequent-item-set mining (Apriori,
//! FP-Growth) does not scale to configuration data once environment
//! attributes are added and nominal attributes are discretized to booleans.
//! To reproduce that finding (Tables 2 and 3) we implement both algorithms
//! from scratch, plus:
//!
//! * [`mod@discretize`] — the nominal→binomial conversion that inflates the
//!   attribute count (Table 2's third row),
//! * [`metrics`] — support, confidence, and Shannon entropy (§5.2),
//! * a configurable resource guard standing in for the paper's
//!   out-of-memory kill (Table 3's `OOM` cells).
//!
//! # Examples
//!
//! ```
//! use encore_mining::{FpGrowth, MiningLimits, Transactions};
//!
//! let tx = Transactions::from_slices(&[
//!     &["a", "b", "c"], &["a", "b"], &["a", "c"], &["b", "c"],
//! ]);
//! let result = FpGrowth::new(2).mine(&tx, &MiningLimits::unbounded()).unwrap();
//! assert!(result.itemsets.len() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod discretize;
pub mod fpgrowth;
pub mod metrics;
pub mod rules;
pub mod transactions;

pub use apriori::Apriori;
pub use discretize::discretize;
pub use fpgrowth::FpGrowth;
pub use metrics::{confidence, entropy, support_count};
pub use rules::{extract_rules, AssociationRule};
pub use transactions::{ItemId, ItemSet, Transactions};

use std::fmt;

/// Resource limits for a mining run — the stand-in for the paper's 16 GB
/// testbed that OOM-kills at 200+ attributes (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiningLimits {
    /// Maximum number of frequent item sets to materialize before aborting.
    pub max_itemsets: usize,
}

impl MiningLimits {
    /// No limits (tests and small runs).
    pub fn unbounded() -> MiningLimits {
        MiningLimits {
            max_itemsets: usize::MAX,
        }
    }

    /// Abort once `max_itemsets` frequent item sets have been produced.
    pub fn capped(max_itemsets: usize) -> MiningLimits {
        MiningLimits { max_itemsets }
    }
}

impl Default for MiningLimits {
    fn default() -> Self {
        // Default guard ≈ what 16 GB of item-set bookkeeping tolerates.
        MiningLimits::capped(20_000_000)
    }
}

/// Outcome of a successful mining run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningResult {
    /// Every frequent item set with its support count.
    pub itemsets: Vec<(ItemSet, usize)>,
}

impl MiningResult {
    /// Number of frequent item sets found.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// Whether no item set met the support threshold.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// Sort item sets canonically (by length then lexicographically) —
    /// convenient for comparing algorithm outputs.
    pub fn canonicalize(&mut self) {
        for (set, _) in &mut self.itemsets {
            set.sort_unstable();
        }
        self.itemsets.sort();
    }
}

/// Mining failure: the resource guard tripped (the paper's `OOM`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// How many item sets had been materialized when the guard tripped.
    pub itemsets_produced: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mining aborted by resource guard after {} frequent item sets",
            self.itemsets_produced
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_default_is_capped() {
        assert_ne!(MiningLimits::default().max_itemsets, usize::MAX);
    }

    #[test]
    fn oom_displays_count() {
        let e = OutOfMemory {
            itemsets_produced: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
