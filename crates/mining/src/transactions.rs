//! Transaction database: the input representation of item-set mining.

use std::collections::HashMap;

/// Interned item identifier.
pub type ItemId = u32;

/// A set of items, sorted ascending by id.
pub type ItemSet = Vec<ItemId>;

/// A transaction database with an item-name intern table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transactions {
    names: Vec<String>,
    ids: HashMap<String, ItemId>,
    rows: Vec<ItemSet>,
}

impl Transactions {
    /// An empty database.
    pub fn new() -> Transactions {
        Transactions::default()
    }

    /// Build from string slices (convenient for tests and doctests).
    pub fn from_slices(rows: &[&[&str]]) -> Transactions {
        let mut tx = Transactions::new();
        for row in rows {
            tx.push(row.iter().copied());
        }
        tx
    }

    /// Intern an item name.
    pub fn intern(&mut self, name: &str) -> ItemId {
        match self.ids.get(name) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as ItemId;
                self.names.push(name.to_string());
                self.ids.insert(name.to_string(), id);
                id
            }
        }
    }

    /// Append one transaction of item names; duplicates within a
    /// transaction are collapsed.
    pub fn push<'a>(&mut self, items: impl IntoIterator<Item = &'a str>) {
        let mut row: ItemSet = items.into_iter().map(|s| self.intern(s)).collect();
        row.sort_unstable();
        row.dedup();
        self.rows.push(row);
    }

    /// The name of an item id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this database.
    pub fn name(&self, id: ItemId) -> &str {
        &self.names[id as usize]
    }

    /// Render an item set as names.
    pub fn render(&self, set: &[ItemId]) -> Vec<&str> {
        set.iter().map(|&i| self.name(i)).collect()
    }

    /// All transactions.
    pub fn rows(&self) -> &[ItemSet] {
        &self.rows
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut tx = Transactions::new();
        let a = tx.intern("a");
        let b = tx.intern("b");
        assert_eq!(tx.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(tx.name(a), "a");
    }

    #[test]
    fn push_sorts_and_dedups() {
        let mut tx = Transactions::new();
        tx.push(["b", "a", "b"]);
        assert_eq!(tx.rows()[0].len(), 2);
        assert!(tx.rows()[0].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_slices_counts() {
        let tx = Transactions::from_slices(&[&["x", "y"], &["y", "z"]]);
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.num_items(), 3);
        assert_eq!(tx.render(&tx.rows()[1]), vec!["y", "z"]);
    }
}
