//! Nominal→binomial discretization (§2.2, Table 2).
//!
//! Apriori and FP-Growth operate on boolean items, so every nominal
//! attribute must be discretized: each distinct `(attribute, value)` pair
//! becomes one boolean item (`attr=value`).  The paper highlights this
//! "boolean discretization problem" as a driver of the attribute blow-up —
//! Table 2's `Binominal` row — and we reproduce the exact conversion here.

use crate::Transactions;
use encore_model::Dataset;

/// Convert an assembled dataset into a boolean transaction database.
///
/// Each row becomes one transaction whose items are `attr=value` strings.
/// Returns the transaction database together with the binomial attribute
/// count (the number of distinct items).
pub fn discretize(dataset: &Dataset) -> Transactions {
    let mut tx = Transactions::new();
    for row in dataset.rows() {
        let items: Vec<String> = row
            .iter()
            .filter(|(_, v)| !v.is_absent())
            .map(|(a, v)| format!("{a}={}", v.render()))
            .collect();
        tx.push(items.iter().map(String::as_str));
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore_model::{AttrName, ConfigValue, Row};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for (id, user, port) in [
            ("a", "mysql", 3306.0),
            ("b", "mysql", 3307.0),
            ("c", "root", 3306.0),
        ] {
            let mut r = Row::new(id);
            r.set(AttrName::entry("user"), ConfigValue::str(user));
            r.set(AttrName::entry("port"), ConfigValue::number(port));
            ds.push_row(r);
        }
        ds
    }

    #[test]
    fn binomial_count_is_distinct_attr_value_pairs() {
        let tx = discretize(&dataset());
        // user ∈ {mysql, root} + port ∈ {3306, 3307} = 4 binomial items
        assert_eq!(tx.num_items(), 4);
        assert_eq!(tx.len(), 3);
    }

    #[test]
    fn binomial_count_at_least_nominal_count() {
        let ds = dataset();
        let tx = discretize(&ds);
        assert!(tx.num_items() >= ds.num_attributes());
    }

    #[test]
    fn absent_cells_skipped() {
        let mut ds = Dataset::new();
        let mut r = Row::new("x");
        r.set(AttrName::entry("a"), ConfigValue::Absent);
        r.set(AttrName::entry("b"), ConfigValue::str("v"));
        ds.push_row(r);
        let tx = discretize(&ds);
        assert_eq!(tx.num_items(), 1);
    }
}
