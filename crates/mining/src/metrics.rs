//! Rule-quality metrics: support, confidence, and Shannon entropy (§5.2).

use crate::{ItemId, Transactions};

/// Number of transactions containing every item of `set` (sorted ids).
pub fn support_count(tx: &Transactions, set: &[ItemId]) -> usize {
    tx.rows()
        .iter()
        .filter(|row| crate::apriori::is_subset(set, row))
        .count()
}

/// Confidence of the rule `antecedent → consequent`:
/// `support(antecedent ∪ consequent) / support(antecedent)`.
///
/// Returns `None` when the antecedent never occurs.
pub fn confidence(tx: &Transactions, antecedent: &[ItemId], consequent: &[ItemId]) -> Option<f64> {
    let ante = support_count(tx, antecedent);
    if ante == 0 {
        return None;
    }
    let mut both: Vec<ItemId> = antecedent.iter().chain(consequent).copied().collect();
    both.sort_unstable();
    both.dedup();
    Some(support_count(tx, &both) as f64 / ante as f64)
}

/// Shannon entropy of a value distribution, in nats (the paper uses `ln`):
/// `H = -Σ p_i ln p_i` with `p_i = N_i / N`.
///
/// The paper's threshold `Ht = 0.325` corresponds to a 90%/10% two-value
/// split (§5.2); an entry must satisfy `H > Ht` to participate in rules.
///
/// Computed in a single allocation-free pass via the equivalent form
/// `H = ln N - (Σ c ln c) / N`.
pub fn entropy(counts: impl IntoIterator<Item = usize>) -> f64 {
    let (mut n, mut nonzero, mut c_ln_c) = (0usize, 0usize, 0.0f64);
    for c in counts.into_iter().filter(|&c| c > 0) {
        n += c;
        nonzero += 1;
        c_ln_c += c as f64 * (c as f64).ln();
    }
    if nonzero <= 1 {
        // Empty or single-valued distributions carry exactly zero entropy;
        // don't let floating-point residue say otherwise.
        return 0.0;
    }
    let h = (n as f64).ln() - c_ln_c / n as f64;
    // Entropy is non-negative by definition; clamp rounding residue.
    h.max(0.0)
}

/// The paper's default entropy threshold (90%/10% two-value split).
pub const DEFAULT_ENTROPY_THRESHOLD: f64 = 0.325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_two_values_is_ln2() {
        let h = entropy([50, 50]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy([100]), 0.0);
        assert_eq!(entropy([]), 0.0);
    }

    #[test]
    fn paper_threshold_matches_90_10_split() {
        // H(0.9, 0.1) = -(0.9 ln 0.9 + 0.1 ln 0.1) ≈ 0.325
        let h = entropy([90, 10]);
        assert!((h - DEFAULT_ENTROPY_THRESHOLD).abs() < 0.001, "H = {h}");
    }

    #[test]
    fn entropy_increases_with_diversity() {
        assert!(entropy([50, 50]) < entropy([34, 33, 33]));
        assert!(entropy([99, 1]) < entropy([90, 10]));
    }

    #[test]
    fn support_and_confidence() {
        let mut tx = Transactions::new();
        tx.push(["a", "b"]);
        tx.push(["a", "b"]);
        tx.push(["a"]);
        tx.push(["b"]);
        let a = 0; // first interned
        let b = 1;
        assert_eq!(support_count(&tx, &[a]), 3);
        assert_eq!(support_count(&tx, &[a, b]), 2);
        let c = confidence(&tx, &[a], &[b]).unwrap();
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(confidence(&tx, &[99], &[b]), None);
    }
}
