//! End-to-end tests for the `encore-serve` binary: server lifecycle over
//! a unix socket, client verbs, the telemetry surface, and bounded
//! stdin-EOF shutdown.

use encore::prelude::*;
use encore::{AnomalyDetector, DetectorSnapshot, FleetOptions};
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn encore_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-serve"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("failed to spawn encore-serve")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// A unique, pre-cleaned temp directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-serve-cli-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Train a small detector and persist its snapshot; returns the path.
fn train_snapshot(dir: &Path, name: &str, app: AppKind, seed: u64) -> PathBuf {
    let pop = Population::training(app, &PopulationOptions::new(8, seed));
    let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
    let detector = EnCore::learn(&training, &LearnOptions::default()).into_detector();
    let path = dir.join(name);
    std::fs::write(&path, detector.snapshot().render()).expect("write snapshot");
    path
}

/// Spawn the server with stdin held open; returns the child, the
/// announced metrics address, and the still-open stderr reader (keep it
/// alive so late server output has somewhere to go).
fn spawn_server(
    args: &[&str],
    want_metrics: bool,
) -> (Child, Option<String>, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_encore-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn encore-serve server");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut metrics = None;
    let mut serving = false;
    while !(serving && (!want_metrics || metrics.is_some())) {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("read stderr"),
            0,
            "server exited before announcing its socket"
        );
        if let Some((_, addr)) = line.trim_end().split_once("metrics listening on ") {
            metrics = Some(addr.to_string());
        }
        if line.contains("serving on ") {
            serving = true;
        }
    }
    (child, metrics, stderr)
}

/// One raw HTTP/1.0 GET: returns (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn server_answers_all_client_verbs_and_scrapes() {
    let dir = scratch_dir("verbs");
    let mysql_snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 41);
    let web_snap = train_snapshot(&dir, "web.snap", AppKind::Apache, 42);
    let config = dir.join("target.cnf");
    std::fs::write(&config, "[mysqld]\nport = 3306\nstray_knob = 7\n").unwrap();
    let socket = dir.join("serve.sock");
    let socket_str = socket.to_str().unwrap().to_string();
    let mysql_app = format!("mysql={}={}", "mysql", mysql_snap.display());
    let web_app = format!("web={}={}", "apache", web_snap.display());

    let (mut child, metrics, _stderr) = spawn_server(
        &[
            "--socket",
            &socket_str,
            "--app",
            &mysql_app,
            "--app",
            &web_app,
            "--metrics-addr",
            "127.0.0.1:0",
        ],
        true,
    );
    let metrics = metrics.expect("metrics announced");

    // `apps` sees both tenants ready.
    let out = encore_serve(&["--socket", &socket_str, "--apps"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert_eq!(
        stdout(&out),
        "mysql mysql ready reloads=0\nweb apache ready reloads=0\n"
    );

    // `check` through the CLI is byte-identical to a direct
    // `check_fleet` call over the same snapshot.
    let out = encore_serve(&[
        "--socket",
        &socket_str,
        "--check",
        "mysql",
        config.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let text = std::fs::read_to_string(&mysql_snap).unwrap();
    let detector =
        AnomalyDetector::from_snapshot(DetectorSnapshot::parse(&text).expect("snapshot parses"));
    let image = encore::watch::target_image(
        AppKind::Mysql,
        "target.cnf",
        &std::fs::read_to_string(&config).unwrap(),
    );
    let expected = detector.check_fleet(AppKind::Mysql, &[image], &FleetOptions::default())[0]
        .as_ref()
        .expect("assembles")
        .render();
    assert_eq!(stdout(&out), format!("== target.cnf\n{expected}"));

    // `reload` and `stats` answer over the same socket.
    let out = encore_serve(&["--socket", &socket_str, "--reload", "web"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), "reloaded web\n");
    let out = encore_serve(&["--socket", &socket_str, "--stats"]);
    assert_eq!(out.status.code(), Some(0));
    let stats = stdout(&out);
    assert!(stats.contains("checks 1\n"), "{stats}");
    assert!(stats.contains("queue_capacity 16\n"), "{stats}");
    assert!(stats.contains("apps_ready 2\n"), "{stats}");

    // The scrape surface carries the serve phase; readiness is per-app.
    let (status, body) = http_get(&metrics, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("# TYPE encore_serve_requests_total counter"));
    let (status, body) = http_get(&metrics, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "mysql ready\nweb ready\n");
    let (status, body) = http_get(&metrics, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // `shutdown` stops the server; it exits 0 and unlinks the socket.
    let out = encore_serve(&["--socket", &socket_str, "--shutdown"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), "stopping\n");
    let status = child.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));
    assert!(!socket.exists(), "socket unlinked after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_log_grammar_holds_over_a_live_run() {
    use encore::obs::json::{self, Json};

    let dir = scratch_dir("events");
    let snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 44);
    let config = dir.join("target.cnf");
    // Carry attributes the learned rules key on (`user`, `datadir`,
    // `general_log` all appear in A-slots of the seed-44 rule set) so the
    // checks evaluate real correlation candidates and the rule-bucket
    // profiler has cost to attribute.
    std::fs::write(
        &config,
        "[mysqld]\nport = 3306\nuser = mysql\ndatadir = /var/lib/mysql\ngeneral_log = 1\n",
    )
    .unwrap();
    let socket = dir.join("serve.sock");
    let socket_str = socket.to_str().unwrap().to_string();
    let events = dir.join("events.jsonl");
    let profile = dir.join("profile.json");
    let app = format!("mysql=mysql={}", snap.display());

    // --slow-micros 0: every request total is >= 0µs, so the slow path
    // must fire for each one.
    let (mut child, _, _stderr) = spawn_server(
        &[
            "--socket",
            &socket_str,
            "--app",
            &app,
            "--event-log",
            events.to_str().unwrap(),
            "--slow-micros",
            "0",
            "--profile",
            profile.to_str().unwrap(),
        ],
        false,
    );

    // Five well-formed requests over separate connections...
    let out = encore_serve(&["--socket", &socket_str, "--apps"]);
    assert_eq!(out.status.code(), Some(0));
    for _ in 0..2 {
        let out = encore_serve(&[
            "--socket",
            &socket_str,
            "--check",
            "mysql",
            config.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    }
    let out = encore_serve(&["--socket", &socket_str, "--stats"]);
    assert_eq!(out.status.code(), Some(0));
    let stats = stdout(&out);
    assert!(stats.contains("events_written "), "{stats}");
    assert!(stats.contains("events_dropped 0\n"), "{stats}");
    assert!(stats.contains("events_queue_depth "), "{stats}");

    // ...plus one malformed request on a raw socket (ids count it too).
    {
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&socket).expect("connect raw");
        stream.write_all(b"verbless nonsense\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("error "), "{response}");
    }

    let out = encore_serve(&["--socket", &socket_str, "--shutdown"]);
    assert_eq!(out.status.code(), Some(0));
    let status = child.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));

    // Every line parses; request.done records are one-per-request with
    // strictly dense ids 1..=max; the slow path fired for every request.
    let text = std::fs::read_to_string(&events).expect("event log written");
    let mut done_ids = Vec::new();
    let mut done_checks = 0usize;
    let mut slow = 0usize;
    for line in text.lines() {
        let value = json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        let event = value.get("event").and_then(Json::as_str).expect("event");
        match event {
            "request.done" => {
                let req = value.get("req").and_then(Json::as_u64);
                done_ids.push(req.expect("request.done carries req"));
                if value
                    .get("fields")
                    .and_then(|f| f.get("verb"))
                    .and_then(Json::as_str)
                    == Some("check")
                {
                    done_checks += 1;
                }
            }
            "request.slow" => slow += 1,
            _ => {}
        }
    }
    // 6 requests total: apps, check, check, stats, malformed, shutdown.
    done_ids.sort_unstable();
    let expected: Vec<u64> = (1..=6).collect();
    assert_eq!(done_ids, expected, "ids dense, one done per request");
    assert_eq!(done_checks, 2, "one request.done per accepted check");
    assert_eq!(slow, 6, "--slow-micros 0 captures every request");

    // The profile file is valid JSON with the expected table layout.
    let profile_text = std::fs::read_to_string(&profile).expect("profile written");
    let value = json::parse(&profile_text).expect("profile json parses");
    let tables = value.get("tables").and_then(Json::as_arr).expect("tables");
    let names: Vec<&str> = tables
        .iter()
        .filter_map(|t| t.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["infer.templates", "detect.buckets"]);
    let buckets = &tables[1];
    assert!(
        buckets
            .get("rows")
            .and_then(Json::as_arr)
            .is_some_and(|rows| !rows.is_empty()),
        "checks attributed rule-bucket cost: {profile_text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stdin_eof_stops_the_server_within_a_bounded_latency() {
    let dir = scratch_dir("eof");
    let snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 43);
    let socket = dir.join("serve.sock");
    let app = format!("mysql=mysql={}", snap.display());
    // A deliberately huge poll interval: shutdown latency must be bounded
    // by the stop signal, not by sleeping out the interval.
    let (mut child, _, _stderr) = spawn_server(
        &[
            "--socket",
            socket.to_str().unwrap(),
            "--app",
            &app,
            "--poll-interval-ms",
            "600000",
        ],
        false,
    );
    let started = Instant::now();
    drop(child.stdin.take());
    let status = child.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "stdin EOF must interrupt the 600s poll wait, took {:?}",
        started.elapsed()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let dir = scratch_dir("usage");
    // No --socket.
    let out = encore_serve(&["--apps"]);
    assert_eq!(out.status.code(), Some(2));
    // Server mode without any --app.
    let out = encore_serve(&["--socket", dir.join("s.sock").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    // Client verb mixed with a server flag.
    let out = encore_serve(&[
        "--socket",
        dir.join("s.sock").to_str().unwrap(),
        "--app",
        "mysql=mysql=x.snap",
        "--apps",
    ]);
    assert_eq!(out.status.code(), Some(2));
    // Malformed --app spec.
    let out = encore_serve(&[
        "--socket",
        dir.join("s.sock").to_str().unwrap(),
        "--app",
        "just-a-name",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_refuses_a_missing_snapshot_strictly() {
    let dir = scratch_dir("strict");
    let out = encore_serve(&[
        "--socket",
        dir.join("s.sock").to_str().unwrap(),
        "--app",
        "mysql=mysql=/does/not/exist.snap",
    ]);
    assert_eq!(out.status.code(), Some(1), "strict load failure exits 1");
    let _ = std::fs::remove_dir_all(&dir);
}
