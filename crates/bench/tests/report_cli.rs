//! End-to-end tests for the `encore-report` binary: exit statuses for
//! clean and gated diffs, policy files, and JSONL rendering.

use encore::obs::{PhaseReport, PipelineReport, TimerSnapshot};
use std::path::PathBuf;
use std::process::{Command, Output};

fn encore_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-report"))
        .args(args)
        .output()
        .expect("failed to spawn encore-report")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A small hand-built perf-record-shaped report.
fn sample_report() -> PipelineReport {
    PipelineReport {
        phases: vec![PhaseReport {
            name: "bench".to_string(),
            counters: vec![
                ("bench.images.collected".to_string(), 30),
                ("bench.pairs.evaluated".to_string(), 5_996),
            ],
            gauges: vec![("bench.workers".to_string(), 2)],
            timers: vec![(
                "infer.time".to_string(),
                TimerSnapshot {
                    nanos: 40_000_000,
                    spans: 1,
                },
            )],
            histograms: Vec::new(),
        }],
    }
}

/// Write a fixture file under the temp dir, named per test.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("encore-report-test-{name}"));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn self_diff_exits_zero_and_reports_no_differences() {
    let path = fixture("self.json", &sample_report().render_json());
    let path = path.to_str().unwrap();
    let out = encore_report(&["diff", path, path]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));
    assert!(
        stdout(&out).contains("no differences"),
        "stdout:\n{}",
        stdout(&out)
    );
}

#[test]
fn perturbed_counter_exits_one_naming_metric_and_gate() {
    let base = sample_report();
    let mut current = base.clone();
    current.phases[0].counters[1].1 += 7;
    let base_path = fixture("gate-base.json", &base.render_json());
    let current_path = fixture("gate-current.json", &current.render_json());
    let out = encore_report(&[
        "diff",
        base_path.to_str().unwrap(),
        current_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
    let err = stderr(&out);
    assert!(err.contains("bench.pairs.evaluated"), "stderr:\n{err}");
    assert!(err.contains("exact"), "stderr:\n{err}");
    assert!(
        stdout(&out).contains("bench.pairs.evaluated"),
        "the delta itself renders to stdout:\n{}",
        stdout(&out)
    );
}

#[test]
fn policy_file_can_downgrade_the_gate() {
    let base = sample_report();
    let mut current = base.clone();
    current.phases[0].counters[1].1 += 7;
    let base_path = fixture("policy-base.json", &base.render_json());
    let current_path = fixture("policy-current.json", &current.render_json());
    let policy = fixture("policy.txt", "counters info\ntimers ratio 2.0\n");
    let out = encore_report(&[
        "diff",
        base_path.to_str().unwrap(),
        current_path.to_str().unwrap(),
        "--policy",
        policy.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));
}

#[test]
fn json_output_parses_and_out_file_matches_stdout() {
    let path = fixture("json.json", &sample_report().render_json());
    let out_file = std::env::temp_dir().join("encore-report-test-delta-out.json");
    let out = encore_report(&[
        "diff",
        path.to_str().unwrap(),
        path.to_str().unwrap(),
        "--json",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));
    let text = stdout(&out);
    encore::obs::json::parse(text.trim()).expect("delta JSON parses");
    assert_eq!(std::fs::read_to_string(&out_file).unwrap(), text);
}

#[test]
fn show_renders_each_jsonl_line() {
    let report = sample_report().render_json();
    let path = fixture("trace.jsonl", &format!("{report}\n{report}\n"));
    let out = encore_report(&["show", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("-- report 1 of 2 --"), "stdout:\n{text}");
    assert!(text.contains("-- report 2 of 2 --"), "stdout:\n{text}");
    assert!(text.contains("bench.pairs.evaluated"), "stdout:\n{text}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["diff", "only-one.json"] as &[&str],
        &["frobnicate"],
        &[],
        &["diff", "/nonexistent/a.json", "/nonexistent/b.json"],
    ] {
        let out = encore_report(args);
        assert_eq!(out.status.code(), Some(2), "args={args:?}");
    }
}
