//! End-to-end tests for the `encore-detect` findings surface: SARIF
//! emission, fingerprint stability across worker counts, baseline gating,
//! and the quiet/severity filters.
//!
//! All runs share the small seeded fleet (`--train 12 --targets 6`), which
//! produces a nonempty but fast finding set.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn encore_detect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-detect"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("failed to spawn encore-detect")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("encore-detect-findings-{name}"))
}

const FLEET: [&str; 4] = ["--train", "12", "--targets", "6"];

#[test]
fn sarif_is_byte_identical_across_worker_counts() {
    let mut logs = Vec::new();
    for workers in ["1", "2", "4"] {
        let path = tmp(&format!("sarif-w{workers}.sarif"));
        let mut args = FLEET.to_vec();
        args.extend(["--workers", workers, "--sarif", path.to_str().unwrap()]);
        let out = encore_detect(&args);
        assert!(out.status.success(), "stderr:\n{}", stderr(&out));
        logs.push(std::fs::read_to_string(&path).expect("SARIF written"));
    }
    assert_eq!(logs[0], logs[1], "workers must not affect fingerprints");
    assert_eq!(logs[0], logs[2], "workers must not affect fingerprints");
    let log = &logs[0];
    assert!(log.contains("\"version\":\"2.1.0\""), "log:\n{log}");
    assert!(log.contains("\"name\":\"encore-detect\""), "log:\n{log}");
    // The registry advertises both lint and detection codes; the results
    // carry detection codes with fingerprints and confidences.
    assert!(log.contains("\"id\":\"EW002\""), "log:\n{log}");
    assert!(log.contains("\"ruleId\":\"EW"), "log:\n{log}");
    assert!(log.contains("\"encoreFinding/v1\":\""), "log:\n{log}");
    assert!(log.contains("\"confidence\":"), "log:\n{log}");
}

#[test]
fn baseline_round_trip_gates_only_fresh_findings() {
    let baseline = tmp("baseline.txt");
    // Record the seeded fleet's findings.
    let mut write = FLEET.to_vec();
    write.extend(["--write-baseline", baseline.to_str().unwrap()]);
    let out = encore_detect(&write);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.starts_with("# encore findings baseline v1"), "{text}");

    // Immediate re-run against the baseline: everything suppressed, exit 0.
    let mut gated = FLEET.to_vec();
    gated.extend(["--baseline", baseline.to_str().unwrap()]);
    let out = encore_detect(&gated);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));
    assert!(
        stderr(&out).contains("0 fresh"),
        "stderr:\n{}",
        stderr(&out)
    );

    // A different target fleet produces findings the baseline has not
    // accepted (fresh → exit 1) and no longer produces some accepted ones
    // (reported as stale on stderr).
    let mut drifted = FLEET.to_vec();
    drifted.extend([
        "--target-seed",
        "99",
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    let out = encore_detect(&drifted);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{}", stderr(&out));
    assert!(
        stderr(&out).contains("stale baseline entry"),
        "stderr:\n{}",
        stderr(&out)
    );

    // --baseline and --write-baseline together is a usage error.
    let mut both = FLEET.to_vec();
    both.extend([
        "--baseline",
        baseline.to_str().unwrap(),
        "--write-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(encore_detect(&both).status.code(), Some(2));
}

#[test]
fn quiet_mode_is_exit_code_only() {
    // The seeded fleet has warnings, so --quiet exits 1 with empty stdout.
    let mut quiet = FLEET.to_vec();
    quiet.push("--quiet");
    let out = encore_detect(&quiet);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "stdout:\n{}", stdout(&out));

    // Detection findings are at most warning severity, so an errors-only
    // filter admits nothing: exit 0.
    let mut filtered = quiet.clone();
    filtered.extend(["--severity", "error"]);
    let out = encore_detect(&filtered);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));

    // Without --quiet the same fleet still exits 0 (historical behavior).
    let out = encore_detect(&FLEET);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));
    assert!(stdout(&out).contains("== summary:"), "missing summary");
}

#[test]
fn severity_filter_narrows_the_sarif_log() {
    // Info-level findings (EW004 suspicious values) are present by default
    // and dropped by --severity warning.
    let all_path = tmp("sev-all.sarif");
    let mut all = FLEET.to_vec();
    all.extend(["--sarif", all_path.to_str().unwrap()]);
    let out = encore_detect(&all);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));
    let full = std::fs::read_to_string(&all_path).expect("SARIF written");

    let warn_path = tmp("sev-warn.sarif");
    let mut warn = FLEET.to_vec();
    warn.extend([
        "--severity",
        "warning",
        "--sarif",
        warn_path.to_str().unwrap(),
    ]);
    let out = encore_detect(&warn);
    assert!(out.status.success(), "stderr:\n{}", stderr(&out));
    let narrowed = std::fs::read_to_string(&warn_path).expect("SARIF written");

    assert!(full.contains("\"ruleId\":\"EW004\""), "log:\n{full}");
    assert!(
        !narrowed.contains("\"ruleId\":\"EW004\""),
        "log:\n{narrowed}"
    );
    assert!(narrowed.len() < full.len());
}

#[test]
fn findings_flags_are_rejected_in_watch_mode() {
    for flag in [
        vec!["--quiet"],
        vec!["--severity", "error"],
        vec!["--sarif", "x.sarif"],
        vec!["--baseline", "x.txt"],
        vec!["--write-baseline", "x.txt"],
    ] {
        let mut args = vec!["--watch", "some-dir", "--max-iterations", "1"];
        args.extend(flag.iter());
        let out = encore_detect(&args);
        assert_eq!(out.status.code(), Some(2), "flag {flag:?} not rejected");
    }
}
