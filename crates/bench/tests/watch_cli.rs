//! End-to-end tests for `encore-detect` watch mode and the one-shot
//! `--bench-json` perf record.

use encore::obs::PipelineReport;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn encore_detect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-detect"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("failed to spawn encore-detect")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// A unique, pre-cleaned temp directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-detect-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn bounded_watch_emits_one_parseable_report_per_cycle() {
    let dir = scratch_dir("watch");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(dir.join("b.cnf"), "[mysqld]\nport = 3307\n").unwrap();
    let trace = dir.join(".trace.jsonl");

    let out = encore_detect(&[
        "--train",
        "10",
        "--watch",
        dir.to_str().unwrap(),
        "--interval-ms",
        "25",
        "--max-iterations",
        "3",
        "--report",
        trace.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{text}");
    assert!(
        text.contains("watch cycle 1: 2 rechecked (2 added, 0 changed, 0 removed)"),
        "stdout:\n{text}"
    );
    assert!(
        text.contains("watch cycle 3: 0 rechecked"),
        "stdout:\n{text}"
    );
    assert!(text.contains("watch done: 3 cycle(s)"), "stdout:\n{text}");

    let jsonl = std::fs::read_to_string(&trace).expect("trace written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3, "exactly one JSONL line per cycle");
    let reports: Vec<PipelineReport> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            PipelineReport::parse_json(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1))
        })
        .collect();
    assert_eq!(reports[0].counters()["detect.watch.targets_added"], 2);
    assert_eq!(reports[0].counters()["detect.watch.targets_rechecked"], 2);
    for report in &reports[1..] {
        assert_eq!(report.counters()["detect.watch.targets_rechecked"], 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unbounded_watch_stops_on_stdin_close() {
    let dir = scratch_dir("watch-eof");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    // Stdin is closed from the start, so the EOF watcher fires during the
    // first interval sleep; the run must terminate on its own.
    let out = encore_detect(&[
        "--train",
        "8",
        "--watch",
        dir.to_str().unwrap(),
        "--interval-ms",
        "25",
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{text}");
    assert!(text.contains("watch done:"), "stdout:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_json_writes_a_parseable_perf_record() {
    let path = std::env::temp_dir().join("encore-detect-test-bench.json");
    let out = encore_detect(&[
        "--train",
        "10",
        "--targets",
        "4",
        "--bench-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
    let record =
        PipelineReport::parse_json(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
    assert_eq!(record.phases.len(), 1);
    assert_eq!(record.phases[0].name, "bench");
    let counters = record.counters();
    // Image collection covers both the training fleet and the targets.
    assert_eq!(counters["bench.images.collected"], 14);
    assert_eq!(counters["bench.targets.checked"], 4);
    let gauges: std::collections::BTreeMap<_, _> = record.phases[0]
        .gauges
        .iter()
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    assert!(gauges.contains_key("bench.profile.release"));
    assert!(gauges.contains_key("bench.throughput.pairs_per_sec"));
}

#[test]
fn watch_and_bench_json_are_mutually_exclusive() {
    let dir = scratch_dir("watch-usage");
    let out = encore_detect(&[
        "--watch",
        dir.to_str().unwrap(),
        "--bench-json",
        "/tmp/never-written.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
