//! End-to-end tests for `encore-detect` watch mode, the one-shot
//! `--bench-json` perf record, and the live telemetry surface
//! (`--metrics-addr` scrapes, `--trace-out` Chrome traces).

use encore::obs::PipelineReport;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn encore_detect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_encore-detect"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("failed to spawn encore-detect")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// A unique, pre-cleaned temp directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-detect-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn bounded_watch_emits_one_parseable_report_per_cycle() {
    let dir = scratch_dir("watch");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(dir.join("b.cnf"), "[mysqld]\nport = 3307\n").unwrap();
    let trace = dir.join(".trace.jsonl");

    let out = encore_detect(&[
        "--train",
        "10",
        "--watch",
        dir.to_str().unwrap(),
        "--interval-ms",
        "25",
        "--max-iterations",
        "3",
        "--report",
        trace.to_str().unwrap(),
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{text}");
    assert!(
        text.contains("watch cycle 1: 2 rechecked (2 added, 0 changed, 0 removed)"),
        "stdout:\n{text}"
    );
    assert!(
        text.contains("watch cycle 3: 0 rechecked"),
        "stdout:\n{text}"
    );
    assert!(text.contains("watch done: 3 cycle(s)"), "stdout:\n{text}");

    let jsonl = std::fs::read_to_string(&trace).expect("trace written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3, "exactly one JSONL line per cycle");
    let reports: Vec<PipelineReport> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            PipelineReport::parse_json(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1))
        })
        .collect();
    assert_eq!(reports[0].counters()["detect.watch.targets_added"], 2);
    assert_eq!(reports[0].counters()["detect.watch.targets_rechecked"], 2);
    for report in &reports[1..] {
        assert_eq!(report.counters()["detect.watch.targets_rechecked"], 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unbounded_watch_stops_on_stdin_close() {
    let dir = scratch_dir("watch-eof");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    // Stdin is closed from the start, so the EOF watcher fires during the
    // first interval sleep; the run must terminate on its own.
    let out = encore_detect(&[
        "--train",
        "8",
        "--watch",
        dir.to_str().unwrap(),
        "--interval-ms",
        "25",
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{text}");
    assert!(text.contains("watch done:"), "stdout:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stdin_eof_interrupts_the_interval_sleep_promptly() {
    let dir = scratch_dir("watch-latency");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    // A deliberately huge interval: the old loop slept it out with a
    // plain thread::sleep, so shutdown latency equaled the interval.
    // The condvar-backed stop flag must interrupt the wait immediately.
    let mut child = Command::new(env!("CARGO_BIN_EXE_encore-detect"))
        .args([
            "--train",
            "8",
            "--watch",
            dir.to_str().unwrap(),
            "--interval-ms",
            "600000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn encore-detect");

    // Wait for the first cycle so the watcher is provably inside the
    // 600 s inter-cycle wait when stdin closes.
    let mut stdout_reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    loop {
        let mut line = String::new();
        assert_ne!(
            stdout_reader.read_line(&mut line).expect("read stdout"),
            0,
            "stdout closed before the first cycle"
        );
        if line.contains("watch cycle 1:") {
            break;
        }
    }
    let started = std::time::Instant::now();
    drop(child.stdin.take());
    let status = child.wait().expect("wait for encore-detect");
    assert_eq!(status.code(), Some(0));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "stdin EOF must interrupt the 600s wait, took {:?}",
        started.elapsed()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_json_writes_a_parseable_perf_record() {
    let path = std::env::temp_dir().join("encore-detect-test-bench.json");
    let out = encore_detect(&[
        "--train",
        "10",
        "--targets",
        "4",
        "--bench-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
    let record =
        PipelineReport::parse_json(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
    assert_eq!(record.phases.len(), 1);
    assert_eq!(record.phases[0].name, "bench");
    let counters = record.counters();
    // Image collection covers both the training fleet and the targets.
    assert_eq!(counters["bench.images.collected"], 14);
    assert_eq!(counters["bench.targets.checked"], 4);
    let gauges: std::collections::BTreeMap<_, _> = record.phases[0]
        .gauges
        .iter()
        .map(|(name, value)| (name.as_str(), *value))
        .collect();
    assert!(gauges.contains_key("bench.profile.release"));
    assert!(gauges.contains_key("bench.throughput.pairs_per_sec"));
}

/// One raw HTTP/1.0 GET against the daemon's metrics server: returns
/// (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The value of an unlabelled exposition sample in a scrape body.
fn sample_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(|v| v.parse().expect("sample value parses"))
    })
}

#[test]
fn metrics_endpoint_serves_live_monotone_scrapes_during_watch() {
    let dir = scratch_dir("watch-metrics");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_encore-detect"))
        .args([
            "--train",
            "8",
            "--watch",
            dir.to_str().unwrap(),
            "--interval-ms",
            "300",
            "--max-iterations",
            "20",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::piped()) // held open: EOF stop stays quiet until we drop it
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn encore-detect");

    // Port 0 picks a free port; the daemon announces the resolved address
    // on stderr before the first cycle.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("read stderr"),
            0,
            "stderr closed before the listening line"
        );
        if let Some(rest) = line.trim_end().split_once("metrics listening on ") {
            break rest.1.to_string();
        }
    };

    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Wait for the first completed cycle, then the daemon must be ready
    // and the scrape must carry cumulative cycle counters.
    let first = loop {
        let (_, body) = http_get(&addr, "/metrics");
        match sample_value(&body, "encore_watch_cycles_total") {
            Some(cycles) if cycles >= 1.0 => break body,
            _ => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    let (status, _) = http_get(&addr, "/readyz");
    assert!(status.contains("200"), "ready after a cycle: {status}");
    assert!(first.starts_with("# HELP"), "exposition starts with HELP");
    assert!(sample_value(&first, "encore_watch_targets_checked_total").is_some());
    assert!(
        first.contains("# TYPE encore_watch_cycle_duration_ms histogram"),
        "daemon histogram exposed"
    );

    // A later scrape of the running daemon only ever counts up.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let (_, second) = http_get(&addr, "/metrics");
    let before = sample_value(&first, "encore_watch_cycles_total").unwrap();
    let after = sample_value(&second, "encore_watch_cycles_total").unwrap();
    assert!(after >= before, "cycles went {before} -> {after}");
    assert!(after > 0.0);

    // Closing stdin is the shutdown signal; the run ends cleanly.
    drop(child.stdin.take());
    let status = child.wait().expect("wait for encore-detect");
    assert_eq!(status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Run the bounded three-cycle watch and return the JSONL reports, with
/// or without a metrics endpoint attached.
fn bounded_watch_reports(tag: &str, metrics: bool) -> Vec<PipelineReport> {
    let dir = scratch_dir(tag);
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(dir.join("b.cnf"), "[mysqld]\nport = 3307\n").unwrap();
    let trace = dir.join(".trace.jsonl");
    let mut args = vec![
        "--train",
        "10",
        "--watch",
        dir.to_str().unwrap(),
        "--interval-ms",
        "25",
        "--max-iterations",
        "3",
        "--workers",
        "1",
        "--report",
    ];
    let trace_str = trace.to_str().unwrap().to_string();
    args.push(&trace_str);
    if metrics {
        args.extend(["--metrics-addr", "127.0.0.1:0"]);
    }
    let out = encore_detect(&args);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
    let jsonl = std::fs::read_to_string(&trace).expect("trace written");
    let reports = jsonl
        .lines()
        .map(|line| PipelineReport::parse_json(line).expect("line parses"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

#[test]
fn attaching_a_metrics_endpoint_never_changes_the_jsonl_reports() {
    let plain = bounded_watch_reports("watch-jsonl-plain", false);
    let with_metrics = bounded_watch_reports("watch-jsonl-metrics", true);
    assert_eq!(plain.len(), 3);
    assert_eq!(with_metrics.len(), 3);
    for (cycle, (p, m)) in plain.iter().zip(&with_metrics).enumerate() {
        // Counters and histograms are deterministic per cycle; timers and
        // pool gauges are wall-clock/scheduling noise even between two
        // plain runs, so section equality is the meaningful invariant.
        assert_eq!(
            p.counters(),
            m.counters(),
            "cycle {}: --metrics-addr changed the counter section",
            cycle + 1
        );
        assert_eq!(
            p.histograms(),
            m.histograms(),
            "cycle {}: --metrics-addr changed the histogram section",
            cycle + 1
        );
    }
}

#[test]
fn trace_out_writes_a_loadable_chrome_trace() {
    let path = std::env::temp_dir().join("encore-detect-test-trace.json");
    let _ = std::fs::remove_file(&path);
    let out = encore_detect(&[
        "--train",
        "10",
        "--targets",
        "4",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", stdout(&out));
    let text = std::fs::read_to_string(&path).expect("trace written");
    let parsed = encore::obs::json::parse(&text).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(encore::obs::json::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(encore::obs::json::Json::as_str))
        .collect();
    for phase in ["collect", "assemble", "infer", "stats", "filter", "detect"] {
        assert!(
            names.contains(&format!("phase:{phase}").as_str()),
            "missing phase lane for {phase} in {names:?}"
        );
    }
    for event in events {
        assert_eq!(
            event.get("ph").and_then(encore::obs::json::Json::as_str),
            Some("X")
        );
        assert!(event.get("ts").is_some() && event.get("dur").is_some());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_addr_without_watch_is_a_usage_error() {
    let out = encore_detect(&["--train", "8", "--metrics-addr", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn watch_and_bench_json_are_mutually_exclusive() {
    let dir = scratch_dir("watch-usage");
    let out = encore_detect(&[
        "--watch",
        dir.to_str().unwrap(),
        "--bench-json",
        "/tmp/never-written.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
