//! Criterion bench: anomaly detection throughput (checks per target image),
//! comparing EnCore with the two baselines of Table 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore::baseline::{Baseline, BaselineEnv};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

fn bench_detect(c: &mut Criterion) {
    let app = AppKind::Mysql;
    let pop = Population::training(app, &PopulationOptions::new(40, 1));
    let training = TrainingSet::assemble(app, pop.images()).expect("assembles");
    let engine = EnCore::learn(&training, &LearnOptions::default());
    let baseline = Baseline::train(app, pop.images()).expect("baseline");
    let baseline_env = BaselineEnv::train(app, pop.images()).expect("baseline+env");
    let target = Population::training(app, &PopulationOptions::new(1, 77)).images()[0].clone();

    let mut group = c.benchmark_group("detect");
    group.bench_function("encore", |b| {
        b.iter(|| engine.check_image(app, &target).expect("check"))
    });
    group.bench_function("baseline", |b| {
        b.iter(|| baseline.check_image(app, &target).expect("check"))
    });
    group.bench_function("baseline-env", |b| {
        b.iter(|| baseline_env.check_image(app, &target).expect("check"))
    });
    group.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let app = AppKind::Mysql;
    let pop = Population::training(app, &PopulationOptions::new(40, 1));
    let training = TrainingSet::assemble(app, pop.images()).expect("assembles");
    let engine = EnCore::learn(&training, &LearnOptions::default());
    let fleet = Population::training(
        app,
        &PopulationOptions::new(32, 77).with_misconfig_percent(21),
    );

    let mut group = c.benchmark_group("fleet");
    for workers in [1usize, 2, 4] {
        group.bench_function(
            BenchmarkId::new("check_fleet", format!("{workers}w")),
            |b| {
                let options = FleetOptions::with_workers(workers);
                b.iter(|| engine.check_fleet(app, fleet.images(), &options))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detect, bench_fleet);
criterion_main!(benches);
