//! Criterion bench: data assembly (parse + type inference + augmentation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore_assemble::Assembler;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

fn bench_assemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble");
    group.sample_size(20);
    for app in AppKind::EVALUATED {
        let pop = Population::training(app, &PopulationOptions::new(20, 1));
        let assembler = Assembler::new();
        group.bench_with_input(BenchmarkId::new("augmented", app.name()), &pop, |b, pop| {
            b.iter(|| assembler.assemble_training_set(app, pop.images()))
        });
        let plain = Assembler::new().without_augmentation();
        group.bench_with_input(
            BenchmarkId::new("original-only", app.name()),
            &pop,
            |b, pop| b.iter(|| plain.assemble_training_set(app, pop.images())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assemble);
criterion_main!(benches);
