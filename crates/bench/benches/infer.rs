//! Criterion bench: template-guided rule inference versus training-set size
//! — EnCore's answer to the Table 3 blow-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore::infer::RuleInference;
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

fn bench_infer(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer");
    group.sample_size(10);
    for n in [15usize, 30, 60] {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(n, 1));
        let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("assembles");
        group.bench_with_input(
            BenchmarkId::new("predefined-templates", n),
            &training,
            |b, ts| {
                b.iter(|| {
                    let engine = RuleInference::predefined();
                    engine.infer(ts, &FilterThresholds::default())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_infer);
criterion_main!(benches);
