//! Criterion bench: template-guided rule inference versus training-set size
//! — EnCore's answer to the Table 3 blow-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore::infer::{InferOptions, RuleInference};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::{AppKind, SemType};

fn bench_infer(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer");
    group.sample_size(10);
    for n in [15usize, 30, 60] {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(n, 1));
        let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("assembles");
        group.bench_with_input(
            BenchmarkId::new("predefined-templates", n),
            &training,
            |b, ts| {
                b.iter(|| {
                    let engine = RuleInference::predefined();
                    engine.infer(ts, &FilterThresholds::default())
                })
            },
        );
    }
    group.finish();
}

/// Work-stealing scalability: wall time of one inference pass over a MySQL
/// fleet at 1/2/4/8 workers.  Before timing anything, every worker count's
/// output is checked byte-identical against the sequential reference —
/// parallelism must never change the learned rules.
fn bench_infer_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer_scaling");
    group.sample_size(10);
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();
    for n in [40usize, 80, 160] {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(n, 1));
        let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("assembles");
        let (reference, _) = engine
            .try_infer_with(&training, &thresholds, &InferOptions::with_workers(1))
            .expect("sequential reference");
        for workers in [1usize, 2, 4, 8] {
            let (rules, _) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                .expect("parallel inference");
            assert_eq!(
                rules.render(),
                reference.render(),
                "workers={workers} must reproduce the sequential rule set at n={n}"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("workers-{workers}"), n),
                &training,
                |b, ts| {
                    let options = InferOptions::with_workers(workers);
                    b.iter(|| engine.try_infer_with(ts, &thresholds, &options).unwrap())
                },
            );
        }
    }
    group.finish();
}

/// Dead-unit pruning: inference with the presence-mask liveness filter on
/// versus off, over a template list padded with templates that are dead on
/// a MySQL corpus (no Url/IP-pair candidates).  The outputs are checked
/// byte-identical first — pruning must be invisible in the rules.
fn bench_infer_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer_pruning");
    group.sample_size(10);
    let mut templates = Template::predefined();
    templates.push(Template::new(SemType::Url, Relation::Equal, SemType::Url));
    templates.push(Template::new(
        SemType::IpAddress,
        Relation::SubnetOf,
        SemType::IpAddress,
    ));
    let engine = RuleInference::new(templates);
    let thresholds = FilterThresholds::default();
    for n in [30usize, 60] {
        let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(n, 1));
        let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("assembles");
        let pruned_options = InferOptions::with_workers(4);
        let unpruned_options = InferOptions::with_workers(4).without_pruning();
        let (pruned, _) = engine
            .try_infer_with(&training, &thresholds, &pruned_options)
            .expect("pruned inference");
        let (unpruned, _) = engine
            .try_infer_with(&training, &thresholds, &unpruned_options)
            .expect("unpruned inference");
        assert_eq!(
            pruned.render(),
            unpruned.render(),
            "pruning must not change the learned rules at n={n}"
        );
        for (label, options) in [("pruned", &pruned_options), ("unpruned", &unpruned_options)] {
            group.bench_with_input(BenchmarkId::new(label, n), &training, |b, ts| {
                b.iter(|| engine.try_infer_with(ts, &thresholds, options).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_infer,
    bench_infer_scaling,
    bench_infer_pruning
);
criterion_main!(benches);
