//! Criterion bench: the Table 3 scalability study in bench form — FP-Growth
//! and Apriori cost versus attribute count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use encore_assemble::Assembler;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_mining::{discretize, Apriori, FpGrowth, MiningLimits, Transactions};
use encore_model::AppKind;

/// Restrict transactions to items of the first `k` attributes.
fn truncate(tx: &Transactions, k: usize) -> Transactions {
    let mut attrs: Vec<String> = Vec::new();
    for row in tx.rows() {
        for &item in row {
            let name = tx.name(item);
            let attr = name.split('=').next().unwrap_or(name).to_string();
            if !attrs.contains(&attr) {
                attrs.push(attr);
            }
        }
    }
    attrs.sort();
    attrs.truncate(k);
    let keep: std::collections::HashSet<&String> = attrs.iter().collect();
    let mut out = Transactions::new();
    for row in tx.rows() {
        let items: Vec<&str> = row
            .iter()
            .map(|&i| tx.name(i))
            .filter(|n| keep.contains(&n.split('=').next().unwrap_or(n).to_string()))
            .collect();
        out.push(items);
    }
    out
}

fn bench_mining(c: &mut Criterion) {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(40, 1));
    let ds = Assembler::new().assemble_training_set(AppKind::Mysql, pop.images());
    let tx = discretize(&ds);
    let min_support = (ds.num_rows() / 5).max(2);
    let limits = MiningLimits::capped(50_000);

    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for k in [20usize, 40, 60] {
        let truncated = truncate(&tx, k);
        group.bench_with_input(BenchmarkId::new("fpgrowth", k), &truncated, |b, tx| {
            b.iter(|| {
                let _ = FpGrowth::new(min_support).mine(tx, &limits);
            })
        });
        group.bench_with_input(BenchmarkId::new("apriori", k), &truncated, |b, tx| {
            b.iter(|| {
                let _ = Apriori::new(min_support).mine(tx, &limits);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
