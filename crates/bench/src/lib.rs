//! Experiment harness: regenerates every table of the paper's evaluation.
//!
//! Each `table_*` function reproduces one table of the paper on the
//! synthetic corpus, returning a [`TableOutput`] with the formatted rows
//! and the raw numbers (so integration tests can assert on *shape* — who
//! wins, by what factor — without string scraping).
//!
//! Run everything via the `tables` binary:
//!
//! ```text
//! cargo run --release -p encore-bench --bin tables            # all tables
//! cargo run --release -p encore-bench --bin tables -- 8       # Table 8 only
//! cargo run --release -p encore-bench --bin tables -- 8 --scale 0.3
//! ```
//!
//! `--scale` shrinks training-set sizes proportionally (useful in CI; the
//! defaults match the paper's corpus sizes: 127 Apache / 187 MySQL /
//! 123 PHP training images, 120 fresh EC2 images, 300 private-cloud
//! images).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;

pub use experiments::{ExperimentConfig, TableOutput};
pub use perf::bench_record;
