//! One function per paper table.

use encore::baseline::{Baseline, BaselineEnv};
use encore::infer::{InferOptions, RuleInference};
use encore::prelude::*;
use encore_assemble::Assembler;
use encore_corpus::genimage::{MisconfigCategory, Population, PopulationOptions};
use encore_corpus::realworld;
use encore_corpus::schema::AppSchema;
use encore_corpus::study;
use encore_injector::Injector;
use encore_mining::{discretize, FpGrowth, MiningLimits, Transactions};
use encore_model::{AppKind, SemType};
use encore_parser::LensRegistry;
use encore_sysimage::SystemImage;
use std::fmt::Write as _;
use std::time::Instant;

/// Sizing knobs for the experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Apache training images (paper: 127).
    pub apache_training: usize,
    /// MySQL training images (paper: 187).
    pub mysql_training: usize,
    /// PHP training images (paper: 123).
    pub php_training: usize,
    /// Fresh EC2 evaluation images (paper: 120).
    pub ec2_fresh: usize,
    /// Private-cloud evaluation images (paper: 300).
    pub private_cloud: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            apache_training: 127,
            mysql_training: 187,
            php_training: 123,
            ec2_fresh: 120,
            private_cloud: 300,
            seed: 20140301, // ASPLOS'14 opening day
        }
    }
}

impl ExperimentConfig {
    /// Proportionally shrink every population (minimum 10 images each).
    pub fn scaled(scale: f64) -> ExperimentConfig {
        let d = ExperimentConfig::default();
        let s = |n: usize| ((n as f64 * scale).round() as usize).max(10);
        ExperimentConfig {
            apache_training: s(d.apache_training),
            mysql_training: s(d.mysql_training),
            php_training: s(d.php_training),
            ec2_fresh: s(d.ec2_fresh),
            private_cloud: s(d.private_cloud),
            seed: d.seed,
        }
    }

    fn training_size(&self, app: AppKind) -> usize {
        match app {
            AppKind::Apache => self.apache_training,
            AppKind::Mysql => self.mysql_training,
            AppKind::Php => self.php_training,
            AppKind::Sshd => self.apache_training,
        }
    }
}

/// A regenerated table: human-readable text plus raw numbers keyed by row.
#[derive(Debug, Clone, Default)]
pub struct TableOutput {
    /// Table caption.
    pub title: String,
    /// Formatted rows.
    pub text: String,
    /// Raw numbers for shape assertions: (row key, values).
    pub raw: Vec<(String, Vec<f64>)>,
}

impl TableOutput {
    fn new(title: &str) -> TableOutput {
        TableOutput {
            title: title.to_string(),
            ..TableOutput::default()
        }
    }

    fn row(&mut self, key: &str, line: String, values: Vec<f64>) {
        let _ = writeln!(self.text, "{line}");
        self.raw.push((key.to_string(), values));
    }

    /// Look up raw values for a row key.
    pub fn values(&self, key: &str) -> Option<&[f64]> {
        self.raw
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }
}

fn training_population(app: AppKind, config: &ExperimentConfig) -> Population {
    Population::training(
        app,
        &PopulationOptions::new(config.training_size(app), config.seed ^ app as u64),
    )
}

/// Table 1 — configuration-parameter study.
pub fn table_1(_config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 1: entries associated with environment and correlations");
    out.row(
        "header",
        format!(
            "{:<8} {:>6} {:>16} {:>16}",
            "Apps", "Total", "Env-Related", "Correlated"
        ),
        vec![],
    );
    for row in study::table_1() {
        out.row(
            row.app.name(),
            format!(
                "{:<8} {:>6} {:>10} ({:>2.0}%) {:>10} ({:>2.0}%)",
                row.app.name(),
                row.total,
                row.env_related,
                row.env_percent(),
                row.correlated,
                row.corr_percent()
            ),
            vec![
                row.total as f64,
                row.env_related as f64,
                row.correlated as f64,
            ],
        );
    }
    out
}

/// Table 2 — attribute counts: original, augmented, binomial.
pub fn table_2(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 2: number of attributes used by mining methods");
    let mut originals = Vec::new();
    let mut augmenteds = Vec::new();
    let mut binomials = Vec::new();
    for app in AppKind::EVALUATED {
        let pop = training_population(app, config);
        let plain = Assembler::new()
            .without_augmentation()
            .assemble_training_set(app, pop.images());
        let augmented = Assembler::new().assemble_training_set(app, pop.images());
        let binomial = discretize(&augmented);
        originals.push(plain.num_attributes());
        augmenteds.push(augmented.num_attributes());
        binomials.push(binomial.num_items());
    }
    out.row(
        "header",
        format!("{:<12} {:>8} {:>8} {:>8}", "", "Apache", "MySQL", "PHP"),
        vec![],
    );
    for (name, vals) in [
        ("Original", &originals),
        ("Augmented", &augmenteds),
        ("Binominal", &binomials),
    ] {
        out.row(
            name,
            format!("{:<12} {:>8} {:>8} {:>8}", name, vals[0], vals[1], vals[2]),
            vals.iter().map(|&v| v as f64).collect(),
        );
    }
    out
}

/// Restrict a transaction database to items derived from the first `k`
/// attributes (alphabetically), mirroring the paper's "number of entries"
/// sweep.
fn truncate_attributes(tx: &Transactions, k: usize) -> Transactions {
    // Items are "attr=value" strings; keep those whose attr is among the
    // first k distinct attribute names.
    let mut attrs: Vec<String> = Vec::new();
    for row in tx.rows() {
        for &item in row {
            let name = tx.name(item);
            let attr = name.split('=').next().unwrap_or(name).to_string();
            if !attrs.contains(&attr) {
                attrs.push(attr);
            }
        }
    }
    attrs.sort();
    attrs.truncate(k);
    let keep: std::collections::HashSet<&String> = attrs.iter().collect();
    let mut out = Transactions::new();
    for row in tx.rows() {
        let items: Vec<&str> = row
            .iter()
            .map(|&i| tx.name(i))
            .filter(|n| {
                let attr = n.split('=').next().unwrap_or(n).to_string();
                keep.contains(&attr)
            })
            .collect();
        out.push(items);
    }
    out
}

/// Table 3 — FP-Growth cost versus attribute count.
pub fn table_3(config: &ExperimentConfig) -> TableOutput {
    let mut out =
        TableOutput::new("Table 3: FP-Growth time (s) and frequent-item-set size vs #attributes");
    out.row(
        "header",
        format!(
            "{:<10} {}",
            "entries",
            AppKind::EVALUATED
                .map(|a| format!(
                    "{:>10} {:>12} {:>10}",
                    format!("{a}-attrs"),
                    "time(s)",
                    "freq"
                ))
                .join(" ")
        ),
        vec![],
    );
    // Assemble + discretize each app once.
    let prepared: Vec<(Transactions, usize)> = AppKind::EVALUATED
        .iter()
        .map(|&app| {
            let pop = training_population(app, config);
            let ds = Assembler::new().assemble_training_set(app, pop.images());
            let n = ds.num_rows();
            (discretize(&ds), n)
        })
        .collect();
    // The guard standing in for the paper's 16 GB testbed.  Every frequent
    // item set costs tens of bytes of bookkeeping plus the conditional
    // pattern bases live during recursion; a few million materialized sets
    // is where a 16 GB machine starts thrashing.
    let limits = MiningLimits::capped(4_000_000);
    for &k in &[30usize, 60, 100, 150] {
        let mut line = format!(
            "{:<10}",
            if k == 150 {
                "150+".to_string()
            } else {
                k.to_string()
            }
        );
        let mut vals = Vec::new();
        for (tx, n_rows) in &prepared {
            let truncated = truncate_attributes(tx, k);
            let min_support = (*n_rows / 10).max(2);
            let started = Instant::now();
            let result = FpGrowth::new(min_support).mine(&truncated, &limits);
            let elapsed = started.elapsed().as_secs_f64();
            match result {
                Ok(r) => {
                    let _ = write!(
                        line,
                        " {:>10} {:>12.2} {:>10}",
                        truncated.num_items(),
                        elapsed,
                        r.len()
                    );
                    vals.extend([truncated.num_items() as f64, elapsed, r.len() as f64]);
                }
                Err(oom) => {
                    let _ = write!(
                        line,
                        " {:>10} {:>12} {:>10}",
                        truncated.num_items(),
                        "OOM",
                        format!(">{}", oom.itemsets_produced)
                    );
                    vals.extend([
                        truncated.num_items() as f64,
                        f64::INFINITY,
                        oom.itemsets_produced as f64,
                    ]);
                }
            }
        }
        out.row(&format!("k{k}"), line, vals);
    }
    out
}

/// Replace an image's config file with injected text.
fn reinject_config(image: &SystemImage, app: AppKind, text: &str) -> SystemImage {
    let mut vfs = image.vfs().clone();
    vfs.add_file(app.config_path(), "root", "root", 0o644, text);
    image.clone().with_vfs(vfs)
}

/// How many of the 15 injections a report detects.
///
/// A warning counts as a detection when its ranking score clears a
/// significance floor: suspicious values over entries with more than four
/// distinct training values score below it, encoding the PeerPressure
/// ranking semantics where a deviation among widely-varying values "cannot
/// meaningfully be considered an anomaly" [41].  Name/type/correlation
/// violations always clear the floor.
fn count_detected(report: &Report, injections: &[encore_injector::Injection]) -> usize {
    const SCORE_FLOOR: f64 = 10.0;
    injections
        .iter()
        .filter(|inj| {
            report.warnings().iter().any(|w| {
                w.score() >= SCORE_FLOOR
                    && (w.implicates(&inj.entry) || w.implicates(&inj.entry_after))
            })
        })
        .count()
}

/// Table 8 — injected-misconfiguration detection across the three
/// detectors.
pub fn table_8(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 8: injected misconfigurations detected (of 15)");
    out.row(
        "header",
        format!(
            "{:<8} {:>6} {:>9} {:>13} {:>8}",
            "App", "Total", "Baseline", "Baseline+Env", "EnCore"
        ),
        vec![],
    );
    let registry = LensRegistry::with_defaults();
    for app in AppKind::EVALUATED {
        let pop = training_population(app, config);
        // Held-out target image: generated from a disjoint seed.
        let target = Population::training(
            app,
            &PopulationOptions::new(1, config.seed ^ 0xfeed ^ app as u64),
        )
        .images()[0]
            .clone();
        let clean_config = target
            .read_file(app.config_path())
            .expect("config")
            .to_string();
        let lens = registry.lens(app.name()).expect("lens");
        let mut injector = Injector::with_seed(config.seed ^ 0x1417 ^ app as u64);
        let (broken_text, injections) = injector
            .inject(lens.as_ref(), &clean_config, 15)
            .expect("injection");
        let broken = reinject_config(&target, app, &broken_text);

        let baseline = Baseline::train(app, pop.images()).expect("baseline training");
        let baseline_env = BaselineEnv::train(app, pop.images()).expect("baseline+env training");
        let training = TrainingSet::assemble(app, pop.images()).expect("training");
        let engine = EnCore::learn(&training, &LearnOptions::default());

        let d_base = count_detected(
            &baseline.check_image(app, &broken).expect("baseline check"),
            &injections,
        );
        let d_env = count_detected(
            &baseline_env.check_image(app, &broken).expect("env check"),
            &injections,
        );
        let d_encore = count_detected(
            &engine.check_image(app, &broken).expect("encore check"),
            &injections,
        );
        out.row(
            app.name(),
            format!(
                "{:<8} {:>6} {:>9} {:>13} {:>8}",
                app.name(),
                injections.len(),
                d_base,
                d_env,
                d_encore
            ),
            vec![
                injections.len() as f64,
                d_base as f64,
                d_env as f64,
                d_encore as f64,
            ],
        );
    }
    out
}

/// Table 9 — real-world misconfiguration detection.
pub fn table_9(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 9: detection of real-world misconfigurations");
    out.row(
        "header",
        format!(
            "{:<4} {:<8} {:<12} {:>12} {:<40}",
            "ID", "App", "Info", "Rank", "Description"
        ),
        vec![],
    );
    // Train one engine per app, reused across cases.
    let mut engines: Vec<(AppKind, EnCore)> = Vec::new();
    for app in AppKind::EVALUATED {
        let pop = training_population(app, config);
        let training = TrainingSet::assemble(app, pop.images()).expect("training");
        engines.push((app, EnCore::learn(&training, &LearnOptions::default())));
    }
    for case in realworld::all_cases(config.seed) {
        let engine = &engines
            .iter()
            .find(|(a, _)| *a == case.app)
            .expect("engine for app")
            .1;
        let report = engine
            .check_image(case.app, &case.image)
            .expect("case check");
        let rank = report.rank_of(case.culprit);
        let rank_str = match rank {
            Some(r) => format!("{r}({})", report.len()),
            None => "-".to_string(),
        };
        out.row(
            &format!("case{}", case.id),
            format!(
                "{:<4} {:<8} {:<12} {:>12} {:<40}",
                case.id,
                case.app.name(),
                case.info.to_string(),
                rank_str,
                &case.description[..case.description.len().min(60)]
            ),
            vec![
                rank.map(|r| r as f64).unwrap_or(-1.0),
                report.len() as f64,
                if case.paper_detects { 1.0 } else { 0.0 },
            ],
        );
    }
    out
}

/// Table 10 — new misconfigurations found in fresh EC2 and private-cloud
/// populations, by category.
pub fn table_10(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 10: categories of newly detected misconfigurations");
    out.row(
        "header",
        format!(
            "{:<14} {:>9} {:>11} {:>13} {:>6}",
            "Source", "FilePath", "Permission", "ValueCompare", "Total"
        ),
        vec![],
    );
    for (label, per_app) in [
        ("EC2", config.ec2_fresh / 3),
        ("PrivateCloud", config.private_cloud / 3),
    ] {
        let mut by_cat = [0usize; 3];
        for app in AppKind::EVALUATED {
            let train_pop = training_population(app, config);
            let training = TrainingSet::assemble(app, train_pop.images()).expect("training");
            let engine = EnCore::learn(&training, &LearnOptions::default());
            let eval_pop = match label {
                "EC2" => Population::ec2_fresh(app, per_app, config.seed ^ 0xe52 ^ app as u64),
                _ => Population::private_cloud(app, per_app, config.seed ^ 0x9c1 ^ app as u64),
            };
            for seeded in eval_pop.seeded() {
                let image = eval_pop
                    .images()
                    .iter()
                    .find(|i| i.id() == seeded.image_id)
                    .expect("seeded image");
                let report = match engine.check_image(app, image) {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                if report
                    .rank_of(&seeded.entry)
                    .map(|r| r <= 15)
                    .unwrap_or(false)
                {
                    let idx = match seeded.category {
                        MisconfigCategory::FilePath => 0,
                        MisconfigCategory::Permission => 1,
                        MisconfigCategory::ValueCompare => 2,
                    };
                    by_cat[idx] += 1;
                }
            }
        }
        let total: usize = by_cat.iter().sum();
        out.row(
            label,
            format!(
                "{:<14} {:>9} {:>11} {:>13} {:>6}",
                label, by_cat[0], by_cat[1], by_cat[2], total
            ),
            vec![
                by_cat[0] as f64,
                by_cat[1] as f64,
                by_cat[2] as f64,
                total as f64,
            ],
        );
    }
    out
}

/// Map occurrence-flattened attribute names to ground-truth types for
/// entries outside the schema (LoadModule arguments, section args).
fn flattened_ground_truth(name: &str) -> Option<SemType> {
    if name.ends_with("/section") {
        Some(SemType::FilePath)
    } else if name.contains("LoadModule") && name.ends_with("/arg2") {
        Some(SemType::PartialFilePath)
    } else if name.contains("LoadModule") && name.ends_with("/arg1") {
        Some(SemType::Str)
    } else {
        None
    }
}

/// Table 11 — type-inference accuracy against the schema ground truth.
pub fn table_11(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 11: data type detection results");
    out.row(
        "header",
        format!(
            "{:<8} {:>8} {:>11} {:>11} {:>11}",
            "App", "Entries", "NonTrivial", "FalseTypes", "Undetected"
        ),
        vec![],
    );
    for app in AppKind::EVALUATED {
        let schema = AppSchema::for_app(app);
        let pop = training_population(app, config);
        let training = TrainingSet::assemble(app, pop.images()).expect("training");
        let mut entries = 0usize;
        let mut nontrivial = 0usize;
        let mut false_types = 0usize;
        let mut undetected = 0usize;
        for (attr, &inferred) in training.types().iter() {
            let name = attr.base();
            let stripped = name.split('#').next().unwrap_or(name);
            let expected = schema
                .entry(stripped)
                .map(|e| e.ty)
                .or_else(|| flattened_ground_truth(name));
            let expected = match expected {
                Some(t) => t,
                None => continue, // generated pseudo-entries with no oracle
            };
            entries += 1;
            if !inferred.is_trivial() {
                nontrivial += 1;
            }
            if expected != inferred {
                if inferred.is_trivial() && !expected.is_trivial() {
                    undetected += 1;
                } else if !inferred.is_trivial() {
                    false_types += 1;
                }
            }
        }
        out.row(
            app.name(),
            format!(
                "{:<8} {:>8} {:>11} {:>11} {:>11}",
                app.name(),
                entries,
                nontrivial,
                false_types,
                undetected
            ),
            vec![
                entries as f64,
                nontrivial as f64,
                false_types as f64,
                undetected as f64,
            ],
        );
    }
    out
}

/// Whether a learned rule corresponds to a schema coupling (the "true
/// rule" oracle for Tables 12/13).
fn rule_is_true(app: AppKind, rule: &Rule) -> bool {
    use encore_corpus::schema::Coupling;
    let schema = AppSchema::for_app(app);
    let a_base = rule.a.base().split('#').next().unwrap_or(rule.a.base());
    let b_base = rule.b.base().split('#').next().unwrap_or(rule.b.base());

    // The ownership cluster: the user entry, its group mirror, the coupled
    // group entry, and the owner/group attributes of every path owned by
    // that user are pairwise equal/member by construction — rules within
    // the cluster are genuine fleet invariants, not noise.
    let mut clusters: Vec<Vec<String>> = Vec::new();
    for spec in schema.entries() {
        if let Some(Coupling::OwnedBy { user_entry }) = spec.coupling {
            let cluster = match clusters.iter_mut().find(|c| c[0] == user_entry) {
                Some(c) => c,
                None => {
                    clusters.push(vec![
                        user_entry.to_string(),
                        format!("{user_entry}.isGroup"),
                    ]);
                    // A group entry mirroring the user entry joins the
                    // cluster (Apache's `Group` equals `User`).
                    for other in schema.entries() {
                        if matches!(other.coupling, Some(Coupling::EqualsEntry { other: o }) if o == user_entry)
                        {
                            let last = clusters.len() - 1;
                            clusters[last].push(other.name.to_string());
                        }
                    }
                    clusters.last_mut().expect("just pushed")
                }
            };
            cluster.push(format!("{}.owner", spec.name));
            cluster.push(format!("{}.group", spec.name));
        }
    }
    let in_same_cluster = |x: &str, y: &str| {
        clusters
            .iter()
            .any(|c| c.iter().any(|m| m == x) && c.iter().any(|m| m == y))
    };
    let a_full = rule.a.to_string();
    let b_full = rule.b.to_string();
    if matches!(
        rule.relation,
        Relation::Equal | Relation::MemberEq | Relation::InGroup | Relation::Owns
    ) && in_same_cluster(&a_full, &b_full)
    {
        return true;
    }
    // Ownership of a coupled path by a cluster member.
    if rule.relation == Relation::Owns {
        if let Some(spec) = schema.entry(a_base) {
            if let Some(Coupling::OwnedBy { user_entry }) = spec.coupling {
                if in_same_cluster(user_entry, &b_full) || b_base == user_entry {
                    return true;
                }
            }
        }
    }
    // "Root-owned path is not accessible by the service user" is a genuine
    // fleet invariant for every generated, non-owned path object — exactly
    // the class of rule behind the paper's MySQL log-security case.
    if rule.relation == Relation::NotAccessible {
        if let Some(spec) = schema.entry(a_base) {
            use encore_corpus::schema::ValueDist;
            let is_generated_path = matches!(
                spec.dist,
                ValueDist::PathPool { .. } | ValueDist::FilePool { .. }
            );
            if is_generated_path && !matches!(spec.coupling, Some(Coupling::OwnedBy { .. })) {
                return true;
            }
        }
    }
    // DocumentRoot ↔ <Directory> correlation (not a schema coupling — the
    // generator emits the companion section directly).
    if app == AppKind::Apache && a_base == "DocumentRoot" && rule.b.base().ends_with("/section") {
        return true;
    }
    // ServerRoot + LoadModule/arg2 concatenation.
    if app == AppKind::Apache
        && rule.relation == Relation::ConcatPath
        && a_base == "ServerRoot"
        && rule.b.base().contains("LoadModule")
    {
        return true;
    }
    for spec in schema.entries() {
        let matches_pair = |x: &str, y: &str| {
            spec.name == x && {
                match spec.coupling {
                    Some(Coupling::OwnedBy { user_entry }) => {
                        rule.relation == Relation::Owns && y == user_entry
                    }
                    Some(Coupling::LessThan { other, .. }) => {
                        matches!(rule.relation, Relation::LessNum | Relation::LessSize)
                            && y == other
                    }
                    Some(Coupling::ConcatOnto { base_entry }) => {
                        rule.relation == Relation::ConcatPath && y == base_entry
                    }
                    Some(Coupling::EqualsEntry { other }) => {
                        matches!(rule.relation, Relation::Equal | Relation::MemberEq) && y == other
                    }
                    Some(Coupling::GuardsSymlinks { path_entry }) => {
                        rule.relation == Relation::ExtBoolImplies
                            && (y.starts_with(path_entry) || x.starts_with(path_entry))
                    }
                    None => false,
                }
            }
        };
        // Slot order varies by relation; accept either binding, and accept
        // rules anchored on the entry's augmented attributes (e.g.
        // `datadir.owner == user` mirrors the ownership coupling).
        if matches_pair(a_base, b_base) || matches_pair(b_base, a_base) {
            return true;
        }
        if let Some(Coupling::OwnedBy { user_entry }) = spec.coupling {
            let owner_attr = format!("{}.owner", spec.name);
            let a_full = rule.a.to_string();
            let b_full = rule.b.to_string();
            if (a_full == owner_attr && b_base == user_entry)
                || (b_full == owner_attr && a_base == user_entry)
            {
                return true;
            }
        }
    }
    false
}

/// Table 12 — correlation rules inferred, with false-positive counts.
pub fn table_12(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 12: detected correlation rules with the filters");
    out.row(
        "header",
        format!(
            "{:<8} {:>14} {:>15}",
            "App", "DetectedRules", "FalsePositives"
        ),
        vec![],
    );
    for app in AppKind::EVALUATED {
        let pop = training_population(app, config);
        let training = TrainingSet::assemble(app, pop.images()).expect("training");
        let engine = EnCore::learn(&training, &LearnOptions::default());
        let rules = engine.rules();
        let fp = rules
            .rules()
            .iter()
            .filter(|r| !rule_is_true(app, r))
            .count();
        out.row(
            app.name(),
            format!("{:<8} {:>14} {:>15}", app.name(), rules.len(), fp),
            vec![rules.len() as f64, fp as f64],
        );
    }
    out
}

/// Table 13 — staged effect of the entropy filter.
pub fn table_13(config: &ExperimentConfig) -> TableOutput {
    let mut out = TableOutput::new("Table 13: effectiveness of the entropy filter");
    out.row(
        "header",
        format!(
            "{:<8} {:>9} {:>11} {:>14}",
            "App", "Original", "FP Reduced", "FN Introduced"
        ),
        vec![],
    );
    for app in AppKind::EVALUATED {
        let pop = training_population(app, config);
        let training = TrainingSet::assemble(app, pop.images()).expect("training");
        // Candidates don't depend on the filter thresholds, so one
        // instantiation pass judged under both filter settings replaces the
        // two full `EnCore::learn` runs this table used to cost.
        let dual = RuleInference::predefined()
            .try_infer_dual(
                &training,
                &FilterThresholds::default(),
                &InferOptions::default(),
            )
            .expect("inference");
        let (with, _) = &dual.entropy_on;
        let (without, _) = &dual.entropy_off;
        let kept: std::collections::HashSet<String> =
            with.rules().iter().map(Rule::render).collect();
        let mut fp_reduced = 0usize;
        let mut fn_introduced = 0usize;
        for rule in without.rules() {
            if kept.contains(&rule.render()) {
                continue;
            }
            if rule_is_true(app, rule) {
                fn_introduced += 1;
            } else {
                fp_reduced += 1;
            }
        }
        out.row(
            app.name(),
            format!(
                "{:<8} {:>9} {:>11} {:>14}",
                app.name(),
                without.len(),
                fp_reduced,
                fn_introduced
            ),
            vec![
                without.len() as f64,
                fp_reduced as f64,
                fn_introduced as f64,
            ],
        );
    }
    out
}

/// Run a table by number.
pub fn run_table(n: u32, config: &ExperimentConfig) -> Option<TableOutput> {
    Some(match n {
        1 => table_1(config),
        2 => table_2(config),
        3 => table_3(config),
        8 => table_8(config),
        9 => table_9(config),
        10 => table_10(config),
        11 => table_11(config),
        12 => table_12(config),
        13 => table_13(config),
        _ => return None,
    })
}

/// All table numbers with experiments.
pub const ALL_TABLES: [u32; 9] = [1, 2, 3, 8, 9, 10, 11, 12, 13];
