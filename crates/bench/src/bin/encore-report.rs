//! Compare and render pipeline reports.
//!
//! ```text
//! encore-report diff base.json current.json            # default policy
//! encore-report diff base.json current.json --policy p.txt --json
//! encore-report show watch.jsonl                       # render (JSONL ok)
//! ```
//!
//! `diff` structurally compares two reports ([`encore::obs::ReportDelta`])
//! and evaluates the delta against a [`encore::obs::DeltaPolicy`] (the
//! default gates counters and histograms exactly and treats gauges and
//! timers as informational; `--policy FILE` pins a different one, which is
//! how CI gates a regenerated perf record against the committed
//! `BENCH_6.json`).  Exit codes: 0 — no gated metric exceeded its
//! threshold (the delta itself may be nonempty); 1 — at least one gated
//! violation, each printed with the metric name and its gate; 2 — usage
//! or I/O errors.
//!
//! `show` renders report files as text; a file with several JSON lines
//! (the watch mode's JSONL trace) renders each line in order.

use encore::obs::{DeltaPolicy, PipelineReport, ReportDelta};

const USAGE: &str = "usage: encore-report diff BASE CURRENT [--policy FILE] [--json] [--out FILE]
       encore-report show FILE";

/// Print a diagnostic plus the usage line to stderr and exit 2.  All
/// argument-handling failures funnel through here so the binary has
/// exactly one error shape.
fn usage(problem: &str) -> ! {
    eprintln!("encore-report: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Read and parse one report file, dying with exit 2 on failure.
fn read_report(path: &str) -> PipelineReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read `{path}`: {e}")));
    PipelineReport::parse_json(text.trim())
        .unwrap_or_else(|e| usage(&format!("bad report `{path}`: {e}")))
}

fn cmd_diff(args: &[String]) -> i32 {
    let mut positional: Vec<&String> = Vec::new();
    let mut policy_path: Option<&String> = None;
    let mut out_path: Option<&String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => match it.next() {
                Some(path) => policy_path = Some(path),
                None => usage("--policy requires a file path"),
            },
            "--out" => match it.next() {
                Some(path) => out_path = Some(path),
                None => usage("--out requires a file path"),
            },
            "--json" => json = true,
            other if other.starts_with('-') => usage(&format!("unknown argument `{other}`")),
            _ => positional.push(arg),
        }
    }
    let [base_path, current_path] = positional[..] else {
        usage("diff takes exactly BASE and CURRENT report files");
    };
    let policy = match policy_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage(&format!("cannot read policy `{path}`: {e}")));
            DeltaPolicy::parse(&text)
                .unwrap_or_else(|e| usage(&format!("bad policy `{path}`: {e}")))
        }
        None => DeltaPolicy::default(),
    };

    let base = read_report(base_path);
    let current = read_report(current_path);
    let delta = ReportDelta::diff(&base, &current);
    let rendered = if json {
        let mut s = delta.render_json();
        s.push('\n');
        s
    } else {
        delta.render_text()
    };
    print!("{rendered}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            usage(&format!("cannot write `{path}`: {e}"));
        }
    }

    let violations = policy.violations(&delta);
    if violations.is_empty() {
        return 0;
    }
    for violation in &violations {
        eprintln!("encore-report: gated {violation}");
    }
    eprintln!(
        "encore-report: {} gated metric(s) exceed the delta policy",
        violations.len()
    );
    1
}

fn cmd_show(args: &[String]) -> i32 {
    let [path] = args else {
        usage("show takes exactly one report file");
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read `{path}`: {e}")));
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        usage(&format!("`{path}` holds no report"));
    }
    for (i, line) in lines.iter().enumerate() {
        let report = PipelineReport::parse_json(line)
            .unwrap_or_else(|e| usage(&format!("bad report `{path}` line {}: {e}", i + 1)));
        if lines.len() > 1 {
            println!("-- report {} of {} --", i + 1, lines.len());
        }
        print!("{}", report.render_text());
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        Some((cmd, rest)) if cmd == "show" => cmd_show(rest),
        Some((cmd, _)) if cmd == "--help" || cmd == "-h" => {
            println!("{USAGE}");
            0
        }
        Some((cmd, _)) => usage(&format!("unknown command `{cmd}`")),
        None => usage("missing command"),
    };
    std::process::exit(code);
}
