//! encore-serve — the multi-tenant detection service and its client.
//!
//! Server mode loads one detector snapshot per `--app` and serves the
//! line-delimited check protocol on a unix socket (DESIGN.md §15):
//!
//! ```text
//! encore-serve --socket /run/encore.sock \
//!     --app mysql=mysql=mysql.snap --app web=apache=web.snap \
//!     [--queue-capacity N] [--workers N] [--poll-interval-ms N] \
//!     [--metrics-addr HOST:PORT] [--heartbeat FILE]
//! ```
//!
//! Each app hot-reloads independently when its snapshot file changes; a
//! failing reload keeps the old detector serving and flips only that
//! app's readiness (visible on `/readyz` and the `apps` verb).  The
//! server runs until a `shutdown` verb arrives or stdin reaches
//! end-of-file, and announces `serving on <socket>` (and, when enabled,
//! `metrics listening on <addr>` — `HOST:0` picks a free port) on stderr.
//!
//! Client mode drives one verb against a running server:
//!
//! ```text
//! encore-serve --socket /run/encore.sock --check mysql my.cnf other.cnf
//! encore-serve --socket /run/encore.sock --apps | --stats
//! encore-serve --socket /run/encore.sock --reload mysql | --shutdown
//! ```
//!
//! `--check` prints each target's report under a `== <name>` header;
//! exit 0 on success, 1 on runtime failures, 2 on usage errors, 3 when
//! the server answered `busy` (the queue was full — retry later).

use encore_model::AppKind;
use encore_serve::{CheckReply, Client, ServeOptions, Server, SnapshotRegistry};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: encore-serve --socket PATH \
--app NAME=KIND=SNAPSHOT [--app ...] [--queue-capacity N] [--workers N] \
[--poll-interval-ms N] [--metrics-addr HOST:PORT] [--heartbeat FILE] \
[--event-log FILE] [--slow-micros N] [--profile FILE]
       encore-serve --socket PATH --check APP FILE [FILE...]
       encore-serve --socket PATH --apps | --stats | --reload APP | --shutdown";

fn usage(message: &str) -> ! {
    eprintln!("encore-serve: {message}\n{USAGE}");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("encore-serve: {message}");
    std::process::exit(1);
}

/// One registration from `--app NAME=KIND=SNAPSHOT`.
struct AppArg {
    name: String,
    kind: AppKind,
    snapshot: PathBuf,
}

enum Mode {
    Serve,
    Check { app: String, files: Vec<PathBuf> },
    Apps,
    Stats,
    Reload { app: String },
    Shutdown,
}

struct Args {
    socket: PathBuf,
    mode: Mode,
    apps: Vec<AppArg>,
    options_queue: usize,
    workers: Option<usize>,
    poll_interval_ms: u64,
    metrics_addr: Option<String>,
    heartbeat: Option<PathBuf>,
    event_log: Option<PathBuf>,
    slow_micros: Option<u64>,
    profile: Option<PathBuf>,
}

fn parse_app(spec: &str) -> AppArg {
    let mut parts = spec.splitn(3, '=');
    let (name, kind, snapshot) = (parts.next(), parts.next(), parts.next());
    let (Some(name), Some(kind), Some(snapshot)) = (name, kind, snapshot) else {
        usage(&format!("--app wants NAME=KIND=SNAPSHOT, got `{spec}`"));
    };
    if name.is_empty() || name.chars().any(|c| c.is_whitespace()) {
        usage(&format!("bad app name `{name}`"));
    }
    let kind: AppKind = kind
        .parse()
        .unwrap_or_else(|e| usage(&format!("bad app kind `{kind}`: {e}")));
    AppArg {
        name: name.to_string(),
        kind,
        snapshot: PathBuf::from(snapshot),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: PathBuf::new(),
        mode: Mode::Serve,
        apps: Vec::new(),
        options_queue: 16,
        workers: None,
        poll_interval_ms: 1_000,
        metrics_addr: None,
        heartbeat: None,
        event_log: None,
        slow_micros: None,
        profile: None,
    };
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| usage(&format!("{flag} wants a value")))
    };
    let mut client_verbs = 0usize;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => args.socket = PathBuf::from(value(&mut argv, "--socket")),
            "--app" => args.apps.push(parse_app(&value(&mut argv, "--app"))),
            "--queue-capacity" => {
                args.options_queue = value(&mut argv, "--queue-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage("--queue-capacity wants a number"));
            }
            "--workers" => {
                args.workers = Some(
                    value(&mut argv, "--workers")
                        .parse()
                        .unwrap_or_else(|_| usage("--workers wants a number")),
                );
            }
            "--poll-interval-ms" => {
                args.poll_interval_ms = value(&mut argv, "--poll-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--poll-interval-ms wants a number"));
            }
            "--metrics-addr" => args.metrics_addr = Some(value(&mut argv, "--metrics-addr")),
            "--heartbeat" => {
                args.heartbeat = Some(PathBuf::from(value(&mut argv, "--heartbeat")));
            }
            "--event-log" => {
                args.event_log = Some(PathBuf::from(value(&mut argv, "--event-log")));
            }
            "--slow-micros" => {
                args.slow_micros = Some(
                    value(&mut argv, "--slow-micros")
                        .parse()
                        .unwrap_or_else(|_| usage("--slow-micros wants a number")),
                );
            }
            "--profile" => {
                args.profile = Some(PathBuf::from(value(&mut argv, "--profile")));
            }
            "--check" => {
                let app = value(&mut argv, "--check");
                let files: Vec<PathBuf> = argv.by_ref().map(PathBuf::from).collect();
                if files.is_empty() {
                    usage("--check APP wants at least one config file");
                }
                args.mode = Mode::Check { app, files };
                client_verbs += 1;
            }
            "--apps" => {
                args.mode = Mode::Apps;
                client_verbs += 1;
            }
            "--stats" => {
                args.mode = Mode::Stats;
                client_verbs += 1;
            }
            "--reload" => {
                args.mode = Mode::Reload {
                    app: value(&mut argv, "--reload"),
                };
                client_verbs += 1;
            }
            "--shutdown" => {
                args.mode = Mode::Shutdown;
                client_verbs += 1;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if args.socket.as_os_str().is_empty() {
        usage("--socket is required");
    }
    if client_verbs > 1 {
        usage("client verbs are mutually exclusive");
    }
    match (&args.mode, args.apps.is_empty()) {
        (Mode::Serve, true) => usage("server mode wants at least one --app"),
        (Mode::Serve, false) => {}
        (_, false) => usage("--app is a server flag; client verbs take none"),
        (_, true) => {}
    }
    args
}

fn run_server(args: &Args) -> ! {
    encore::obs::enable();
    match &args.event_log {
        Some(path) => encore::obs::event::install(path)
            .unwrap_or_else(|e| fail(&format!("opening event log {}: {e}", path.display()))),
        None => {
            let _ = encore::obs::event::install_from_env();
        }
    }
    if args.profile.is_some() {
        encore::obs::profile::enable();
    }
    if args.slow_micros.is_some() {
        // Slow-request fragments land in the trace ring; make sure it
        // is capturing.
        encore::obs::trace::start_recording(0);
    }
    let registry = SnapshotRegistry::new();
    for app in &args.apps {
        registry
            .load(&app.name, app.kind, &app.snapshot)
            .unwrap_or_else(|e| fail(&format!("loading app `{}`: {e}", app.name)));
    }
    let mut options = ServeOptions::new(&args.socket);
    options.queue_capacity = args.options_queue;
    options.workers = args.workers;
    options.poll_interval = Duration::from_millis(args.poll_interval_ms.max(1));
    options.metrics_addr = args.metrics_addr.clone();
    options.heartbeat_path = args.heartbeat.clone();
    options.slow_micros = args.slow_micros;
    let server =
        Server::start(registry, options).unwrap_or_else(|e| fail(&format!("starting server: {e}")));
    // Announcements are best-effort: a supervisor that stopped reading
    // our stderr must not be able to crash the daemon with EPIPE.
    let _ = writeln!(
        std::io::stderr(),
        "serving on {}",
        server.socket().display()
    );
    if let Some(addr) = server.metrics_addr() {
        let _ = writeln!(std::io::stderr(), "metrics listening on {addr}");
    }

    // Parity with `encore-detect --watch`: closing stdin stops the
    // service, so a supervising test (or `echo | encore-serve ...`) gets
    // a bounded shutdown without needing the protocol.
    let stop = server.stop_signal();
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin().lock();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        stop.stop();
    });

    server.join();
    if let Some(path) = &args.profile {
        std::fs::write(path, encore::obs::render_profile_json())
            .unwrap_or_else(|e| fail(&format!("writing profile {}: {e}", path.display())));
        let _ = write!(
            std::io::stderr(),
            "{}",
            encore::obs::render_profile_text(10)
        );
    }
    // Drain the writer thread before exiting: process::exit skips Drop.
    encore::obs::event::shutdown();
    let _ = writeln!(std::io::stderr(), "stopped");
    std::process::exit(0);
}

fn connect(args: &Args) -> Client {
    Client::connect(&args.socket)
        .unwrap_or_else(|e| fail(&format!("connecting to {}: {e}", args.socket.display())))
}

fn print_lines(result: std::io::Result<Vec<String>>) -> ! {
    let lines = result.unwrap_or_else(|e| fail(&e.to_string()));
    for line in lines {
        println!("{line}");
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    match &args.mode {
        Mode::Serve => run_server(&args),
        Mode::Apps => print_lines(connect(&args).apps()),
        Mode::Stats => print_lines(connect(&args).stats()),
        Mode::Reload { app } => print_lines(connect(&args).reload(app)),
        Mode::Shutdown => print_lines(connect(&args).shutdown()),
        Mode::Check { app, files } => {
            let targets: Vec<(String, String)> = files
                .iter()
                .map(|path| {
                    let name = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or_else(|| fail(&format!("bad file name `{}`", path.display())));
                    let payload = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| fail(&format!("reading {}: {e}", path.display())));
                    (name.to_string(), payload)
                })
                .collect();
            match connect(&args).check(app, &targets) {
                Err(e) => fail(&e.to_string()),
                Ok(CheckReply::Busy) => {
                    eprintln!("busy: the server's work queue is full, retry later");
                    std::process::exit(3);
                }
                Ok(CheckReply::Reports(reports)) => {
                    for (name, body) in reports {
                        println!("== {name}");
                        print!("{body}");
                    }
                    std::process::exit(0);
                }
            }
        }
    }
}
