//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! tables                       # every table, full paper-scale corpora
//! tables 8 9                   # only Tables 8 and 9
//! tables --scale 0.25          # shrink populations (faster)
//! tables 13 --report out.json  # also write a pipeline report (JSON)
//! ENCORE_TRACE=1 tables 13     # print the pipeline report to stderr
//! ```
//!
//! Setting `ENCORE_TRACE` (or passing `--report`) enables the observability
//! sink for the run; the per-phase [`encore::obs::pipeline_report`] is
//! printed to stderr under `ENCORE_TRACE` and written as JSON to the
//! `--report` path when given.  `--trace-out FILE` additionally records
//! every timer span and writes a Chrome trace-viewer / Perfetto-compatible
//! JSON trace (with a per-phase summary lane) on exit.

use encore_bench::experiments::{self, ExperimentConfig};

const USAGE: &str = "usage: tables [TABLE_NUMBER ...] [--scale F] [--report FILE] \
[--bench-json FILE] [--trace-out FILE] [--event-log FILE] [--profile FILE]";

/// Print a diagnostic plus the usage line to stderr and exit 2.  All
/// argument-handling failures funnel through here so the binary has exactly
/// one error shape.
fn usage(problem: &str) -> ! {
    eprintln!("tables: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    tables: Vec<u32>,
    scale: f64,
    report: Option<String>,
    bench_json: Option<String>,
    trace_out: Option<String>,
    event_log: Option<String>,
    profile: Option<String>,
}

fn parse_args() -> Option<Args> {
    let mut parsed = Args {
        tables: Vec::new(),
        scale: 1.0,
        report: None,
        bench_json: None,
        trace_out: None,
        event_log: None,
        profile: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref().map(str::parse) {
                Some(Ok(scale)) => parsed.scale = scale,
                Some(Err(_)) => usage("--scale requires a number"),
                None => usage("--scale requires a number"),
            },
            "--report" => match args.next() {
                Some(path) => parsed.report = Some(path),
                None => usage("--report requires a file path"),
            },
            "--bench-json" => match args.next() {
                Some(path) => parsed.bench_json = Some(path),
                None => usage("--bench-json requires a file path"),
            },
            "--trace-out" => match args.next() {
                Some(path) => parsed.trace_out = Some(path),
                None => usage("--trace-out requires a file path"),
            },
            "--event-log" => match args.next() {
                Some(path) => parsed.event_log = Some(path),
                None => usage("--event-log requires a file path"),
            },
            "--profile" => match args.next() {
                Some(path) => parsed.profile = Some(path),
                None => usage("--profile requires a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return None;
            }
            n => match n.parse::<u32>() {
                Ok(t) => parsed.tables.push(t),
                Err(_) => usage(&format!("unknown argument `{n}`")),
            },
        }
    }
    if parsed.tables.is_empty() {
        parsed.tables = experiments::ALL_TABLES.to_vec();
    }
    Some(parsed)
}

fn main() {
    let args = match parse_args() {
        Some(args) => args,
        None => return,
    };
    let trace = encore::obs::enable_from_env();
    if args.report.is_some()
        || args.bench_json.is_some()
        || args.trace_out.is_some()
        // The profiler's coverage reference is the `infer.time` timer,
        // which records only while the sink is on.
        || args.profile.is_some()
    {
        encore::obs::enable();
    }
    if args.trace_out.is_some() {
        encore::obs::trace::start_recording(0);
    }
    match &args.event_log {
        Some(path) => {
            if let Err(e) = encore::obs::event::install(std::path::Path::new(path)) {
                eprintln!("tables: cannot open event log `{path}`: {e}");
                std::process::exit(2);
            }
        }
        None => {
            let _ = encore::obs::event::install_from_env();
        }
    }
    if args.profile.is_some() {
        encore::obs::profile::enable();
    }
    let config = if (args.scale - 1.0).abs() < f64::EPSILON {
        ExperimentConfig::default()
    } else {
        ExperimentConfig::scaled(args.scale)
    };
    for t in &args.tables {
        match experiments::run_table(*t, &config) {
            Some(output) => {
                println!("=== {}", output.title);
                println!("{}", output.text);
            }
            None => eprintln!(
                "no experiment for table {t} (valid: {:?})",
                experiments::ALL_TABLES
            ),
        }
    }
    let report = encore::obs::pipeline_report();
    if trace {
        eprint!("{}", report.render_text());
    }
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("tables: cannot write report to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.bench_json {
        let record = encore_bench::bench_record(&report, None);
        if let Err(e) = std::fs::write(path, record.render_json()) {
            eprintln!("tables: cannot write perf record to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.trace_out {
        let json = encore::obs::trace::render_chrome_json(Some(&report));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("tables: cannot write trace to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.profile {
        if let Err(e) = std::fs::write(path, encore::obs::render_profile_json()) {
            eprintln!("tables: cannot write profile to `{path}`: {e}");
            std::process::exit(2);
        }
        eprint!("{}", encore::obs::render_profile_text(10));
    }
    // Drain queued event lines before the process exits.
    encore::obs::event::shutdown();
}
