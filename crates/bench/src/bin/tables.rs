//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! tables                # every table, full paper-scale corpora
//! tables 8 9            # only Tables 8 and 9
//! tables --scale 0.25   # shrink populations (faster)
//! ```

use encore_bench::experiments::{self, ExperimentConfig};

fn main() {
    let mut tables: Vec<u32> = Vec::new();
    let mut scale: f64 = 1.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale requires a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: tables [TABLE_NUMBER ...] [--scale F]");
                return;
            }
            n => match n.parse::<u32>() {
                Ok(t) => tables.push(t),
                Err(_) => {
                    eprintln!("unknown argument `{n}`");
                    std::process::exit(2);
                }
            },
        }
    }
    if tables.is_empty() {
        tables = experiments::ALL_TABLES.to_vec();
    }
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        ExperimentConfig::default()
    } else {
        ExperimentConfig::scaled(scale)
    };
    for t in tables {
        match experiments::run_table(t, &config) {
            Some(output) => {
                println!("=== {}", output.title);
                println!("{}", output.text);
            }
            None => eprintln!(
                "no experiment for table {t} (valid: {:?})",
                experiments::ALL_TABLES
            ),
        }
    }
}
