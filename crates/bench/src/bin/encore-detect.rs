//! Fleet-scale detection driver: train once, detect many.
//!
//! ```text
//! encore-detect --app mysql --train 40 --targets 20      # train + check
//! encore-detect --save-detector det.txt --targets 0      # train + persist
//! encore-detect --load-detector det.txt --targets 20     # serve from snapshot
//! encore-detect --targets 20 --workers 4                 # parallel checking
//! ```
//!
//! The target reports are printed to stdout in fleet order, one
//! `== system <id>` block per image, rendered with the exact-score
//! [`encore::Report::render`] form — byte-identical for every worker count
//! and for a trained-vs-reloaded detector, which is what the CI snapshot
//! round-trip job diffs.
//!
//! Setting `ENCORE_TRACE` (or passing `--report`) enables the observability
//! sink; the per-phase pipeline report goes to stderr under `ENCORE_TRACE`
//! and to the `--report` path as JSON when given.  `--bench-json FILE`
//! additionally writes a compact perf record ([`encore_bench::perf`]) for
//! baseline diffing with `encore-report`.
//!
//! # CI/CD surface
//!
//! Warnings also flow through the unified finding model (stable `EW0xx`
//! codes with content fingerprints): `--severity`/`--min-report-confidence`
//! filter findings, `--sarif FILE` writes a SARIF v2.1.0 log, and
//! `--write-baseline`/`--baseline FILE` record/diff accepted fingerprints so
//! only *new* findings fail the build (exit 1).  `--quiet` suppresses
//! stdout and turns any admitted finding into exit 1.  Flag-free
//! invocations keep the historical stdout and exit-0 behavior exactly.
//!
//! # Watch mode
//!
//! ```text
//! encore-detect --train 20 --watch DIR --interval-ms 500 \
//!               --max-iterations 3 --report watch.jsonl
//! ```
//!
//! `--watch DIR` switches from one-shot fleet checking to the long-running
//! serve loop ([`encore::watch`]): each file in DIR is one target config
//! file, polled by mtime/size every `--interval-ms`; only added/changed
//! targets are re-checked, and the `--save-detector`/`--load-detector`
//! snapshot file is hot-reloaded when it changes on disk.  With `--report`
//! the loop appends one pipeline-report JSON line per cycle (JSONL).  The
//! loop stops after `--max-iterations` cycles, or — when unbounded — as
//! soon as stdin reaches end-of-file (close the pipe to stop the daemon;
//! no signal handling needed).
//!
//! # Live telemetry
//!
//! `--metrics-addr HOST:PORT` (watch mode only) serves the cumulative
//! sink as Prometheus text exposition on `/metrics`, plus `/healthz` and
//! `/readyz` (ready after the first completed cycle, not-ready while a
//! detector hot-reload is failing).  The bound address is printed to
//! stderr, so `HOST:0` works for tests.  `--trace-out FILE` (any mode)
//! records every timer span and writes a Chrome trace-viewer /
//! Perfetto-compatible JSON trace on exit.

use encore::prelude::*;
use encore_check::{
    baseline::FindingBaseline,
    finding::{self, Finding, FindingFilter},
    sarif, Severity,
};
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

const USAGE: &str = "usage: encore-detect [--app NAME] [--train N] [--seed N] \
[--targets N] [--target-seed N] [--misconfig-percent P] [--workers N] \
[--save-detector FILE] [--load-detector FILE] [--no-entropy] [--report FILE] \
[--bench-json FILE] [--trace-out FILE] [--event-log FILE] [--profile FILE] \
[--watch DIR] [--interval-ms N] \
[--max-iterations K] [--metrics-addr HOST:PORT] [--severity LEVEL] \
[--min-report-confidence X] [--quiet] [--sarif FILE] \
[--baseline FILE | --write-baseline FILE]";

/// Print a diagnostic plus the usage line to stderr and exit 2.  All
/// argument-handling failures funnel through here so the binary has exactly
/// one error shape.
fn usage(problem: &str) -> ! {
    eprintln!("encore-detect: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    app: AppKind,
    train: usize,
    seed: u64,
    targets: usize,
    target_seed: u64,
    misconfig_percent: u32,
    workers: Option<usize>,
    save_detector: Option<String>,
    load_detector: Option<String>,
    no_entropy: bool,
    report: Option<String>,
    bench_json: Option<String>,
    trace_out: Option<String>,
    event_log: Option<String>,
    profile: Option<String>,
    watch: Option<String>,
    interval_ms: u64,
    max_iterations: Option<u64>,
    metrics_addr: Option<String>,
    filter: FindingFilter,
    quiet: bool,
    sarif: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
}

fn parse_args() -> Option<Args> {
    let mut parsed = Args {
        app: AppKind::Mysql,
        train: 40,
        seed: 1,
        targets: 20,
        target_seed: 77,
        misconfig_percent: 21,
        workers: None,
        save_detector: None,
        load_detector: None,
        no_entropy: false,
        report: None,
        bench_json: None,
        trace_out: None,
        event_log: None,
        profile: None,
        watch: None,
        interval_ms: 1_000,
        max_iterations: None,
        metrics_addr: None,
        filter: FindingFilter::default(),
        quiet: false,
        sarif: None,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    // One shape for every `--flag VALUE` pair: take the value or die with
    // the flag name in the diagnostic.
    let value = |flag: &str, next: Option<String>| -> String {
        match next {
            Some(v) => v,
            None => usage(&format!("{flag} requires a value")),
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--app" => {
                let v = value("--app", args.next());
                parsed.app = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("unknown app `{v}`")));
            }
            "--train" => {
                let v = value("--train", args.next());
                parsed.train = v
                    .parse()
                    .unwrap_or_else(|_| usage("--train requires a count"));
            }
            "--seed" => {
                let v = value("--seed", args.next());
                parsed.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed requires a number"));
            }
            "--targets" => {
                let v = value("--targets", args.next());
                parsed.targets = v
                    .parse()
                    .unwrap_or_else(|_| usage("--targets requires a count"));
            }
            "--target-seed" => {
                let v = value("--target-seed", args.next());
                parsed.target_seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--target-seed requires a number"));
            }
            "--misconfig-percent" => {
                let v = value("--misconfig-percent", args.next());
                parsed.misconfig_percent = v
                    .parse()
                    .unwrap_or_else(|_| usage("--misconfig-percent requires 0..=100"));
            }
            "--workers" => {
                let v = value("--workers", args.next());
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| usage("--workers requires a count"));
                if n == 0 {
                    usage("--workers must be at least 1");
                }
                parsed.workers = Some(n);
            }
            "--save-detector" => parsed.save_detector = Some(value("--save-detector", args.next())),
            "--load-detector" => parsed.load_detector = Some(value("--load-detector", args.next())),
            "--no-entropy" => parsed.no_entropy = true,
            "--report" => parsed.report = Some(value("--report", args.next())),
            "--bench-json" => parsed.bench_json = Some(value("--bench-json", args.next())),
            "--trace-out" => parsed.trace_out = Some(value("--trace-out", args.next())),
            "--event-log" => parsed.event_log = Some(value("--event-log", args.next())),
            "--profile" => parsed.profile = Some(value("--profile", args.next())),
            "--watch" => parsed.watch = Some(value("--watch", args.next())),
            "--metrics-addr" => parsed.metrics_addr = Some(value("--metrics-addr", args.next())),
            "--interval-ms" => {
                let v = value("--interval-ms", args.next());
                parsed.interval_ms = v
                    .parse()
                    .unwrap_or_else(|_| usage("--interval-ms requires milliseconds"));
            }
            "--max-iterations" => {
                let v = value("--max-iterations", args.next());
                let n: u64 = v
                    .parse()
                    .unwrap_or_else(|_| usage("--max-iterations requires a count"));
                if n == 0 {
                    usage("--max-iterations must be at least 1");
                }
                parsed.max_iterations = Some(n);
            }
            "--severity" => {
                let v = value("--severity", args.next());
                parsed.filter.min_severity = Severity::parse_name(&v).unwrap_or_else(|| {
                    usage(&format!("bad --severity `{v}` (error|warning|info)"))
                });
            }
            "--min-report-confidence" => {
                let v = value("--min-report-confidence", args.next());
                let x: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage("--min-report-confidence requires a number"));
                if !(0.0..=1.0).contains(&x) {
                    usage("--min-report-confidence must be in [0, 1]");
                }
                parsed.filter.min_confidence = x;
            }
            "--quiet" | "-q" => parsed.quiet = true,
            "--sarif" => parsed.sarif = Some(value("--sarif", args.next())),
            "--baseline" => parsed.baseline = Some(value("--baseline", args.next())),
            "--write-baseline" => {
                parsed.write_baseline = Some(value("--write-baseline", args.next()));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return None;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    Some(parsed)
}

/// Train a fresh detector, or reconstruct one from `--load-detector`.
fn build_detector(args: &Args) -> AnomalyDetector {
    if let Some(path) = &args.load_detector {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read detector `{path}`: {e}")));
        let snapshot = DetectorSnapshot::parse(&text)
            .unwrap_or_else(|e| usage(&format!("bad detector `{path}`: {e}")));
        return AnomalyDetector::from_snapshot(snapshot);
    }
    let pop = Population::training(args.app, &PopulationOptions::new(args.train, args.seed));
    let training = TrainingSet::assemble(args.app, pop.images())
        .unwrap_or_else(|e| usage(&format!("training corpus does not assemble: {e}")));
    let thresholds = if args.no_entropy {
        FilterThresholds::default().without_entropy()
    } else {
        FilterThresholds::default()
    };
    let options = encore::LearnOptions {
        thresholds,
        ..encore::LearnOptions::default()
    };
    EnCore::learn(&training, &options).into_detector()
}

/// Run the serve loop over a directory of config files until
/// `--max-iterations` cycles complete or — when unbounded — stdin closes.
fn run_watch(args: &Args, detector: AnomalyDetector, dir: &str) {
    let app = args.app;
    let mut options = encore::WatchOptions::new(app, dir);
    options.interval = std::time::Duration::from_millis(args.interval_ms);
    options.max_iterations = args.max_iterations;
    options.workers = args.workers;
    options.detector_path = args
        .save_detector
        .as_ref()
        .or(args.load_detector.as_ref())
        .map(std::path::PathBuf::from);
    options.report_path = args.report.as_ref().map(std::path::PathBuf::from);

    // The live telemetry surface: /metrics, /healthz, /readyz.  The
    // readiness flag is shared with the watcher, which flips it true
    // after the first completed cycle and false while a hot-reload is
    // failing.  The server lives until this function returns (dropping
    // it stops the accept thread).
    let readiness = std::sync::Arc::new(encore::obs::expose::Readiness::new());
    options.readiness = Some(std::sync::Arc::clone(&readiness));
    let _metrics = args.metrics_addr.as_ref().map(|addr| {
        match encore::obs::expose::MetricsServer::start(
            addr,
            std::sync::Arc::clone(&readiness),
            encore::obs::render_prometheus,
        ) {
            Ok(server) => {
                // Machine-readable so tools (and the CLI tests) can bind
                // port 0 and discover the actual endpoint.
                eprintln!("encore-detect: metrics listening on {}", server.addr());
                server
            }
            Err(e) => {
                eprintln!("encore-detect: cannot bind metrics endpoint `{addr}`: {e}");
                std::process::exit(2);
            }
        }
    });

    // Unbounded runs stop on stdin end-of-file: whoever holds the pipe
    // holds the daemon.  Bounded runs ignore stdin so closed-stdin CI can
    // still count its cycles.  `StopFlag::stop` wakes the watcher's
    // inter-cycle wait, so shutdown latency is bounded by the in-flight
    // cycle, not by `--interval-ms`.
    let stop = std::sync::Arc::new(encore::StopFlag::new());
    if args.max_iterations.is_none() {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin().lock();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stop.stop();
        });
    }

    let mut watcher = encore::Watcher::new(detector, options);
    let outcome = watcher.run(&stop, |cycle| {
        println!(
            "== watch cycle {}: {} rechecked ({} added, {} changed, {} removed), \
{} tracked{}",
            cycle.cycle,
            cycle.results.len(),
            cycle.added,
            cycle.changed,
            cycle.removed,
            cycle.tracked,
            if cycle.reloaded_detector {
                ", detector reloaded"
            } else {
                ""
            },
        );
        if let Some(e) = &cycle.reload_error {
            eprintln!("encore-detect: detector reload failed (serving old rules): {e}");
        }
        for (name, result) in &cycle.results {
            println!("== system {name}");
            match result {
                Ok(report) => print!("{}", report.render()),
                Err(e) => println!("error: {e}"),
            }
        }
    });
    match outcome {
        Ok(cycles) => println!("== watch done: {cycles} cycle(s)"),
        Err(e) => {
            eprintln!("encore-detect: watch failed: {e}");
            std::process::exit(2);
        }
    }
    write_trace(args);
}

/// Write the recorded span trace as Chrome trace-viewer JSON when
/// `--trace-out` is set.  The phase-summary lane comes from the
/// cumulative roll-up, so it covers the whole run (training included).
fn write_trace(args: &Args) {
    let Some(path) = &args.trace_out else {
        return;
    };
    let report = encore::obs::pipeline_report();
    let json = encore::obs::trace::render_chrome_json(Some(&report));
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("encore-detect: cannot write trace to `{path}`: {e}");
        std::process::exit(2);
    }
}

/// Write the `--profile` cost report (JSON file + text table on stderr)
/// and drain the event-log writer thread, so queued lines reach the file
/// even when the process exits right after.
fn finish_observability(args: &Args) {
    if let Some(path) = &args.profile {
        if let Err(e) = std::fs::write(path, encore::obs::render_profile_json()) {
            eprintln!("encore-detect: cannot write profile to `{path}`: {e}");
            std::process::exit(2);
        }
        eprint!("{}", encore::obs::render_profile_text(10));
    }
    encore::obs::event::shutdown();
}

fn main() {
    let args = match parse_args() {
        Some(args) => args,
        None => return,
    };
    if args.load_detector.is_some() && args.save_detector.is_some() {
        usage("--load-detector and --save-detector are mutually exclusive");
    }
    if args.watch.is_some() && args.bench_json.is_some() {
        // Watch cycles reset the instruments each cycle, so there is no
        // whole-run record to condense.
        usage("--bench-json is a one-shot option, not available with --watch");
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        usage("--baseline and --write-baseline are mutually exclusive");
    }
    if args.watch.is_some()
        && (args.sarif.is_some()
            || args.baseline.is_some()
            || args.write_baseline.is_some()
            || args.quiet
            || !args.filter.is_pass_all())
    {
        // The findings surface is a one-shot artifact (one SARIF log, one
        // baseline diff, one exit code); a long-running serve loop has none
        // of those.
        usage("--sarif/--baseline/--write-baseline/--quiet/--severity/--min-report-confidence are one-shot options, not available with --watch");
    }
    if args.metrics_addr.is_some() && args.watch.is_none() {
        // A scrape endpoint only makes sense on a long-running process.
        usage("--metrics-addr requires --watch");
    }
    let trace = encore::obs::enable_from_env();
    if args.report.is_some()
        || args.bench_json.is_some()
        || args.metrics_addr.is_some()
        || args.trace_out.is_some()
        // The profiler's coverage reference is the `infer.time` timer,
        // which records only while the sink is on.
        || args.profile.is_some()
    {
        encore::obs::enable();
    }
    if args.trace_out.is_some() {
        // Start before training so its spans land in the trace too.
        encore::obs::trace::start_recording(0);
    }
    match &args.event_log {
        Some(path) => {
            if let Err(e) = encore::obs::event::install(std::path::Path::new(path)) {
                eprintln!("encore-detect: cannot open event log `{path}`: {e}");
                std::process::exit(2);
            }
        }
        None => {
            let _ = encore::obs::event::install_from_env();
        }
    }
    if args.profile.is_some() {
        // Before training, so learn-phase template costs are attributed.
        encore::obs::profile::enable();
    }

    let detector = build_detector(&args);
    eprintln!(
        "encore-detect: {} rules, {} known entries, trained on {} systems",
        detector.rules().len(),
        detector.training_stats().known_entries().len(),
        detector.training_systems(),
    );
    if let Some(path) = &args.save_detector {
        let text = detector.snapshot().render();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("encore-detect: cannot write detector to `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!("encore-detect: detector saved to `{path}`");
    }

    if let Some(dir) = &args.watch {
        // Watch mode replaces one-shot fleet checking; each cycle's report
        // goes to the `--report` JSONL file, so the one-shot report tail
        // below does not apply.
        run_watch(&args, detector, dir);
        finish_observability(&args);
        return;
    }

    let fleet = Population::training(
        args.app,
        &PopulationOptions::new(args.targets, args.target_seed)
            .with_misconfig_percent(args.misconfig_percent),
    );
    let options = FleetOptions {
        workers: args.workers,
    };
    let results = detector.check_fleet(args.app, fleet.images(), &options);
    let mut with_warnings = 0usize;
    // Findings accumulate in fleet order — deterministic for every worker
    // count, because check_fleet returns results in image order.
    let mut findings: Vec<Finding> = Vec::new();
    for (image, result) in fleet.images().iter().zip(&results) {
        if !args.quiet {
            println!("== system {}", image.id());
        }
        match result {
            Ok(report) => {
                if !report.is_empty() {
                    with_warnings += 1;
                }
                for w in report.warnings() {
                    let f = Finding::from_warning(image.id(), w);
                    if args.filter.admits(&f) {
                        findings.push(f);
                    }
                }
                if !args.quiet {
                    print!("{}", report.render());
                }
            }
            Err(e) if args.quiet => eprintln!("encore-detect: system {}: {e}", image.id()),
            Err(e) => println!("error: {e}"),
        }
    }
    if !args.quiet {
        println!(
            "== summary: {} systems checked, {} with warnings",
            results.len(),
            with_warnings
        );
    }

    let report = encore::obs::pipeline_report();
    if trace {
        eprint!("{}", report.render_text());
    }
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("encore-detect: cannot write report to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.bench_json {
        let record = encore_bench::bench_record(&report, args.workers);
        if let Err(e) = std::fs::write(path, record.render_json()) {
            eprintln!("encore-detect: cannot write perf record to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    write_trace(&args);
    finish_observability(&args);

    // The CI surface: SARIF log, baseline write/diff, and the findings
    // exit code.  A flag-free invocation keeps the historical behavior —
    // stdout reports, exit 0 — so the snapshot round-trip diff in CI and
    // every existing consumer are unaffected.
    if let Some(path) = &args.sarif {
        let tool = sarif::SarifTool {
            name: "encore-detect",
            version: env!("CARGO_PKG_VERSION"),
        };
        if let Err(e) = std::fs::write(path, sarif::render(&tool, &findings)) {
            eprintln!("encore-detect: cannot write SARIF to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.write_baseline {
        let baseline = FindingBaseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("encore-detect: cannot write baseline to `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "encore-detect: wrote baseline `{path}` accepting {} finding(s)",
            baseline.len()
        );
        return;
    }
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline `{path}`: {e}")));
        let baseline = FindingBaseline::parse(&text)
            .unwrap_or_else(|e| usage(&format!("baseline `{path}`: {e}")));
        let diff = baseline.diff(&findings);
        eprintln!(
            "encore-detect: baseline `{path}`: {} fresh, {} suppressed, {} stale",
            diff.fresh.len(),
            diff.suppressed,
            diff.stale.len()
        );
        for (fingerprint, annotation) in &diff.stale {
            eprintln!("encore-detect: stale baseline entry {fingerprint}\t{annotation}");
        }
        // Detection findings are at most warning severity, so the gate
        // denies warnings: any fresh (unbaselined) finding fails the build.
        std::process::exit(finding::exit_code(&diff.fresh, true));
    }
    if args.quiet {
        // Exit-code-only mode without a baseline: the presence of any
        // admitted finding is the signal.
        std::process::exit(finding::exit_code(&findings, true));
    }
}
