//! A minimal JSON value model — enough to render and re-parse a
//! [`PipelineReport`](crate::PipelineReport) without a registry dependency.
//!
//! The offline serde shim provides derive markers but no serializer (see
//! `shims/README.md`), so, like the rest of the workspace, report encoding
//! is hand-rolled.  The model is deliberately narrow: all report numbers
//! are unsigned 64-bit integers, so [`Json::Num`] is a `u64` and the parser
//! rejects floats — round-trips are exact by construction.

/// A parsed JSON value.  Object member order is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A nonnegative integer (all report quantities are `u64`).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse JSON text into a [`Json`] value.  Rejects trailing input, floats,
/// and negative numbers (no report quantity is either).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing input after value"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => parse_keyword(bytes, pos),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Report strings are metric names (ASCII); surrogate
                        // pairs are out of scope for this parser.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one whole UTF-8 scalar from the source text.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(err(*pos, "floats are not valid report quantities"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are UTF-8");
    text.parse::<u64>()
        .map(Json::Num)
        .map_err(|_| err(start, "integer out of u64 range"))
}

fn parse_keyword(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    for (word, value) in [
        ("null", Json::Null),
        ("true", Json::Bool(true)),
        ("false", Json::Bool(false)),
    ] {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            return Ok(value);
        }
    }
    Err(err(*pos, "expected a JSON value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "\"hello\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[{\"c\":\"d\"}]}",
        ];
        for case in cases {
            let parsed = parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            assert_eq!(parsed.render(), case);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}f".to_string());
        let text = original.render();
        assert_eq!(parse(&text).expect("parses"), original);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let parsed = parse(" { \"a\" : [ 1 , 2 ] } ").expect("parses");
        assert_eq!(
            parsed.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_floats_negatives_and_trailing_input() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("-4").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("18446744073709551616").is_err()); // u64::MAX + 1
    }

    #[test]
    fn accessors_select_by_variant() {
        let obj = parse("{\"n\":7,\"s\":\"x\",\"a\":[null]}").expect("parses");
        assert_eq!(obj.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(obj.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            obj.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(obj.get("missing").is_none());
        assert!(obj.as_obj().is_some());
        assert!(Json::Null.get("n").is_none());
        assert!(Json::Null.as_obj().is_none());
    }
}
