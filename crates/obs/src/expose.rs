//! Prometheus text exposition (format 0.0.4) over a [`PipelineReport`],
//! plus the tiny HTTP responder that serves it to a scraper.
//!
//! The mapping from sink instruments to Prometheus families:
//!
//! | instrument | family                              | TYPE        |
//! |------------|-------------------------------------|-------------|
//! | counter    | `encore_<name>_total`               | `counter`   |
//! | gauge      | `encore_<name>`                     | `gauge`     |
//! | timer      | `encore_<name>_seconds_total` and `encore_<name>_spans_total` | `counter` ×2 |
//! | histogram  | `encore_<name>` with cumulative `_bucket{le=..}`, exact `_sum`, `_count` | `histogram` |
//!
//! `<name>` is the metric name sanitized into the Prometheus grammar:
//! ASCII alphanumerics lower-cased, everything else `_`
//! (`infer.pairs.evaluated` → `encore_infer_pairs_evaluated_total`).
//! Sanitization can merge distinct names (`a.b-c` vs `a.b_c`); collisions
//! are resolved deterministically — claimants sort by original metric
//! name, the first keeps the family, later ones get a numeric `_2`/`_3`
//! suffix (bumped past any name already in use) — so no two originals
//! ever share a family and the assignment is independent of report order.
//!
//! Timer seconds are rendered digit-exactly from the integer second and
//! nanosecond parts (never through `f64`, whose 53-bit mantissa would
//! round totals beyond 2^53 ns); histogram `_sum` is the instrument's
//! exact running sum (see
//! [`Histogram::sum`](crate::Histogram::sum)), not a bucket-midpoint
//! estimate.  Histogram `le` bounds come from a caller-supplied lookup
//! (bounds are not carried in reports); when the lookup misses, bucket
//! indices stand in as bounds, which is exact for the index-domain
//! histograms built over `INDEX_BOUNDS`.
//!
//! [`MetricsServer`] is a hand-rolled `std::net::TcpListener` HTTP/1.0
//! responder (zero dependencies, one named accept thread) exposing
//! `/metrics`, `/healthz` (process up) and `/readyz` (the shared
//! [`Readiness`] flag; 503 until ready).

use crate::report::PipelineReport;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Lookup from an original histogram metric name to its bucket bounds.
/// Reports carry counts but not bounds, so exposition needs the owning
/// crate to supply them (e.g. `encore::obs::histogram_bounds`).
pub type BoundsOf<'a> = &'a dyn Fn(&str) -> Option<&'static [u64]>;

/// Sanitize a sink metric name into the `encore_` Prometheus namespace:
/// ASCII alphanumerics are lower-cased, every other character becomes `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("encore_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// What one exposition family renders: its kind line and sample values.
enum FamilyData {
    Counter(u64),
    Gauge(u64),
    /// Timer total, rendered as seconds with nanosecond precision.
    Seconds(u64),
    /// Timer span count.
    Spans(u64),
    Histogram {
        bounds: Option<&'static [u64]>,
        counts: Vec<u64>,
        sum: u64,
    },
}

struct Family {
    /// Sanitized family name before collision resolution.
    desired: String,
    /// Original sink metric name (also the collision sort key).
    orig: String,
    phase: String,
    data: FamilyData,
}

impl Family {
    fn kind(&self) -> &'static str {
        match self.data {
            FamilyData::Counter(_) | FamilyData::Seconds(_) | FamilyData::Spans(_) => "counter",
            FamilyData::Gauge(_) => "gauge",
            FamilyData::Histogram { .. } => "histogram",
        }
    }

    fn describe(&self) -> String {
        let noun = match self.data {
            FamilyData::Counter(_) => "Counter",
            FamilyData::Gauge(_) => "Gauge",
            FamilyData::Seconds(_) => "Timer total seconds for",
            FamilyData::Spans(_) => "Timer span count for",
            FamilyData::Histogram { .. } => "Histogram",
        };
        format!("{noun} `{}` (phase {}).", self.orig, self.phase)
    }
}

/// Escape a HELP docstring per the exposition format: `\` and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Deterministically assign final family names.  Keyed by
/// `(desired, orig)`: claimants of one desired name sort by original
/// metric name, the first keeps it, later ones take the lowest free
/// `_2`/`_3`… suffix (never stealing another family's desired name).
fn resolve_collisions(families: &[Family]) -> BTreeMap<(String, String), String> {
    let mut claims: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for family in families {
        claims
            .entry(&family.desired)
            .or_default()
            .insert(&family.orig);
    }
    let mut taken: BTreeSet<String> = claims.keys().map(|k| (*k).to_string()).collect();
    let mut assigned = BTreeMap::new();
    for (&desired, origs) in &claims {
        for (i, &orig) in origs.iter().enumerate() {
            let name = if i == 0 {
                desired.to_string()
            } else {
                let mut n = i + 1;
                loop {
                    let candidate = format!("{desired}_{n}");
                    if !taken.contains(&candidate) {
                        taken.insert(candidate.clone());
                        break candidate;
                    }
                    n += 1;
                }
            };
            assigned.insert((desired.to_string(), orig.to_string()), name);
        }
    }
    assigned
}

/// Render a report in the Prometheus text exposition format 0.0.4.
///
/// Families appear in report order (phase order, then instrument
/// declaration order within the phase); each family is one `# HELP` line,
/// one `# TYPE` line, then its samples.  `bounds_of` supplies histogram
/// bucket bounds by original metric name; a miss falls back to bucket
/// indices.
pub fn render(report: &PipelineReport, bounds_of: BoundsOf) -> String {
    let mut families: Vec<Family> = Vec::new();
    for phase in &report.phases {
        for (name, value) in &phase.counters {
            families.push(Family {
                desired: format!("{}_total", sanitize(name)),
                orig: name.clone(),
                phase: phase.name.clone(),
                data: FamilyData::Counter(*value),
            });
        }
        for (name, value) in &phase.gauges {
            families.push(Family {
                desired: sanitize(name),
                orig: name.clone(),
                phase: phase.name.clone(),
                data: FamilyData::Gauge(*value),
            });
        }
        for (name, snap) in &phase.timers {
            families.push(Family {
                desired: format!("{}_seconds_total", sanitize(name)),
                orig: name.clone(),
                phase: phase.name.clone(),
                data: FamilyData::Seconds(snap.nanos),
            });
            families.push(Family {
                desired: format!("{}_spans_total", sanitize(name)),
                orig: name.clone(),
                phase: phase.name.clone(),
                data: FamilyData::Spans(snap.spans),
            });
        }
        for (name, snap) in &phase.histograms {
            families.push(Family {
                desired: sanitize(name),
                orig: name.clone(),
                phase: phase.name.clone(),
                data: FamilyData::Histogram {
                    bounds: bounds_of(name),
                    counts: snap.counts.clone(),
                    sum: snap.sum,
                },
            });
        }
    }
    let assigned = resolve_collisions(&families);
    let mut out = String::new();
    for family in &families {
        let name = &assigned[&(family.desired.clone(), family.orig.clone())];
        out.push_str(&format!(
            "# HELP {name} {}\n",
            escape_help(&family.describe())
        ));
        out.push_str(&format!("# TYPE {name} {}\n", family.kind()));
        match &family.data {
            FamilyData::Counter(v) | FamilyData::Gauge(v) | FamilyData::Spans(v) => {
                out.push_str(&format!("{name} {v}\n"));
            }
            FamilyData::Seconds(nanos) => {
                // Integer seconds + zero-padded fractional nanos, not
                // `nanos as f64 / 1e9`: above 2^53 nanoseconds (~104 days
                // of accumulated span time) the f64 mantissa runs out and
                // the rendered total silently loses nanoseconds.  Decimal
                // formatting from the two integer parts is exact for every
                // u64.
                out.push_str(&format!(
                    "{name} {}.{:09}\n",
                    nanos / 1_000_000_000,
                    nanos % 1_000_000_000
                ));
            }
            FamilyData::Histogram {
                bounds,
                counts,
                sum,
            } => {
                let mut cumulative = 0u64;
                for (i, count) in counts.iter().enumerate() {
                    cumulative += count;
                    if i + 1 < counts.len() {
                        let le = match bounds.and_then(|b| b.get(i)) {
                            Some(bound) => bound.to_string(),
                            None => i.to_string(),
                        };
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    } else {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
                out.push_str(&format!("{name}_sum {sum}\n"));
                out.push_str(&format!("{name}_count {cumulative}\n"));
            }
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// State carried while validating one family's block of lines.
struct FamilyCheck {
    name: String,
    kind: String,
    type_seen: bool,
    samples: usize,
    /// Histogram bookkeeping: `(le, cumulative)` in appearance order.
    buckets: Vec<(f64, f64)>,
    sum_seen: bool,
    count: Option<f64>,
}

impl FamilyCheck {
    /// End-of-family invariants: a TYPE line and at least one sample were
    /// seen; histograms have strictly increasing `le`, non-decreasing
    /// cumulative counts, a trailing `+Inf` bucket, a `_sum`, and a
    /// `_count` equal to the `+Inf` bucket.
    fn finish(&self) -> Result<(), String> {
        let name = &self.name;
        if !self.type_seen {
            return Err(format!("family `{name}` has HELP but no TYPE"));
        }
        if self.samples == 0 {
            return Err(format!("family `{name}` has no samples"));
        }
        if self.kind == "histogram" {
            if self.buckets.is_empty() {
                return Err(format!("histogram `{name}` has no buckets"));
            }
            for pair in self.buckets.windows(2) {
                if pair[1].0 <= pair[0].0 {
                    return Err(format!("histogram `{name}` has non-increasing le bounds"));
                }
                if pair[1].1 < pair[0].1 {
                    return Err(format!("histogram `{name}` buckets are not cumulative"));
                }
            }
            let last = self.buckets[self.buckets.len() - 1];
            if !last.0.is_infinite() {
                return Err(format!("histogram `{name}` is missing the +Inf bucket"));
            }
            if !self.sum_seen {
                return Err(format!("histogram `{name}` is missing _sum"));
            }
            match self.count {
                None => return Err(format!("histogram `{name}` is missing _count")),
                Some(count) if count != last.1 => {
                    return Err(format!(
                        "histogram `{name}` _count {count} != +Inf bucket {}",
                        last.1
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// A parsed sample line: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Split a sample line into `(metric name, labels, value)`, validating
/// label syntax and escaping (`\\`, `\"`, `\n` only inside quotes).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: `{line}`");
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(err("sample line has no value")),
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let value_part;
    if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| err("unterminated label set"))?;
        let (label_body, after) = body.split_at(close);
        value_part = after[1..].trim();
        for item in label_body.split(',').filter(|s| !s.is_empty()) {
            let (key, raw) = item
                .split_once('=')
                .ok_or_else(|| err("label without `=`"))?;
            if !valid_metric_name(key) {
                return Err(err("invalid label name"));
            }
            let raw = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| err("label value is not quoted"))?;
            let mut chars = raw.chars();
            let mut value = String::new();
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        _ => return Err(err("bad escape in label value")),
                    },
                    '"' => return Err(err("unescaped quote in label value")),
                    c => value.push(c),
                }
            }
            labels.push((key.to_string(), value));
        }
    } else {
        value_part = rest.trim();
    }
    let value = if value_part == "+Inf" {
        f64::INFINITY
    } else {
        value_part
            .parse::<f64>()
            .map_err(|_| err("sample value is not a number"))?
    };
    Ok((name_part.to_string(), labels, value))
}

/// Line-grammar validator for the exposition format: every family is
/// `# HELP` then `# TYPE` then one or more samples whose names belong to
/// that family; families never repeat; histogram buckets are cumulative
/// with strictly increasing `le` ending at `+Inf`, and `_count` matches.
/// Returns the first violation found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut current: Option<FamilyCheck> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(help) = line.strip_prefix("# HELP ") {
            if let Some(family) = current.take() {
                family.finish()?;
            }
            let name = help
                .split_whitespace()
                .next()
                .ok_or("HELP line without a name")?;
            if !valid_metric_name(name) {
                return Err(format!("HELP for invalid name `{name}`"));
            }
            if !seen.insert(name.to_string()) {
                return Err(format!("family `{name}` appears twice"));
            }
            current = Some(FamilyCheck {
                name: name.to_string(),
                kind: String::new(),
                type_seen: false,
                samples: 0,
                buckets: Vec::new(),
                sum_seen: false,
                count: None,
            });
        } else if let Some(type_line) = line.strip_prefix("# TYPE ") {
            let mut parts = type_line.split_whitespace();
            let name = parts.next().ok_or("TYPE line without a name")?;
            let kind = parts
                .next()
                .ok_or(format!("TYPE `{name}` without a kind"))?;
            let family = current
                .as_mut()
                .ok_or(format!("TYPE `{name}` without a preceding HELP"))?;
            if family.name != name {
                return Err(format!(
                    "TYPE `{name}` does not match preceding HELP `{}`",
                    family.name
                ));
            }
            if family.type_seen {
                return Err(format!("family `{name}` has two TYPE lines"));
            }
            if family.samples > 0 {
                return Err(format!("family `{name}` has samples before TYPE"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("family `{name}` has unknown type `{kind}`"));
            }
            family.type_seen = true;
            family.kind = kind.to_string();
        } else if line.starts_with('#') {
            // Other comments are allowed anywhere.
        } else {
            let (name, labels, value) = parse_sample(line)?;
            let family = current
                .as_mut()
                .ok_or(format!("sample `{name}` outside any family"))?;
            if family.kind == "histogram" {
                let suffix = name
                    .strip_prefix(family.name.as_str())
                    .ok_or_else(|| format!("sample `{name}` outside family `{}`", family.name))?;
                match suffix {
                    "_bucket" => {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.as_str())
                            .ok_or(format!("bucket of `{name}` is missing le"))?;
                        let le = if le == "+Inf" {
                            f64::INFINITY
                        } else {
                            le.parse::<f64>()
                                .map_err(|_| format!("bucket of `{name}` has bad le `{le}`"))?
                        };
                        family.buckets.push((le, value));
                    }
                    "_sum" => family.sum_seen = true,
                    "_count" => family.count = Some(value),
                    _ => {
                        return Err(format!(
                            "sample `{name}` is not a series of histogram `{}`",
                            family.name
                        ))
                    }
                }
            } else if name != family.name {
                return Err(format!(
                    "sample `{name}` does not belong to family `{}`",
                    family.name
                ));
            }
            family.samples += 1;
        }
    }
    if let Some(family) = current.take() {
        family.finish()?;
    }
    Ok(())
}

/// Shared readiness flag behind `/readyz`: the daemon sets it, the server
/// reads it.  Starts not-ready.
#[derive(Debug, Default)]
pub struct Readiness {
    ready: AtomicBool,
}

impl Readiness {
    /// A new flag, initially not ready.
    pub fn new() -> Readiness {
        Readiness::default()
    }

    /// Flip readiness.
    pub fn set(&self, ready: bool) {
        self.ready.store(ready, Ordering::Relaxed);
    }

    /// Current readiness.
    pub fn get(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}

/// A minimal HTTP/1.0 metrics endpoint on a background accept thread.
///
/// Routes: `GET /metrics` (renders via the supplied closure, content type
/// `text/plain; version=0.0.4`), `GET /healthz` (200 while the process is
/// up), `GET /readyz` (200/503 off the shared [`Readiness`] flag, or off a
/// caller-supplied status closure carrying a per-component body — see
/// [`MetricsServer::start_with_status`]); anything else is 404, non-GET is
/// 405.  Every response closes the connection.  Dropping the server stops
/// the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port — see
    /// [`MetricsServer::addr`]) and start serving, with `/readyz` driven by
    /// the shared boolean [`Readiness`] flag.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unusable.
    pub fn start<F>(addr: &str, readiness: Arc<Readiness>, render: F) -> io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        MetricsServer::start_with_status(
            addr,
            move || {
                if readiness.get() {
                    (true, "ready\n".to_string())
                } else {
                    (false, "not ready\n".to_string())
                }
            },
            render,
        )
    }

    /// Bind `addr` and start serving, with `/readyz` driven by a status
    /// closure returning `(ready, body)`.  Multi-tenant daemons use this
    /// to expose *per-component* readiness: one body line per app, status
    /// 503 while any app is not ready — so a failing hot-reload of one
    /// snapshot flips the endpoint without hiding which tenant is sick.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unusable.
    pub fn start_with_status<S, F>(addr: &str, status: S, render: F) -> io::Result<MetricsServer>
    where
        S: Fn() -> (bool, String) + Send + 'static,
        F: Fn() -> String + Send + 'static,
    {
        let mut addrs = addr.to_socket_addrs()?;
        let addr = addrs
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("encore-metrics".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        serve_connection(stream, &status, &render);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept thread and wait for it to exit.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept call; any error just means the thread is
            // already gone.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    status: &dyn Fn() -> (bool, String),
    render: &dyn Fn() -> String,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    const TEXT: &str = "text/plain; charset=utf-8";
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            TEXT,
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render(),
            ),
            "/healthz" => ("200 OK", TEXT, "ok\n".to_string()),
            "/readyz" => {
                let (ready, body) = status();
                if ready {
                    ("200 OK", TEXT, body)
                } else {
                    ("503 Service Unavailable", TEXT, body)
                }
            }
            _ => ("404 Not Found", TEXT, "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistogramSnapshot, PhaseReport, TimerSnapshot};

    fn no_bounds(_: &str) -> Option<&'static [u64]> {
        None
    }

    #[test]
    fn sanitize_maps_to_namespace() {
        assert_eq!(
            sanitize("infer.pairs.evaluated"),
            "encore_infer_pairs_evaluated"
        );
        assert_eq!(sanitize("A.B-c"), "encore_a_b_c");
        assert_eq!(
            sanitize("watch.cycle_duration_ms"),
            "encore_watch_cycle_duration_ms"
        );
    }

    #[test]
    fn renders_every_instrument_kind_and_validates() {
        let report = PipelineReport {
            phases: vec![PhaseReport {
                name: "infer".to_string(),
                counters: vec![("infer.pairs.evaluated".to_string(), 6202)],
                gauges: vec![("infer.pool.workers".to_string(), 4)],
                timers: vec![(
                    "infer.time".to_string(),
                    TimerSnapshot {
                        nanos: 1_500_000_000,
                        spans: 3,
                    },
                )],
                histograms: vec![(
                    "infer.candidates.by_template".to_string(),
                    HistogramSnapshot::from_counts(&[1, 2, 4], vec![1, 0, 2, 1], 14),
                )],
            }],
        };
        let bounds = |name: &str| -> Option<&'static [u64]> {
            (name == "infer.candidates.by_template").then_some(&[1, 2, 4][..])
        };
        let text = render(&report, &bounds);
        assert!(text.contains("# TYPE encore_infer_pairs_evaluated_total counter\n"));
        assert!(text.contains("encore_infer_pairs_evaluated_total 6202\n"));
        assert!(text.contains("# TYPE encore_infer_pool_workers gauge\n"));
        assert!(text.contains("encore_infer_pool_workers 4\n"));
        assert!(text.contains("encore_infer_time_seconds_total 1.500000000\n"));
        assert!(text.contains("encore_infer_time_spans_total 3\n"));
        assert!(text.contains("# TYPE encore_infer_candidates_by_template histogram\n"));
        assert!(text.contains("encore_infer_candidates_by_template_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("encore_infer_candidates_by_template_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("encore_infer_candidates_by_template_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("encore_infer_candidates_by_template_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("encore_infer_candidates_by_template_sum 14\n"));
        assert!(text.contains("encore_infer_candidates_by_template_count 4\n"));
        validate(&text).expect("rendered exposition passes the grammar validator");
    }

    #[test]
    fn timer_seconds_stay_exact_beyond_f64_mantissa_range() {
        // 2^53 + 1 nanoseconds: the first value an `as f64 / 1e9` render
        // rounds (to ...992), and far below u64's ceiling.
        let report = PipelineReport {
            phases: vec![PhaseReport {
                name: "daemon".to_string(),
                timers: vec![(
                    "uptime".to_string(),
                    TimerSnapshot {
                        nanos: 9_007_199_254_740_993,
                        spans: 1,
                    },
                )],
                ..PhaseReport::default()
            }],
        };
        let text = render(&report, &no_bounds);
        assert!(
            text.contains("encore_uptime_seconds_total 9007199.254740993\n"),
            "large timer total lost nanosecond exactness:\n{text}"
        );
        // The u64 extremes render exactly too.
        let extremes = PipelineReport {
            phases: vec![PhaseReport {
                name: "daemon".to_string(),
                timers: vec![
                    ("zero".to_string(), TimerSnapshot { nanos: 0, spans: 0 }),
                    (
                        "max".to_string(),
                        TimerSnapshot {
                            nanos: u64::MAX,
                            spans: 1,
                        },
                    ),
                ],
                ..PhaseReport::default()
            }],
        };
        let text = render(&extremes, &no_bounds);
        assert!(text.contains("encore_zero_seconds_total 0.000000000\n"));
        assert!(text.contains("encore_max_seconds_total 18446744073.709551615\n"));
    }

    #[test]
    fn sanitization_collisions_get_deterministic_suffixes() {
        let phase = PhaseReport {
            name: "demo".to_string(),
            // Deliberately listed in the order that would tempt the
            // *second*-sorting original to claim the base name first.
            counters: vec![("a.b_c".to_string(), 2), ("a.b-c".to_string(), 1)],
            ..PhaseReport::default()
        };
        let report = PipelineReport {
            phases: vec![phase],
        };
        let text = render(&report, &no_bounds);
        // `a.b-c` sorts before `a.b_c` ('-' < '_'), so it keeps the base.
        assert!(text.contains("# HELP encore_a_b_c_total Counter `a.b-c` (phase demo).\n"));
        assert!(text.contains("encore_a_b_c_total 1\n"));
        assert!(text.contains("# HELP encore_a_b_c_total_2 Counter `a.b_c` (phase demo).\n"));
        assert!(text.contains("encore_a_b_c_total_2 2\n"));
        validate(&text).expect("suffixed families still validate");

        // Reversed declaration order yields the identical assignment.
        let reversed = PipelineReport {
            phases: vec![PhaseReport {
                name: "demo".to_string(),
                counters: vec![("a.b-c".to_string(), 1), ("a.b_c".to_string(), 2)],
                ..PhaseReport::default()
            }],
        };
        let text2 = render(&reversed, &no_bounds);
        assert!(text2.contains("encore_a_b_c_total 1\n"));
        assert!(text2.contains("encore_a_b_c_total_2 2\n"));
    }

    #[test]
    fn suffix_never_steals_an_existing_desired_name() {
        // `x.y` and `x_y` collide on `encore_x_y`; `x.y_2` already owns
        // the `encore_x_y_2` base, so the loser must skip to `_3`.
        let report = PipelineReport {
            phases: vec![PhaseReport {
                name: "demo".to_string(),
                gauges: vec![
                    ("x.y".to_string(), 1),
                    ("x_y".to_string(), 2),
                    ("x.y_2".to_string(), 3),
                ],
                ..PhaseReport::default()
            }],
        };
        let text = render(&report, &no_bounds);
        assert!(text.contains("encore_x_y 1\n"));
        assert!(text.contains("encore_x_y_2 3\n"));
        assert!(text.contains("encore_x_y_3 2\n"));
        validate(&text).expect("bumped suffixes validate");
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        // TYPE without HELP.
        assert!(validate("# TYPE foo counter\nfoo 1\n").is_err());
        // Sample outside any family.
        assert!(validate("foo 1\n").is_err());
        // Duplicate family.
        let dup =
            "# HELP foo x\n# TYPE foo counter\nfoo 1\n# HELP foo x\n# TYPE foo counter\nfoo 2\n";
        assert!(validate(dup).is_err());
        // Non-cumulative histogram buckets.
        let shrinking = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n";
        assert!(validate(shrinking).unwrap_err().contains("not cumulative"));
        // _count disagrees with the +Inf bucket.
        let badcount =
            "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 4\n";
        assert!(validate(badcount).unwrap_err().contains("_count"));
        // Missing +Inf bucket.
        let noinf = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 9\nh_count 3\n";
        assert!(validate(noinf).unwrap_err().contains("+Inf"));
        // Unescaped quote inside a label value.
        let badlabel = "# HELP f x\n# TYPE f counter\nf{l=\"a\"b\"} 1\n";
        assert!(validate(badlabel).is_err());
        // A healthy document passes.
        let good = "# HELP f x\n# TYPE f counter\nf 1\n";
        assert!(validate(good).is_ok());
    }

    #[test]
    fn readiness_flag_flips() {
        let readiness = Readiness::new();
        assert!(!readiness.get());
        readiness.set(true);
        assert!(readiness.get());
        readiness.set(false);
        assert!(!readiness.get());
    }
}
