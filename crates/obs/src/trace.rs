//! Span/event tracing: a bounded ring buffer of completed [`Span`]s,
//! exported as Chrome trace-viewer / Perfetto-compatible JSON.
//!
//! Every [`Timer`] span that closes while recording is on lands here as
//! one *complete* event (`ph: "X"`) with a begin timestamp, a duration,
//! and the recording thread — exactly the shape `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load natively.  The buffer is a
//! fixed-capacity ring: when it fills, the oldest events are overwritten
//! and the drop count is reported in the export, so a long-running daemon
//! can leave recording on without unbounded memory growth.
//!
//! Recording is a second gate on top of the metrics sink: spans reach
//! the recorder only while the sink is enabled (a disabled span holds
//! no start time at all), and `record_span` itself is one relaxed load +
//! early-out until [`start_recording`] turns tracing on.  The existing
//! determinism suite therefore keeps proving the disabled path
//! non-perturbing.
//!
//! [`Span`]: crate::Span
//! [`Timer`]: crate::Timer

use crate::json::Json;
use crate::PipelineReport;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default ring capacity (events kept before the oldest are overwritten).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span: a Chrome-trace *complete* event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The originating timer's metric name (`phase.subsystem.metric`).
    pub name: &'static str,
    /// Microseconds from the trace origin to the span's begin.
    pub ts_micros: u64,
    /// Span duration in microseconds.
    pub dur_micros: u64,
    /// Dense per-process thread id (assigned in first-span order, from 1;
    /// `std::thread::ThreadId` has no stable integer form).
    pub tid: u64,
}

impl TraceEvent {
    /// The pipeline phase this event belongs to: the metric name's leading
    /// dot-segment (`infer.pool.worker_busy` → `infer`).
    pub fn category(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }
}

/// Whether spans are currently being captured into the ring.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// The instant all `ts` values are measured from, pinned by the first
/// [`start_recording`].  Spans that began before the origin clamp to 0.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Dense thread ids, assigned lazily per thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index the next event is written at once `events` is full.
    head: usize,
    /// Total events ever recorded (≥ `events.len()`).
    recorded: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    events: Vec::new(),
    capacity: DEFAULT_CAPACITY,
    head: 0,
    recorded: 0,
});

fn ring() -> std::sync::MutexGuard<'static, Ring> {
    RING.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether span recording is on.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Clear the ring and start capturing spans, keeping at most `capacity`
/// events (0 falls back to [`DEFAULT_CAPACITY`]).  Also pins the trace
/// origin if this is the first recording of the process.
pub fn start_recording(capacity: usize) {
    let _ = ORIGIN.get_or_init(Instant::now);
    let mut ring = ring();
    ring.events.clear();
    ring.capacity = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    ring.head = 0;
    ring.recorded = 0;
    drop(ring);
    RECORDING.store(true, Ordering::Relaxed);
}

/// Stop capturing spans.  Already-recorded events are kept for export.
pub fn stop_recording() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Record one completed span.  Called by [`Span`](crate::Span) on drop;
/// one relaxed load + early-out while recording is off.
#[inline]
pub(crate) fn record_span(name: &'static str, started: Instant, elapsed: Duration) {
    if !recording() {
        return;
    }
    let origin = *ORIGIN.get_or_init(Instant::now);
    // Spans opened before the origin was pinned clamp to ts 0.
    let ts = started
        .checked_duration_since(origin)
        .unwrap_or(Duration::ZERO);
    let event = TraceEvent {
        name,
        ts_micros: u64::try_from(ts.as_micros()).unwrap_or(u64::MAX),
        dur_micros: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        tid: TID.with(|t| *t),
    };
    let mut ring = ring();
    ring.recorded += 1;
    if ring.events.len() < ring.capacity {
        ring.events.push(event);
    } else {
        let head = ring.head;
        ring.events[head] = event;
        ring.head = (head + 1) % ring.capacity;
    }
}

/// Record one externally measured interval as a complete event — the
/// public entry for spans not driven by a [`Timer`](crate::Timer) guard,
/// e.g. the per-stage fragments of a captured slow request.  Subject to
/// the same recording gate (and ring overwrite policy) as timer spans.
#[inline]
pub fn record_external(name: &'static str, started: Instant, elapsed: Duration) {
    record_span(name, started, elapsed);
}

/// The captured events oldest-first, plus how many older events the ring
/// overwrote.
pub fn snapshot() -> (Vec<TraceEvent>, u64) {
    let ring = ring();
    let mut events = Vec::with_capacity(ring.events.len());
    events.extend_from_slice(&ring.events[ring.head..]);
    events.extend_from_slice(&ring.events[..ring.head]);
    let dropped = ring.recorded - ring.events.len() as u64;
    (events, dropped)
}

/// Render the captured spans as Chrome trace-viewer JSON (the *JSON
/// object* trace format: `{"traceEvents": [...]}`), loadable by
/// `chrome://tracing` and Perfetto.
///
/// When `report` is given, a per-phase summary lane rides along on `tid`
/// 0: one `phase:<name>` complete event per pipeline phase whose duration
/// is the phase's total recorded timer time, laid end to end.  The lane
/// guarantees every pipeline phase appears in the trace even when a
/// phase's individual spans were overwritten (or the phase recorded none),
/// and reads as a compact phase-cost overview next to the raw spans.
pub fn render_chrome_json(report: Option<&PipelineReport>) -> String {
    let (events, dropped) = snapshot();
    let mut items: Vec<Json> = Vec::with_capacity(events.len() + 8);
    let event_json = |name: &str, cat: &str, ts: u64, dur: u64, tid: u64| {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(name.to_string())),
            ("cat".to_string(), Json::Str(cat.to_string())),
            ("ph".to_string(), Json::Str("X".to_string())),
            ("ts".to_string(), Json::Num(ts)),
            ("dur".to_string(), Json::Num(dur)),
            ("pid".to_string(), Json::Num(1)),
            ("tid".to_string(), Json::Num(tid)),
        ])
    };
    if let Some(report) = report {
        let mut offset = 0u64;
        for phase in &report.phases {
            let nanos: u64 = phase.timers.iter().map(|(_, snap)| snap.nanos).sum();
            let micros = nanos / 1_000;
            items.push(event_json(
                &format!("phase:{}", phase.name),
                &phase.name,
                offset,
                micros,
                0,
            ));
            offset += micros;
        }
    }
    for event in &events {
        items.push(event_json(
            event.name,
            event.category(),
            event.ts_micros,
            event.dur_micros,
            event.tid,
        ));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(items)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ("encoreDroppedEvents".to_string(), Json::Num(dropped)),
    ])
    .render()
}
