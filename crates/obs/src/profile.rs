//! Keyed cost attribution: per-template / per-bucket self-time and work
//! counts, rolled into a top-K cost table.
//!
//! A [`ProfileTable`] maps a dynamic row key (a template's display form,
//! an index bucket's attribute name) to accumulated self-time nanoseconds
//! plus named work counts.  Tables are `static`s, like the other
//! instruments, and record nothing until [`enable`] turns profiling on —
//! a second gate on top of the metrics sink, so the byte-identity
//! determinism suite keeps proving the disabled path non-perturbing.
//!
//! [`render_text`] / [`render_json`] roll one or more tables into a cost
//! report.  Each table may carry a *reference* total (e.g. the
//! `infer.time` wall timer): the report states how much of the reference
//! the rows account for, which is the profiler's coverage invariant —
//! per-template rows must explain ≥95% of `infer.time` (DESIGN.md §16).
//! Attributed time is summed across workers, so on a multi-worker run
//! coverage can legitimately exceed 100% of the wall-clock reference.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The profiling gate, off by default.  [`ProfileTable::record`] is one
/// relaxed load + early-out until [`enable`] flips it.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently recording.
#[inline]
pub fn enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turn profiling on.
pub fn enable() {
    PROFILING.store(true, Ordering::Relaxed);
}

/// Turn profiling off.  Recorded rows are kept until `reset`.
pub fn disable() {
    PROFILING.store(false, Ordering::Relaxed);
}

/// One row's accumulated attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Row {
    /// Self-time attributed to this key, nanoseconds (summed across
    /// workers).
    pub nanos: u64,
    /// Named work counts (`pairs`, `candidates`, `checked`, ...).
    pub counts: BTreeMap<&'static str, u64>,
}

/// A named keyed cost table.  `const`-constructible, so tables live in
/// `static`s next to the other instruments.
#[derive(Debug)]
pub struct ProfileTable {
    name: &'static str,
    rows: Mutex<BTreeMap<String, Row>>,
}

impl ProfileTable {
    /// A new empty table.
    pub const fn new(name: &'static str) -> ProfileTable {
        ProfileTable {
            name,
            rows: Mutex::new(BTreeMap::new()),
        }
    }

    /// The table name (`infer.templates`, `detect.buckets`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Row>> {
        self.rows.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fold `nanos` of self-time and the given work counts into `key`'s
    /// row.  A no-op while profiling is disabled — callers measure the
    /// time only when [`enabled`], so the disabled path costs one load.
    pub fn record(&self, key: &str, nanos: u64, counts: &[(&'static str, u64)]) {
        if !enabled() {
            return;
        }
        let mut rows = self.lock();
        let row = rows.entry(key.to_string()).or_default();
        row.nanos = row.nanos.saturating_add(nanos);
        for &(name, value) in counts {
            *row.counts.entry(name).or_insert(0) += value;
        }
    }

    /// The rows, costliest first (ties broken by key for determinism).
    pub fn snapshot(&self) -> Vec<(String, Row)> {
        let mut rows: Vec<(String, Row)> = self
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rows.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Total attributed nanoseconds across every row.
    pub fn total_nanos(&self) -> u64 {
        self.lock().values().map(|r| r.nanos).sum()
    }

    /// Drop every row.
    pub fn reset(&self) {
        self.lock().clear();
    }
}

/// One table plus its optional coverage reference for report rendering.
pub struct Section<'a> {
    /// The table to report.
    pub table: &'a ProfileTable,
    /// `(timer name, total nanos)` the rows are measured against.
    pub reference: Option<(&'static str, u64)>,
}

fn permille(part: u64, whole: u64) -> u64 {
    if whole == 0 {
        0
    } else {
        // u128 intermediate: nanos * 1000 can overflow u64 for long runs.
        ((part as u128 * 1_000) / whole as u128) as u64
    }
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

/// Render the cost tables as human-readable text, keeping only the
/// `top_k` costliest rows per table (coverage totals still span every
/// row).
pub fn render_text(sections: &[Section<'_>], top_k: usize) -> String {
    let mut out = String::new();
    for section in sections {
        let rows = section.table.snapshot();
        let total: u64 = rows.iter().map(|(_, r)| r.nanos).sum();
        out.push_str(&format!("== profile: {} ==\n", section.table.name()));
        if let Some((name, reference)) = section.reference {
            out.push_str(&format!(
                "attributed {} of {name} {} ({}.{}%)\n",
                fmt_ms(total),
                fmt_ms(reference),
                permille(total, reference) / 10,
                permille(total, reference) % 10,
            ));
        }
        for (rank, (key, row)) in rows.iter().take(top_k).enumerate() {
            let counts: Vec<String> = row
                .counts
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect();
            out.push_str(&format!(
                "  #{:<2} {:>12} {:>5}.{}% {key}  {}\n",
                rank + 1,
                fmt_ms(row.nanos),
                permille(row.nanos, total) / 10,
                permille(row.nanos, total) % 10,
                counts.join(" "),
            ));
        }
        if rows.len() > top_k {
            let rest: u64 = rows.iter().skip(top_k).map(|(_, r)| r.nanos).sum();
            out.push_str(&format!(
                "  ... {} more row(s), {}\n",
                rows.len() - top_k,
                fmt_ms(rest)
            ));
        }
    }
    out
}

/// Render the cost tables as JSON: every row (no top-K truncation), plus
/// per-table totals and the coverage reference, so downstream validators
/// can recheck the ≥95% invariant from the file alone.
pub fn render_json(sections: &[Section<'_>]) -> String {
    let tables: Vec<Json> = sections
        .iter()
        .map(|section| {
            let rows = section.table.snapshot();
            let total: u64 = rows.iter().map(|(_, r)| r.nanos).sum();
            let mut obj = vec![
                (
                    "name".to_string(),
                    Json::Str(section.table.name().to_string()),
                ),
                ("total_nanos".to_string(), Json::Num(total)),
            ];
            if let Some((name, reference)) = section.reference {
                obj.push((
                    "reference".to_string(),
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(name.to_string())),
                        ("nanos".to_string(), Json::Num(reference)),
                    ]),
                ));
                obj.push((
                    "coverage_permille".to_string(),
                    Json::Num(permille(total, reference)),
                ));
            }
            obj.push((
                "rows".to_string(),
                Json::Arr(
                    rows.iter()
                        .map(|(key, row)| {
                            Json::Obj(vec![
                                ("key".to_string(), Json::Str(key.clone())),
                                ("nanos".to_string(), Json::Num(row.nanos)),
                                (
                                    "counts".to_string(),
                                    Json::Obj(
                                        row.counts
                                            .iter()
                                            .map(|(n, v)| (n.to_string(), Json::Num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
            Json::Obj(obj)
        })
        .collect();
    Json::Obj(vec![("tables".to_string(), Json::Arr(tables))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiling gate is process-global; serializing tests here.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn recording_is_inert_while_disabled() {
        let _gate = gate();
        disable();
        static T: ProfileTable = ProfileTable::new("test.profile.inert");
        T.record("key", 100, &[("pairs", 1)]);
        assert_eq!(T.snapshot(), vec![]);
        assert_eq!(T.total_nanos(), 0);
    }

    #[test]
    fn rows_accumulate_and_sort_by_cost() {
        let _gate = gate();
        static T: ProfileTable = ProfileTable::new("test.profile.rows");
        enable();
        T.record("cheap", 10, &[("pairs", 1)]);
        T.record("dear", 100, &[("pairs", 4), ("candidates", 2)]);
        T.record("cheap", 5, &[("pairs", 2)]);
        disable();
        let rows = T.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "dear");
        assert_eq!(rows[0].1.nanos, 100);
        assert_eq!(rows[0].1.counts["candidates"], 2);
        assert_eq!(rows[1].0, "cheap");
        assert_eq!(rows[1].1.nanos, 15);
        assert_eq!(rows[1].1.counts["pairs"], 3);
        assert_eq!(T.total_nanos(), 115);
        T.reset();
        assert_eq!(T.total_nanos(), 0);
    }

    #[test]
    fn reports_carry_coverage_and_every_row() {
        let _gate = gate();
        static T: ProfileTable = ProfileTable::new("test.profile.report");
        enable();
        T.record("a", 950, &[("pairs", 3)]);
        T.record("b", 30, &[]);
        disable();
        let sections = [Section {
            table: &T,
            reference: Some(("test.time", 1_000)),
        }];
        let text = render_text(&sections, 1);
        assert!(
            text.contains("== profile: test.profile.report =="),
            "{text}"
        );
        assert!(text.contains("98.0%"), "{text}");
        assert!(text.contains("1 more row(s)"), "{text}");
        let json = render_json(&sections);
        let value = crate::json::parse(&json).expect("profile json parses");
        let table = &value.get("tables").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(table.get("total_nanos").and_then(Json::as_u64), Some(980));
        assert_eq!(
            table.get("coverage_permille").and_then(Json::as_u64),
            Some(980)
        );
        assert_eq!(
            table.get("rows").and_then(Json::as_arr).map(|r| r.len()),
            Some(2),
            "JSON keeps every row"
        );
        T.reset();
    }

    #[test]
    fn permille_handles_zero_and_large_values() {
        assert_eq!(permille(1, 0), 0);
        assert_eq!(permille(0, 10), 0);
        assert_eq!(permille(u64::MAX, u64::MAX), 1_000);
    }
}
